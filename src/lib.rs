//! # Hetis — reproduction facade crate
//!
//! Re-exports every subsystem of the Hetis reproduction under one roof and
//! provides a [`prelude`] for examples/tests. See `DESIGN.md` at the
//! repository root for the full system inventory and the per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use hetis_baselines as baselines;
pub use hetis_cluster as cluster;
pub use hetis_core as core;
pub use hetis_elastic as elastic;
pub use hetis_engine as engine;
pub use hetis_kvcache as kvcache;
pub use hetis_lp as lp;
pub use hetis_model as model;
pub use hetis_parallel as parallel;
pub use hetis_sim as sim;
pub use hetis_telemetry as telemetry;
pub use hetis_workload as workload;

/// Commonly used items for examples and integration tests.
pub mod prelude {
    pub use hetis_sim::{Clock, EventQueue, SimTime, Summary};
}
