//! Long-context summarization: LongBench-style traffic on Llama-70B,
//! showing how head-wise dispatching and re-dispatching handle large,
//! unpredictable KV footprints (§5.3).
//!
//! ```bash
//! cargo run --release --example long_context_summarization
//! ```

use hetis::cluster::cluster::paper_cluster;
use hetis::core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis::engine::{run, EngineConfig};
use hetis::model::llama_70b;
use hetis::sim::percentile;
use hetis::workload::{DatasetKind, Poisson, TraceBuilder};

fn main() {
    let cluster = paper_cluster();
    let model = llama_70b();
    let trace = TraceBuilder::new(DatasetKind::LongBench, 41).build(&Poisson::new(1.0), 60.0);
    let mean_in = trace.total_input_tokens() as f64 / trace.len() as f64;
    println!(
        "Llama-70B summarization: {} requests, mean prompt {:.0} tokens",
        trace.len(),
        mean_in
    );

    let profile = WorkloadProfile::for_cluster(DatasetKind::LongBench, &cluster, &model, 0.3);
    let policy = HetisPolicy::new(HetisConfig::default(), profile);
    let report = run(policy, &cluster, &model, EngineConfig::default(), &trace);

    println!(
        "\ncompleted {}/{}",
        report.completed.len(),
        report.completed.len() + report.unfinished
    );
    let ttfts = report.ttfts();
    println!(
        "TTFT   p50 {:.2} s   p95 {:.2} s",
        percentile(&ttfts, 50.0).unwrap_or(0.0),
        percentile(&ttfts, 95.0).unwrap_or(0.0)
    );
    println!(
        "TPOT   p95 {:.4} s   norm latency {:.4} s/token",
        report.p95_tpot(),
        report.mean_normalized_latency()
    );
    println!(
        "dynamic parallelism: {} migrations moved {:.1} GB of KV on low-priority streams",
        report.migrations,
        report.migrated_bytes / 1e9
    );
    println!(
        "preemptions: {} (memory-aware re-dispatching absorbs exhaustion, §5.3.2)",
        report.preemptions
    );
}
