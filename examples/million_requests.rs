//! Scale demo: one million requests through the sharded simulation core.
//!
//! Serves a synthetic million-request chat trace on a data-parallel
//! Llama-13B layout (two TP-2 A100 instances — two device-disjoint
//! components, so the conservative-window coordinator can actually
//! shard) and prints end-to-end simulation throughput plus the behavior
//! digest, which is bit-identical for ANY shard count by construction.
//!
//! ```bash
//! # sharded (default: 2 shards, one per serving instance)
//! cargo run --release --example million_requests
//! # explicit shard count (1 = the plain sequential engine)
//! HETIS_SIM_SHARDS=1 cargo run --release --example million_requests
//! # smaller dry run
//! HETIS_N_REQUESTS=100000 cargo run --release --example million_requests
//! ```
//!
//! On a single-core container the sharded run is *slower* than
//! sequential (real threads, barrier churn, no parallel payoff) — the
//! point there is the identical digest; the speedup needs cores.

use hetis::cluster::cluster::paper_cluster;
use hetis::cluster::DeviceId;
use hetis::engine::policy::StaticPolicy;
use hetis::engine::{run, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology};
use hetis::model::llama_13b;
use hetis::parallel::StageConfig;
use hetis::workload::{DatasetKind, Request, RequestId, SloClass, TenantId, Trace};

fn main() {
    let n: u64 = std::env::var("HETIS_N_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let shards: usize = std::env::var("HETIS_SIM_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    // Short chat turns, paced below what the two instances sustain
    // (~116 req/s measured for this mix), so queues stay shallow and the
    // event loop — not backlog bookkeeping — dominates. Deterministic
    // lengths, no RNG: the trace itself is part of the reproducible
    // digest.
    let rate_per_s = 100.0;
    let horizon = n as f64 / rate_per_s;
    let requests: Vec<Request> = (0..n)
        .map(|i| Request {
            id: RequestId(i),
            arrival: i as f64 / rate_per_s,
            input_len: 48 + (i % 13) as u32 * 8,
            output_len: 6 + (i % 7) as u32 * 2,
            class: SloClass::default(),
            tenant: TenantId(0),
            session: None,
        })
        .collect();
    let trace = Trace::from_requests(requests, DatasetKind::ShareGpt);

    // Two TP-2 instances over the four A100s: device-disjoint, so the
    // shard planner gets two components to spread over threads.
    let stage = |a: u32, b: u32| {
        StageTopo::plain(StageConfig {
            devices: vec![DeviceId(a), DeviceId(b)],
            layers: 40,
        })
    };
    let topo = Topology {
        instances: vec![
            InstanceTopo {
                stages: vec![stage(0, 1)],
                role: InstanceRole::Both,
            },
            InstanceTopo {
                stages: vec![stage(2, 3)],
                role: InstanceRole::Both,
            },
        ],
    };

    let cluster = paper_cluster();
    let model = llama_13b();
    let cfg = EngineConfig {
        sim_shards: shards,
        drain_timeout: 300.0,
        ..EngineConfig::default()
    };

    println!(
        "serving {n} requests over {horizon:.0} simulated seconds on {} shards...",
        shards
    );
    let wall_start = std::time::Instant::now();
    let report = run(
        StaticPolicy::new("dp2-a100", topo),
        &cluster,
        &model,
        cfg,
        &trace,
    );
    let wall = wall_start.elapsed().as_secs_f64();

    println!("completed        {}/{n}", report.completed.len());
    println!("simulated        {:.0} s", report.duration);
    println!("wall clock       {wall:.1} s");
    println!(
        "events           {} ({:.0}/s wall)",
        report.events_processed,
        report.events_processed as f64 / wall
    );
    println!(
        "sim throughput   {:.0} simulated s / wall s",
        report.duration / wall
    );
    println!("behavior digest  {:016x}", report.digest());
    println!("(identical for any HETIS_SIM_SHARDS value, including 1)");

    assert_eq!(
        report.completed.len() as u64,
        n,
        "all requests must complete within the drain window"
    );
}
