//! Quickstart: serve a chatbot workload with Hetis on the paper's
//! heterogeneous cluster and print the headline metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hetis::cluster::cluster::paper_cluster;
use hetis::core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis::engine::{run, EngineConfig};
use hetis::model::llama_13b;
use hetis::workload::{DatasetKind, Poisson, TraceBuilder};

fn main() {
    // 1. The cluster: 4×A100-80GB, 4×RTX-3090, 4×P100 across four hosts,
    //    100 Gbps LAN between hosts, PCIe within (§7.1).
    let cluster = paper_cluster();
    println!(
        "cluster: {} GPUs on {} hosts, {:.0} GB total memory",
        cluster.len(),
        cluster.num_hosts(),
        cluster.total_memory() as f64 / 1e9
    );

    // 2. The model and workload: Llama-13B serving ShareGPT-like chatbot
    //    traffic at 6 requests/second for one minute.
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 7).build(&Poisson::new(6.0), 60.0);
    println!(
        "workload: {} requests, {} prompt tokens, {} output tokens",
        trace.len(),
        trace.total_input_tokens(),
        trace.total_output_tokens()
    );

    // 3. Hetis: the Parallelizer searches the primary-worker topology, the
    //    Profiler fits its attention/transfer models, and the Dispatcher
    //    places every request's attention heads via the Eq. 7 LP.
    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 128);
    let policy = HetisPolicy::new(HetisConfig::default(), profile);
    let report = run(policy, &cluster, &model, EngineConfig::default(), &trace);

    // 4. Results.
    println!("\n== {} ==", report.policy);
    println!(
        "completed           {}/{}",
        report.completed.len(),
        report.completed.len() + report.unfinished
    );
    println!(
        "normalized latency  {:.4} s/token (mean)",
        report.mean_normalized_latency()
    );
    println!("P95 TTFT            {:.3} s", report.p95_ttft());
    println!("P95 TPOT            {:.4} s", report.p95_tpot());
    println!(
        "KV cache pool       {:.0} GB across primaries + attention workers",
        report.total_kv_pool_bytes as f64 / 1e9
    );
    println!(
        "dynamic parallelism {} cache migrations, {} preemptions",
        report.migrations, report.preemptions
    );
}
