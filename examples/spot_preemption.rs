//! Elastic serving under spot preemption: every P100 in the cluster is
//! revoked mid-run (with a 10 s notice) while the request rate spikes,
//! then the capacity rejoins. Compares Hetis with live re-planning
//! against the frozen no-replan baseline.
//!
//! ```bash
//! cargo run --release --example spot_preemption
//! ```

use hetis::cluster::cluster::paper_cluster;
use hetis::cluster::GpuType;
use hetis::core::HetisConfig;
use hetis::elastic::{elastic_hetis, frozen_hetis, ChurnScenario};
use hetis::engine::{EngineConfig, RunReport};
use hetis::model::llama_70b;
use hetis::workload::DatasetKind;

fn main() {
    let cluster = paper_cluster();
    let model = llama_70b();
    let dataset = DatasetKind::ShareGpt;
    // Size the Parallelizer's workload profile to the cluster's
    // sustainable concurrency, as the benches do.
    let profile = hetis::core::WorkloadProfile::for_cluster(dataset, &cluster, &model, 0.3);

    // The scenario: 60 s of ShareGPT traffic at 2 req/s; at t = 20 s
    // every P100 (Llama-70B's attention-worker class) gets a 10 s
    // preemption notice, the rate doubles during the storm, and the
    // revoked GPUs rejoin 20 s later.
    let scenario = ChurnScenario::preemption_storm(
        &cluster,
        dataset,
        7,
        2.0,
        60.0,
        GpuType::P100,
        20.0,
        5.0,
        10.0,
        Some(20.0),
        2.0,
    );
    println!(
        "scenario: {} requests, {} cluster events (first: {})",
        scenario.trace.len(),
        scenario.events.len(),
        scenario
            .events
            .first()
            .map(|e| e.label())
            .unwrap_or_default()
    );

    let cfg = EngineConfig {
        drain_timeout: 180.0,
        ..EngineConfig::default()
    };

    let elastic = scenario.run(
        elastic_hetis(HetisConfig::default(), profile),
        &cluster,
        &model,
        cfg.clone(),
    );
    let frozen = scenario.run(
        frozen_hetis(HetisConfig::default(), profile),
        &cluster,
        &model,
        cfg,
    );

    println!(
        "\n{:<16} {:>10} {:>12} {:>12} {:>12}",
        "system", "completed", "p99 s/tok", "lost tokens", "replan s"
    );
    for report in [&elastic, &frozen] {
        summarize(report);
    }

    println!();
    for r in &elastic.replans {
        println!(
            "t={:7.2}s  {:<20} evicted={} drains_started={} replan={:.2}s{}",
            r.time,
            r.event,
            r.evicted,
            r.migrations_started,
            r.replan_latency,
            if r.replanned { "  [replanned]" } else { "" }
        );
    }
    println!(
        "\nelastic re-planning saved {} context tokens of recompute and cut \
         p99 normalized latency from {:.3} to {:.3} s/token",
        frozen.lost_tokens.saturating_sub(elastic.lost_tokens),
        frozen.p99_normalized_latency(),
        elastic.p99_normalized_latency(),
    );
}

fn summarize(report: &RunReport) {
    println!(
        "{:<16} {:>10} {:>12.4} {:>12} {:>12.2}",
        report.policy,
        report.completed.len(),
        report.p99_normalized_latency(),
        report.lost_tokens,
        report.total_replan_latency(),
    );
}
