//! Chatbot serving: compare Hetis against Splitwise and HexGen on the
//! same ShareGPT trace, reproducing the paper's headline comparison in
//! miniature.
//!
//! ```bash
//! cargo run --release --example chatbot_serving
//! ```

use hetis::baselines::{HexgenPolicy, SplitwisePolicy};
use hetis::cluster::cluster::paper_cluster;
use hetis::core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis::engine::{run, EngineConfig, RunReport};
use hetis::model::llama_70b;
use hetis::workload::{DatasetKind, Poisson, TraceBuilder};

fn row(report: &RunReport, issued: usize) {
    println!(
        "{:<10} {:>10.4} {:>10.3} {:>10.4} {:>8}/{issued} {:>8.0} GB",
        report.policy,
        report.mean_normalized_latency(),
        report.p95_ttft(),
        report.p95_tpot(),
        report.completed.len(),
        report.total_kv_pool_bytes as f64 / 1e9,
    );
}

fn main() {
    let cluster = paper_cluster();
    let model = llama_70b();
    let rate = 2.0;
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 99).build(&Poisson::new(rate), 60.0);
    println!(
        "Llama-70B, ShareGPT at {rate} req/s, {} requests\n",
        trace.len()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "system", "norm s/tok", "p95 TTFT", "p95 TPOT", "completed", "cache"
    );

    let cfg = EngineConfig::default();
    let sw = run(
        SplitwisePolicy::new(),
        &cluster,
        &model,
        cfg.clone(),
        &trace,
    );
    row(&sw, trace.len());
    let hx = run(HexgenPolicy::new(), &cluster, &model, cfg.clone(), &trace);
    row(&hx, trace.len());
    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 128);
    let ht = run(
        HetisPolicy::new(HetisConfig::default(), profile),
        &cluster,
        &model,
        cfg,
        &trace,
    );
    row(&ht, trace.len());

    println!(
        "\nHetis vs Splitwise: {:.2}x normalized latency, {:.2}x P95 TTFT",
        sw.mean_normalized_latency() / ht.mean_normalized_latency(),
        sw.p95_ttft() / ht.p95_ttft()
    );
    println!(
        "Hetis vs HexGen:    {:.2}x normalized latency, {:.2}x P95 TTFT",
        hx.mean_normalized_latency() / ht.mean_normalized_latency(),
        hx.p95_ttft() / ht.p95_ttft()
    );
}
