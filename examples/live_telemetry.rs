//! Live telemetry during a request storm: an interactive tenant bursts
//! to 3× its base rate while a batch tenant streams long prompts, and a
//! controller polls the streaming telemetry bus *mid-run* — queue
//! depths, KV occupancy and sliding-window p99 TTFT — while every
//! finished request lands in a JSONL flow log.
//!
//! ```bash
//! cargo run --release --example live_telemetry
//! ```
//!
//! The `snapshot-ok` / `jsonl-ok` markers at the end are grepped by
//! `ci/scenario_gate.sh` as the telemetry-enabled smoke gate.

use hetis::cluster::cluster::paper_cluster;
use hetis::cluster::GpuType;
use hetis::core::{HetisConfig, WorkloadProfile};
use hetis::elastic::ElasticController;
use hetis::engine::policy::StaticPolicy;
use hetis::engine::{
    AdmissionPolicy, Engine, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology,
};
use hetis::model::llama_13b;
use hetis::parallel::StageConfig;
use hetis::telemetry::{validate_json_line, TelemetryConfig};
use hetis::workload::{multi_tenant_trace, DatasetKind, SloClass, TenantId, TenantSpec};

fn main() {
    let cluster = paper_cluster();
    let model = llama_13b();

    // 1. The storm: a chat tenant at 6 req/s that bursts to 18 req/s
    //    over [20 s, 30 s), plus a steady long-context batch tenant.
    let specs = [
        TenantSpec::steady(
            TenantId(0),
            DatasetKind::ShareGpt,
            SloClass::Interactive,
            6.0,
        )
        .with_burst(20.0, 10.0, 3.0),
        TenantSpec::steady(TenantId(1), DatasetKind::LongBench, SloClass::Batch, 2.0),
    ];
    let trace = multi_tenant_trace(&specs, 4242, 60.0);
    println!(
        "storm: {} requests over 60 s (burst at t=20 s)",
        trace.len()
    );

    // 2. Telemetry on: 1-second queue/KV sampling, 15-second latency
    //    windows, flow log to target/.
    std::fs::create_dir_all("target").expect("create target/");
    let flow_log = "target/live_telemetry_flows.jsonl";
    let cfg = EngineConfig {
        prefill_chunk_tokens: Some(512),
        admission: AdmissionPolicy::SloSlack,
        telemetry: Some(TelemetryConfig {
            window_secs: 15.0,
            jsonl_path: Some(flow_log.to_string()),
            ..TelemetryConfig::default()
        }),
        ..EngineConfig::default()
    };
    let topo = Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: cluster.devices_of_type(GpuType::A100),
                layers: 40,
            })],
            role: InstanceRole::Both,
        }],
    };
    let mut engine = Engine::new(
        StaticPolicy::new("vllm", topo.clone()),
        &cluster,
        &model,
        cfg,
        topo,
        &trace,
    );

    // 3. Drive the simulation step by step, polling the bus every 5
    //    simulated seconds and feeding each snapshot to the elastic
    //    controller (its scale-pressure diagnostic).
    let profile = WorkloadProfile::for_cluster(DatasetKind::ShareGpt, &cluster, &model, 0.3);
    let mut controller = ElasticController::new(HetisConfig::default(), profile);
    println!("\n  t(s)  completions  open  queue  kv-util  p99-ttft(interactive, 15s window)");
    let mut next_poll = 5.0;
    while engine.step() {
        let snap = engine.telemetry_snapshot().expect("telemetry is enabled");
        if snap.now < next_poll {
            continue;
        }
        next_poll += 5.0;
        controller.observe(&snap);
        let depth = snap.max_queue_depth();
        let util = snap.kv.map(|k| k.utilization()).unwrap_or(0.0);
        let p99 = snap.p99_ttft(SloClass::Interactive);
        println!(
            "  {:>4.0}  {:>11}  {:>4}  {:>5}  {:>6.1}%  {}",
            snap.now,
            snap.completions,
            snap.open_flows,
            depth,
            100.0 * util,
            p99.map(|v| format!("{v:.3} s"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // 4. End of run: the final snapshot rides the report, the flow log
    //    holds one record per completion.
    let report = engine.into_report();
    let snap = report.telemetry.as_ref().expect("telemetry is enabled");
    println!(
        "\nrun done: {} completed, {} events published, {} dropped (ring wrap)",
        report.completed.len(),
        snap.events_published,
        report.telemetry_dropped,
    );
    println!(
        "controller observed {} snapshots, max queue depth {}",
        controller.observations().len(),
        controller.max_observed_queue_depth()
    );
    assert!(!snap.is_empty(), "bus saw no events");
    assert_eq!(snap.completions, report.completed.len() as u64);
    println!(
        "snapshot-ok: {} completions aggregated live",
        snap.completions
    );

    let text = std::fs::read_to_string(flow_log).expect("flow log written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        report.completed.len(),
        "one record per completion"
    );
    for line in &lines {
        validate_json_line(line).expect("flow record is valid JSON");
    }
    println!("\nflow-log tail ({flow_log}):");
    for line in lines.iter().rev().take(3).rev() {
        println!("  {line}");
    }
    println!("jsonl-ok: {} flow records validated", lines.len());
}
