//! Cluster planner: run the Parallelizer standalone as a what-if tool —
//! given a GPU fleet and a model, print the searched topology, role
//! assignments and per-device memory budget.
//!
//! ```bash
//! cargo run --release --example cluster_planner
//! ```

use hetis::cluster::cluster::ClusterBuilder;
use hetis::cluster::GpuType;
use hetis::core::{search_topology, HetisConfig, WorkloadProfile};
use hetis::model::{llama_70b, opt_30b};
use hetis::parallel::{device_weight_bytes, InstanceConfig, ParallelConfig};
use hetis::workload::DatasetKind;

fn plan(label: &str, cluster: &hetis::cluster::Cluster, model: &hetis::model::ModelSpec) {
    println!(
        "\n=== {label}: {} on {} GPUs ===",
        model.name,
        cluster.len()
    );
    let profile = WorkloadProfile::for_cluster(DatasetKind::ShareGpt, cluster, model, 0.3);
    let out = search_topology(cluster, model, &profile, &HetisConfig::default());
    println!(
        "search: {} configs evaluated in {:.0} ms; estimated cost {:.3}",
        out.evaluated,
        out.wall_seconds * 1e3,
        out.cost
    );
    for (k, inst) in out.topology.instances.iter().enumerate() {
        for (s, st) in inst.stages.iter().enumerate() {
            let gpu = cluster.spec(st.primary.devices[0]).gpu;
            println!(
                "  instance {k} stage {s}: {}x{} primaries, {} layers, {} shared attention workers",
                st.primary.tp(),
                gpu,
                st.primary.layers,
                st.attention_workers.len()
            );
        }
    }
    // Memory budget.
    let pcfg = ParallelConfig {
        instances: out
            .topology
            .instances
            .iter()
            .map(|i| InstanceConfig {
                stages: i.stages.iter().map(|s| s.primary.clone()).collect(),
            })
            .collect(),
    };
    let weights = device_weight_bytes(&pcfg, model);
    let mut total_w = 0u64;
    for d in cluster.devices() {
        if let Some(&w) = weights.get(&d.id) {
            total_w += w;
        }
    }
    println!(
        "  weights: {:.0} GB placed; attention workers: {:?}",
        total_w as f64 / 1e9,
        out.attention_workers
    );
}

fn main() {
    // The paper's testbed.
    let paper = hetis::cluster::cluster::paper_cluster();
    plan("paper cluster", &paper, &llama_70b());
    plan("paper cluster", &paper, &opt_30b());

    // A what-if fleet: two 8-GPU A100 boxes plus a rack of P100s.
    let fleet = ClusterBuilder::new()
        .host(&[GpuType::A100; 4])
        .host(&[GpuType::A100; 4])
        .host(&[GpuType::P100; 4])
        .host(&[GpuType::P100; 4])
        .build();
    plan("A100+P100 fleet", &fleet, &llama_70b());
}
