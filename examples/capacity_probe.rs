//! Capacity probe: find each system's maximum sustainable request rate by
//! sweeping load until the completion rate collapses — the experiment
//! behind the paper's "up to 2.25× higher request rate" headline.
//!
//! ```bash
//! cargo run --release --example capacity_probe
//! ```

use hetis::baselines::{HexgenPolicy, SplitwisePolicy};
use hetis::cluster::cluster::paper_cluster;
use hetis::core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis::engine::{run, EngineConfig, RunReport};
use hetis::model::llama_13b;
use hetis::workload::{DatasetKind, Poisson, TraceBuilder};

/// A rate is "sustained" if ≥ 98% of requests complete and mean
/// normalized latency stays under the SLO.
fn sustained(report: &RunReport, slo: f64) -> bool {
    report.completion_rate() >= 0.98 && report.mean_normalized_latency() <= slo
}

fn max_rate(
    system: &str,
    cluster: &hetis::cluster::Cluster,
    model: &hetis::model::ModelSpec,
) -> f64 {
    let slo = 0.08; // s/token
    let mut best = 0.0;
    for rate in [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0] {
        let trace = TraceBuilder::new(DatasetKind::ShareGpt, 88).build(&Poisson::new(rate), 40.0);
        let cfg = EngineConfig {
            drain_timeout: 120.0,
            ..EngineConfig::default()
        };
        let report = match system {
            "splitwise" => run(SplitwisePolicy::new(), cluster, model, cfg, &trace),
            "hexgen" => run(HexgenPolicy::new(), cluster, model, cfg, &trace),
            _ => {
                let profile =
                    WorkloadProfile::for_cluster(DatasetKind::ShareGpt, cluster, model, 0.3);
                run(
                    HetisPolicy::new(HetisConfig::default(), profile),
                    cluster,
                    model,
                    cfg,
                    &trace,
                )
            }
        };
        if sustained(&report, slo) {
            best = rate;
        } else {
            break;
        }
    }
    best
}

fn main() {
    let cluster = paper_cluster();
    let model = llama_13b();
    println!(
        "Maximum sustainable ShareGPT rate on Llama-13B (98% completion, 0.08 s/token SLO):\n"
    );
    let sw = max_rate("splitwise", &cluster, &model);
    println!("splitwise  {sw:>5.1} req/s");
    let hx = max_rate("hexgen", &cluster, &model);
    println!("hexgen     {hx:>5.1} req/s");
    let ht = max_rate("hetis", &cluster, &model);
    println!("hetis      {ht:>5.1} req/s");
    if sw > 0.0 && hx > 0.0 {
        println!(
            "\nHetis sustains {:.2}x Splitwise's rate and {:.2}x HexGen's (paper: up to 2.25x / 1.33x)",
            ht / sw,
            ht / hx
        );
    }
}
