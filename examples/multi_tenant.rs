//! Multi-tenant SLO-aware serving: an interactive chat tenant and a
//! long-context summarization tenant share one heterogeneous cluster.
//! Compares the FIFO-atomic scheduler against chunked prefill with
//! slack-ordered admission and prints the per-class SLO report.
//!
//! ```bash
//! cargo run --release --example multi_tenant
//! ```

use hetis::cluster::cluster::paper_cluster;
use hetis::core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis::engine::{run, AdmissionPolicy, EngineConfig, RunReport};
use hetis::model::llama_13b;
use hetis::workload::{multi_tenant_trace, DatasetKind, SloClass, TenantId, TenantSpec};

fn main() {
    let cluster = paper_cluster();
    let model = llama_13b();

    // 1. Two tenants, one deployment. Tenant 0 is a chatbot: short
    //    prompts, tight 1 s TTFT / 0.2 s TPOT targets. Tenant 1 submits
    //    ~1.8k-token articles for summarization under loose batch
    //    deadlines (30 s TTFT).
    let specs = [
        TenantSpec::steady(
            TenantId(0),
            DatasetKind::ShareGpt,
            SloClass::Interactive,
            6.0,
        ),
        TenantSpec::steady(TenantId(1), DatasetKind::LongBench, SloClass::Batch, 2.0),
    ];
    let trace = multi_tenant_trace(&specs, 7, 45.0);
    println!(
        "workload: {} requests from {} tenants over 45 s",
        trace.len(),
        specs.len()
    );

    // 2. Run Hetis twice on the same trace: once with the FIFO-atomic
    //    scheduler (whole prompts admitted in arrival order) and once
    //    with chunked prefill + slack-ordered admission.
    let profile = WorkloadProfile::for_cluster(DatasetKind::ShareGpt, &cluster, &model, 0.3);
    let run_with = |chunk: Option<u64>, admission: AdmissionPolicy| -> RunReport {
        let cfg = EngineConfig {
            prefill_chunk_tokens: chunk,
            admission,
            ..EngineConfig::default()
        };
        run(
            HetisPolicy::new(HetisConfig::default(), profile),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };
    let fifo = run_with(None, AdmissionPolicy::Fifo);
    let slo = run_with(Some(512), AdmissionPolicy::SloSlack);

    // 3. Per-class SLO report.
    for (name, report) in [("fifo-atomic", &fifo), ("chunked+priority", &slo)] {
        println!("\n== {name} ==");
        for s in report.class_stats() {
            println!(
                "{:<12} completed {:>4}  attainment {:>6.1}%  p99 TTFT {:>6.3} s  p95 TPOT {:>6.3} s",
                s.class.to_string(),
                s.completed,
                100.0 * s.attainment(),
                s.p99_ttft,
                s.p95_tpot,
            );
        }
        println!(
            "goodput (in-SLO tokens/s)  {:.0}   overall attainment {:.1}%",
            report.goodput(),
            100.0 * report.slo_attainment()
        );
    }

    let gain = fifo.p99_ttft_of_class(SloClass::Interactive)
        / slo.p99_ttft_of_class(SloClass::Interactive);
    println!(
        "\nchunked prefill + slack admission cuts interactive p99 TTFT by {gain:.2}x \
         without sacrificing goodput"
    );
}
