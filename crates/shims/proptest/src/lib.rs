//! Minimal offline shim for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, range / tuple / `collection::vec` strategies,
//! `prop_assert*`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! reports the sampled inputs verbatim), and the default case count is 64
//! (env-overridable with `PROPTEST_CASES`).

/// Error type returned by `prop_assert*` inside a `proptest!` body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic per-property RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the property name and case index so every property gets
    /// a distinct but reproducible stream.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use super::TestRng;

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Constant strategy, as in `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies, built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds from a non-empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }

        /// Starts a union from one strategy (pins the value type for
        /// inference inside `prop_oneof!`).
        pub fn with<S: Strategy<Value = T> + 'static>(first: S) -> Self {
            Union {
                options: vec![Box::new(first)],
            }
        }

        /// Adds another equally-weighted option.
        pub fn push<S: Strategy<Value = T> + 'static>(&mut self, s: S) {
            self.options.push(Box::new(s));
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
        A, B, C, D, E, F
    ));
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a strategy for vectors of `element` values with a length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import surface, mirroring `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __union = $crate::strategy::Union::with($first);
        $(__union.push($rest);)*
        __union
    }};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({ $cfg } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!({ <$crate::ProptestConfig as ::std::default::Default>::default() } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({ $cfg:expr }) => {};
    ({ $cfg:expr }
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest property `{}` failed at case {}/{}:\n{}\ninputs:\n{}",
                        stringify!($name), __case, __config.cases, __e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_items!({ $cfg } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_of_tuples(ops in collection::vec((0u8..3, 1u32..10), 1..50)) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for (k, v) in ops {
                prop_assert!(k < 3);
                prop_assert!((1..10).contains(&v));
                prop_assert_ne!(v, 0);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_respected(n in 0u64..1000) {
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let strat = collection::vec(0u32..100, 1..20);
        let a = strat.sample(&mut crate::TestRng::for_case("p", 3));
        let b = strat.sample(&mut crate::TestRng::for_case("p", 3));
        assert_eq!(a, b);
    }
}
