//! Minimal offline shim for the subset of `criterion` this workspace
//! uses: `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `criterion_group!` and `criterion_main!`.
//!
//! Each benchmark is warmed up briefly, then timed for a fixed budget; the
//! mean ns/iter is printed as a TSV row. There is no statistical analysis
//! or report output.

use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API compatibility, the shim
/// times one routine call per setup either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work, as in `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    /// Filled in by `iter`/`iter_batched`.
    result_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly and records mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine());
        }
        // Timed loop.
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.result_ns = Some(total.as_nanos() as f64 / iters.max(1) as f64);
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine(setup()));
        }
        let mut iters: u64 = 0;
        let mut timed = Duration::ZERO;
        let wall = Instant::now();
        while wall.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            iters += 1;
        }
        self.result_ns = Some(timed.as_nanos() as f64 / iters.max(1) as f64);
    }
}

/// Benchmark registry / driver, as in `criterion::Criterion`.
pub struct Criterion {
    warmup: Duration,
    budget: Duration,
    /// Substring filters from the command line (as in real criterion:
    /// `cargo bench --bench micro -- lp_minmax dispatch_waterfill` runs
    /// only benchmarks whose id contains one of the arguments). Empty =
    /// run everything.
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // HETIS_BENCH_SCALE=full lengthens the measurement window.
        let full = std::env::var("HETIS_BENCH_SCALE").as_deref() == Ok("full");
        Criterion {
            warmup: Duration::from_millis(if full { 300 } else { 50 }),
            budget: Duration::from_millis(if full { 2000 } else { 300 }),
            filters: std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect(),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints `id<TAB>ns/iter`; skipped
    /// silently when CLI filters are present and none matches `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|s| id.contains(s.as_str())) {
            return self;
        }
        let mut b = Bencher {
            warmup: self.warmup,
            budget: self.budget,
            result_ns: None,
        };
        f(&mut b);
        match b.result_ns {
            Some(ns) => println!("{id}\t{ns:.1}\tns/iter"),
            None => println!("{id}\tno-measurement"),
        }
        self
    }
}

/// Declares a group runner function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny_add", |b| b.iter(|| black_box(2u64) + 2));
        c.bench_function("tiny_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn shim_times_something() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(5),
            filters: Vec::new(),
        };
        tiny(&mut c);
    }

    criterion_group!(benches, tiny);

    #[test]
    fn group_macro_generates_runner() {
        let _: fn() = benches;
    }
}
