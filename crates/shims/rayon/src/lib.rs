//! Minimal offline shim for the subset of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Unlike a sequential fallback, `collect` here really fans the map out
//! across `std::thread::scope` workers (one chunk per available core), so
//! the Fig. 15b multi-core block-indexing experiment still measures a real
//! parallel speed-up.

/// Re-exported traits, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParMap, ParSliceIter};
}

/// `.par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParSliceIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParSliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    /// Maps each element; evaluation happens at `collect`.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; only `collect` into `Vec` (or anything
/// `FromIterator`) is supported.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Evaluates the map across threads and collects the results in input
    /// order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 || n < 2 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut results: Vec<Vec<U>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
