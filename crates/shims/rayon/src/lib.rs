//! Minimal offline shim for the subset of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`, [`join`], and
//! [`scope`].
//!
//! Unlike a sequential fallback, `collect` here really fans the map out
//! across `std::thread::scope` workers (one chunk per available core), so
//! the Fig. 15b multi-core block-indexing experiment still measures a real
//! parallel speed-up. `join`/`scope` likewise run their closures on real
//! OS threads (they back the engine's sharded simulation windows), with
//! rayon's contracts: `join` returns both results in argument order, and
//! a panic in any spawned closure propagates to the caller.

/// Re-exported traits, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParMap, ParSliceIter};
}

/// Runs `a` and `b` potentially in parallel and returns both results in
/// argument order, mirroring `rayon::join`. The shim runs `b` on a scoped
/// OS thread while the calling thread evaluates `a`; a panic in either
/// closure resurfaces on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Scope handle mirroring `rayon::Scope`: closures spawned on it may
/// borrow from the enclosing stack frame (lifetime `'scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` onto the scope; the closure runs on its own OS thread
    /// and may borrow anything that outlives the scope. Unlike rayon the
    /// shim's closure takes no `&Scope` argument re-borrow (nested
    /// spawns go through the captured scope instead), which is the only
    /// shape this workspace uses.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Structured fork/join mirroring `rayon::scope`: every closure spawned
/// inside runs to completion before `scope` returns. Panics in spawned
/// closures propagate to the caller (via `std::thread::scope`'s implicit
/// join), and the single-core degenerate case simply runs each spawn on
/// its own (briefly live) thread.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// `.par_iter()` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParSliceIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParSliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    /// Maps each element; evaluation happens at `collect`.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; only `collect` into `Vec` (or anything
/// `FromIterator`) is supported.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Evaluates the map across threads and collects the results in input
    /// order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 || n < 2 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut results: Vec<Vec<U>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn join_returns_results_in_argument_order() {
        // Make the first closure slower so the spawned side finishes first;
        // the results must still come back as (a, b).
        let (a, b) = crate::join(
            || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                "first"
            },
            || "second",
        );
        assert_eq!((a, b), ("first", "second"));

        // Borrowing from the caller's stack works on both arms.
        let xs = [1u64, 2, 3, 4];
        let (lo, hi) = crate::join(
            || xs[..2].iter().sum::<u64>(),
            || xs[2..].iter().sum::<u64>(),
        );
        assert_eq!((lo, hi), (3, 7));
    }

    #[test]
    fn join_propagates_panic_from_spawned_side() {
        let caught = std::panic::catch_unwind(|| {
            crate::join(|| 1u32, || -> u32 { panic!("boom-b") });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn scope_joins_all_spawns_and_collects_borrowed_results() {
        let mut slots = vec![0u64; 8];
        crate::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || {
                    *slot = (i as u64 + 1) * 10;
                });
            }
        });
        // Every spawn completed before `scope` returned.
        assert_eq!(slots, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn scope_propagates_spawn_panic() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|| panic!("boom-scope"));
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn single_core_degenerate_case() {
        // With one spawn (the degenerate single-worker shape), join/scope
        // must still behave exactly like sequential execution.
        let (only, unit) = crate::join(|| 7u32 * 6, || ());
        assert_eq!((only, unit), (42, ()));

        let mut out = 0u32;
        crate::scope(|s| {
            s.spawn(|| {
                out = 42;
            });
        });
        assert_eq!(out, 42);

        // And an empty scope is a no-op that still returns its value.
        let r = crate::scope(|_| "empty");
        assert_eq!(r, "empty");
    }
}
