//! Minimal offline shim for the subset of `rand` 0.8 used by this
//! workspace: `Rng::{gen, gen_range}`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`.
//!
//! `StdRng` here is SplitMix64-seeded xoshiro256**, not ChaCha12, so its
//! bit-stream differs from upstream `rand`; callers only rely on
//! determinism given a seed and on statistical quality, which both hold.

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is < 2^-64 for all spans used here.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The subset of rand's `Rng` this workspace relies on.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample over the type's standard domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform sample within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli(p).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, as in rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's ChaCha12
    /// `StdRng`; different bit-stream, same contract of determinism given
    /// a seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::thread_rng` stand-in: deterministic per call-site would defeat
/// the point, so this seeds from the system clock once per call.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let n = r.gen_range(5u32..9);
            assert!((5..9).contains(&n));
        }
    }
}
