//! Splitwise, HexGen, and Helix baselines on the shared serving engine.
//!
//! The paper compares Hetis against two heterogeneity-aware systems
//! (§7.1), both re-implemented here as engine policies on the identical
//! substrate:
//!
//! * [`splitwise::SplitwisePolicy`] — phase splitting (Patel et al., ISCA
//!   '24): prefill runs on high-end GPUs, decode on low-end GPUs, with a
//!   full KV hand-off between the two pools after each prefill.
//! * [`hexgen::HexgenPolicy`] — asymmetric static parallelism (Jiang et
//!   al., ICML '24): every GPU is a primary worker; TP/PP degrees and
//!   layer assignments are searched once to balance iteration time, then
//!   never change.
//!
//! PAPERS.md adds the strongest *global-routing* competitor:
//!
//! * [`helix::HelixPolicy`] — max-flow request routing (Mei et al., arXiv
//!   2406.01566): the cluster + link model becomes an integer-capacity
//!   flow network (Edmonds–Karp), placement maximizes the max-flow value,
//!   and requests follow a static flow-weighted routing plan.
//!
//! All three use stage-local head placement (no dynamic attention
//! parallelism) and plain LIFO preemption, exactly the behaviors whose
//! limitations §2.3 dissects.

pub mod common;
pub mod helix;
pub mod hexgen;
pub mod splitwise;

pub use helix::{FlowNetwork, HelixPlanner, HelixPolicy, RoutePlan};
pub use hexgen::HexgenPolicy;
pub use splitwise::SplitwisePolicy;
