//! Splitwise (ISCA '24): prefill/decode phase splitting across GPU pools.
//!
//! The paper's deployment (§7.1): a four-way-TP prefill instance on the
//! A100s, and decoding on the low-end GPUs (two-way TP 3090 and P100
//! pipeline stages). Every prefilled request's KV cache is transferred
//! from the prefill pool to the decode pool — the "full-scale
//! transmission overhead" and split cache pools that Figs. 11–12 charge
//! against the design.
//!
//! Provisioning note: a decode pool of 4×3090 + 4×P100 (144 GB raw)
//! cannot hold Llama-70B FP16 weights (~139 GB) after activation
//! reserves, so — like any real Splitwise deployment — the builder moves
//! high-end GPUs from the prefill pool into the decode pipeline until
//! the weights fit (documented in DESIGN.md; for Llama-70B this yields a
//! 2×A100 prefill instance and an A100→3090→3090→P100 decode pipeline).

use crate::common::{best_tp, fit_layers};
use hetis_cluster::{Cluster, DeviceId};
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{
    EngineConfig, Handoff, HeadPlacement, InstanceRole, InstanceTopo, Policy, PolicyCtx, StageTopo,
    Topology, VictimAction,
};
use hetis_model::ModelSpec;
use hetis_parallel::StageConfig;
use hetis_workload::{Request, RequestId};

/// The Splitwise policy.
pub struct SplitwisePolicy {
    rr_decode: usize,
    topo: Option<Topology>,
}

impl SplitwisePolicy {
    /// A fresh Splitwise deployment (topology built lazily).
    pub fn new() -> Self {
        SplitwisePolicy {
            rr_decode: 0,
            topo: None,
        }
    }

    /// Builds the phase-split topology for `cluster`/`model`.
    pub fn build_topology(cluster: &Cluster, model: &ModelSpec) -> Topology {
        let types = cluster.gpu_types_by_power();
        assert!(
            types.len() >= 2,
            "Splitwise needs at least two device classes"
        );
        let mut prefill_pool: Vec<DeviceId> = cluster.devices_of_type(types[0]);
        // Low-end pool: host-contiguous TP groups per type.
        let rebuild_groups = |extra_highend: &[DeviceId], cluster: &Cluster| {
            let mut groups: Vec<Vec<DeviceId>> = Vec::new();
            if !extra_highend.is_empty() {
                groups.push(extra_highend.to_vec());
            }
            for &t in &types[1..] {
                let devices = cluster.devices_of_type(t);
                // Host-local TP groups.
                let mut by_host: Vec<Vec<DeviceId>> = Vec::new();
                for &d in &devices {
                    match by_host
                        .iter_mut()
                        .find(|g| cluster.device(g[0]).host == cluster.device(d).host)
                    {
                        Some(g) => g.push(d),
                        None => by_host.push(vec![d]),
                    }
                }
                for host_devs in by_host {
                    let tp = best_tp(host_devs.len(), model);
                    for chunk in host_devs.chunks(tp) {
                        groups.push(chunk.to_vec());
                    }
                }
            }
            groups
        };

        // Move high-end devices into decode until the weights fit.
        let mut moved: Vec<DeviceId> = Vec::new();
        let decode_groups = loop {
            let groups = rebuild_groups(&moved, cluster);
            if fit_layers(cluster, model, &groups).is_some() {
                break groups;
            }
            assert!(
                prefill_pool.len() > 1,
                "Splitwise cannot place {} on this cluster",
                model.name
            );
            // Keep the prefill TP degree valid: move devices in pairs when
            // needed.
            moved.push(prefill_pool.pop().expect("non-empty"));
            if best_tp(prefill_pool.len(), model) < prefill_pool.len() {
                moved.push(prefill_pool.pop().expect("non-empty"));
            }
        };
        let decode_layers = fit_layers(cluster, model, &decode_groups).expect("checked");

        // Prefill instance: one TP group over the remaining high-end pool.
        let prefill_tp = best_tp(prefill_pool.len(), model);
        let prefill = InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: prefill_pool[..prefill_tp].to_vec(),
                layers: model.num_layers,
            })],
            role: InstanceRole::PrefillOnly,
        };
        let decode = InstanceTopo {
            stages: decode_groups
                .into_iter()
                .zip(decode_layers)
                .map(|(devices, layers)| StageTopo::plain(StageConfig { devices, layers }))
                .collect(),
            role: InstanceRole::DecodeOnly,
        };
        Topology {
            instances: vec![prefill, decode],
        }
    }
}

impl Default for SplitwisePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for SplitwisePolicy {
    fn name(&self) -> String {
        "splitwise".into()
    }

    fn topology(&mut self, cluster: &Cluster, model: &ModelSpec, _cfg: &EngineConfig) -> Topology {
        let t = Self::build_topology(cluster, model);
        self.topo = Some(t.clone());
        t
    }

    fn route(&mut self, _req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        // All arrivals prefill on the prefill pool.
        ctx.topology
            .instances
            .iter()
            .position(|i| i.role == InstanceRole::PrefillOnly)
            .expect("prefill instance exists")
    }

    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>> {
        let stages = &ctx.topology.instances[instance].stages;
        let p = HeadPlacement::stage_local(stages, ctx.model.num_heads);
        reqs.iter().map(|_| Some(p.clone())).collect()
    }

    fn after_prefill(
        &mut self,
        _instance: usize,
        _req: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> Option<Handoff> {
        let decoders: Vec<usize> = ctx
            .topology
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.role == InstanceRole::DecodeOnly)
            .map(|(k, _)| k)
            .collect();
        if decoders.is_empty() {
            // Cluster churn took the whole decode pool. The request stays
            // on the prefill instance, which never forms decode batches —
            // it parks holding its KV and counts as unfinished unless the
            // pool revives. Splitwise has no fallback here; that stall is
            // the baseline's churn behavior.
            return None;
        }
        let target = decoders[self.rr_decode % decoders.len()];
        self.rr_decode += 1;
        Some(Handoff {
            target_instance: target,
        })
    }

    fn select_victim(
        &mut self,
        instance: usize,
        _device: DeviceId,
        _blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        // Plain LIFO (vLLM default).
        match StaticPolicy::lifo_victim_anywhere(instance, ctx) {
            Some(v) => VictimAction::Evict(v),
            None => VictimAction::Stall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_cluster::GpuType;
    use hetis_engine::run;
    use hetis_model::{llama_13b, llama_70b};
    use hetis_workload::{DatasetKind, Poisson, TraceBuilder};

    #[test]
    fn topology_splits_phases_for_13b() {
        let c = paper_cluster();
        let m = llama_13b();
        let t = SplitwisePolicy::build_topology(&c, &m);
        assert_eq!(t.instances.len(), 2);
        assert_eq!(t.instances[0].role, InstanceRole::PrefillOnly);
        assert_eq!(t.instances[1].role, InstanceRole::DecodeOnly);
        // Prefill on 4-way TP A100s.
        let prefill = &t.instances[0].stages[0].primary;
        assert_eq!(prefill.tp(), 4);
        assert!(prefill
            .devices
            .iter()
            .all(|&d| c.spec(d).gpu == GpuType::A100));
        // Decode uses only low-end GPUs.
        for s in &t.instances[1].stages {
            assert!(s
                .primary
                .devices
                .iter()
                .all(|&d| c.spec(d).gpu != GpuType::A100));
        }
    }

    #[test]
    fn llama70b_pulls_highend_into_decode() {
        // The low-end pool cannot hold 139 GB of weights; the builder
        // must move A100s across (documented substitution).
        let c = paper_cluster();
        let m = llama_70b();
        let t = SplitwisePolicy::build_topology(&c, &m);
        let decode = &t.instances[1];
        let has_a100 = decode.stages.iter().any(|s| {
            s.primary
                .devices
                .iter()
                .any(|&d| c.spec(d).gpu == GpuType::A100)
        });
        assert!(has_a100);
        let total: u32 = decode.stages.iter().map(|s| s.primary.layers).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn serves_with_handoff_migrations() {
        let c = paper_cluster();
        let m = llama_13b();
        let trace = TraceBuilder::new(DatasetKind::ShareGpt, 21).build(&Poisson::new(2.0), 20.0);
        let n = trace.len();
        let report = run(
            SplitwisePolicy::new(),
            &c,
            &m,
            EngineConfig::default(),
            &trace,
        );
        assert_eq!(report.policy, "splitwise");
        assert_eq!(
            report.completed.len(),
            n,
            "unfinished {}",
            report.unfinished
        );
        // Every request migrates prefill→decode.
        assert!(report.migrations as usize >= n);
        assert!(report.migrated_bytes > 0.0);
    }
}
