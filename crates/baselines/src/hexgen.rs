//! HexGen (ICML '24): asymmetric static TP/PP over *all* GPUs.
//!
//! HexGen balances iteration time across heterogeneous devices by
//! searching asymmetric parameter partitions once, offline, and serving
//! prefill and decode on the same workers. The paper's deployment uses a
//! four-stage pipeline (homogeneous GPUs per stage, TP within stages).
//!
//! This implementation reuses the same enumeration and cost machinery as
//! Hetis's Parallelizer but with HexGen's semantics: **no exclusion** —
//! every GPU carries dense modules — and no dynamic attention dispatch.
//! The §2.3 critique (P100 stages dragging decode, fixed memory split
//! wasting A100 capacity) then emerges from the cost realities rather
//! than from a strawman.

use hetis_cluster::{Cluster, DeviceId};
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{
    EngineConfig, HeadPlacement, InstanceRole, InstanceTopo, Policy, PolicyCtx, StageTopo,
    Topology, VictimAction,
};
use hetis_model::ModelSpec;
use hetis_parallel::{
    balance_layers, dp_groupings, kv_pool_bytes, tp_pp_shapes, CostModel, DecodeBatch,
    InstanceConfig, ParallelConfig, PrefillBatch, StageConfig,
};
use hetis_workload::{Request, RequestId};

/// Workload profile HexGen's search conditions on (batch + sequence
/// length, as in Eq. 1's `R`).
#[derive(Debug, Clone, Copy)]
pub struct HexgenProfile {
    /// Steady decode batch.
    pub decode: DecodeBatch,
    /// Typical prefill batch.
    pub prefill: PrefillBatch,
    /// Decode steps weighted against one prefill.
    pub decode_steps: f64,
}

impl Default for HexgenProfile {
    fn default() -> Self {
        HexgenProfile {
            decode: DecodeBatch {
                seqs: 64,
                sum_context: 64 * 512,
            },
            prefill: PrefillBatch::uniform(4, 512),
            decode_steps: 256.0,
        }
    }
}

/// The HexGen policy.
#[derive(Clone)]
pub struct HexgenPolicy {
    profile: HexgenProfile,
    rr: usize,
}

impl HexgenPolicy {
    /// HexGen with the default search profile.
    pub fn new() -> Self {
        HexgenPolicy {
            profile: HexgenProfile::default(),
            rr: 0,
        }
    }

    /// HexGen conditioned on a specific workload profile.
    pub fn with_profile(profile: HexgenProfile) -> Self {
        HexgenPolicy { profile, rr: 0 }
    }

    /// The static search: DP groupings × per-type TP×PP shapes × balanced
    /// asymmetric layer splits, scored by the full cost model. All GPUs
    /// participate.
    pub fn search(cluster: &Cluster, model: &ModelSpec, profile: &HexgenProfile) -> Topology {
        let cost_model = CostModel::new(cluster, model);
        let mut best: Option<(f64, Vec<InstanceConfig>)> = None;

        for dp in hetis_parallel::enumerate::candidate_dp_degrees(cluster) {
            let Some(instances) = dp_groupings(cluster, dp) else {
                continue;
            };
            let share = DecodeBatch {
                seqs: (profile.decode.seqs / dp as u64).max(1),
                sum_context: profile.decode.sum_context / dp as u64,
            };
            let pf_share = PrefillBatch {
                seqs: (profile.prefill.seqs / dp as u64).max(1),
                tokens: profile.prefill.tokens / dp as u64,
                sq_sum: profile.prefill.sq_sum / dp as f64,
            };

            // Per-type shapes within instance 0 (instances are symmetric).
            let groups = &instances[0];
            let per_type: Vec<Vec<Vec<Vec<DeviceId>>>> = groups
                .iter()
                .map(|g| tp_pp_shapes(cluster, &g.devices))
                .collect();
            if per_type.iter().any(|s| s.is_empty()) {
                continue;
            }
            let mut idx = vec![0usize; per_type.len()];
            'combos: loop {
                let chain: Vec<Vec<DeviceId>> = idx
                    .iter()
                    .enumerate()
                    .flat_map(|(t, &i)| per_type[t][i].iter().cloned())
                    .collect();
                let n_stages = chain.len() as u32;
                let tp_ok = chain.iter().all(|g| {
                    let tp = g.len() as u32;
                    model.num_heads.is_multiple_of(tp) && tp <= model.num_kv_heads
                });
                if tp_ok && n_stages >= 1 && model.num_layers >= n_stages {
                    let speeds: Vec<f64> = chain
                        .iter()
                        .map(|g| g.iter().map(|&d| cluster.spec(d).dense_flops).sum())
                        .collect();
                    let layers = balance_layers(model.num_layers, &speeds);
                    let inst0 = InstanceConfig {
                        stages: chain
                            .iter()
                            .zip(&layers)
                            .map(|(g, &l)| StageConfig {
                                devices: g.clone(),
                                layers: l,
                            })
                            .collect(),
                    };
                    // Replicate the shape across all DP instances.
                    if let Some(all) = replicate_shape(cluster, &instances, &inst0) {
                        let pcfg = ParallelConfig {
                            instances: all.clone(),
                        };
                        if kv_pool_bytes(cluster, &pcfg, model).is_ok() {
                            let cost = cost_model.combined_cost(
                                &all[0],
                                &pf_share,
                                &share,
                                profile.decode_steps,
                            );
                            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                                best = Some((cost, all));
                            }
                        }
                    }
                }
                // Advance cartesian index.
                let mut t = 0;
                loop {
                    if t == idx.len() {
                        break 'combos;
                    }
                    idx[t] += 1;
                    if idx[t] < per_type[t].len() {
                        break;
                    }
                    idx[t] = 0;
                    t += 1;
                }
            }
        }

        let (_, instances) = best.expect("HexGen found no feasible static partition");
        Topology {
            instances: instances
                .into_iter()
                .map(|i| InstanceTopo {
                    stages: i.stages.into_iter().map(StageTopo::plain).collect(),
                    role: InstanceRole::Both,
                })
                .collect(),
        }
    }
}

/// Maps instance-0's searched shape onto every DP instance's own devices.
/// Shared with the Helix search, which enumerates the same shape space.
pub(crate) fn replicate_shape(
    cluster: &Cluster,
    instances: &[Vec<hetis_parallel::TypeGroup>],
    shape: &InstanceConfig,
) -> Option<Vec<InstanceConfig>> {
    let shape_types: Vec<(hetis_cluster::GpuType, usize, u32)> = shape
        .stages
        .iter()
        .map(|s| (cluster.spec(s.devices[0]).gpu, s.devices.len(), s.layers))
        .collect();
    let mut out = Vec::with_capacity(instances.len());
    for groups in instances {
        let mut cursors: Vec<(hetis_cluster::GpuType, std::vec::IntoIter<DeviceId>)> = groups
            .iter()
            .map(|g| (g.gpu, g.devices.clone().into_iter()))
            .collect();
        let mut stages = Vec::with_capacity(shape_types.len());
        for &(gpu, tp, layers) in &shape_types {
            let cursor = cursors.iter_mut().find(|(g, _)| *g == gpu)?;
            let devices: Vec<DeviceId> = cursor.1.by_ref().take(tp).collect();
            if devices.len() != tp {
                return None;
            }
            stages.push(StageConfig { devices, layers });
        }
        out.push(InstanceConfig { stages });
    }
    Some(out)
}

impl Default for HexgenPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for HexgenPolicy {
    fn name(&self) -> String {
        "hexgen".into()
    }

    fn topology(&mut self, cluster: &Cluster, model: &ModelSpec, _cfg: &EngineConfig) -> Topology {
        Self::search(cluster, model, &self.profile)
    }

    fn route(&mut self, _req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        let entries = ctx.topology.entry_instances();
        let pick = entries[self.rr % entries.len()];
        self.rr += 1;
        pick
    }

    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>> {
        let stages = &ctx.topology.instances[instance].stages;
        let p = HeadPlacement::stage_local(stages, ctx.model.num_heads);
        reqs.iter().map(|_| Some(p.clone())).collect()
    }

    fn select_victim(
        &mut self,
        instance: usize,
        _device: DeviceId,
        _blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        match StaticPolicy::lifo_victim_anywhere(instance, ctx) {
            Some(v) => VictimAction::Evict(v),
            None => VictimAction::Stall,
        }
    }

    fn fork(&self) -> Option<Box<dyn Policy + Send>> {
        // Stateless apart from the routing cursor, which never runs on a
        // fork.
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_cluster::GpuType;
    use hetis_engine::run;
    use hetis_model::{llama_13b, llama_70b};
    use hetis_workload::{DatasetKind, Poisson, TraceBuilder};

    #[test]
    fn search_uses_every_gpu_for_70b() {
        let c = paper_cluster();
        let m = llama_70b();
        let t = HexgenPolicy::search(&c, &m, &HexgenProfile::default());
        let used: usize = t
            .instances
            .iter()
            .map(|i| i.stages.iter().map(|s| s.primary.tp()).sum::<usize>())
            .sum();
        assert_eq!(used, 12, "HexGen must not leave GPUs idle");
        // No attention workers — static parallelism only.
        for i in &t.instances {
            for s in &i.stages {
                assert!(s.attention_workers.is_empty());
            }
        }
    }

    #[test]
    fn layer_split_is_asymmetric() {
        let c = paper_cluster();
        let m = llama_70b();
        let t = HexgenPolicy::search(&c, &m, &HexgenProfile::default());
        // Whatever the shape, P100 stages must get far fewer layers than
        // A100 stages (asymmetric partitioning).
        for inst in &t.instances {
            let a100_layers: u32 = inst
                .stages
                .iter()
                .filter(|s| c.spec(s.primary.devices[0]).gpu == GpuType::A100)
                .map(|s| s.primary.layers)
                .sum();
            let p100_layers: u32 = inst
                .stages
                .iter()
                .filter(|s| c.spec(s.primary.devices[0]).gpu == GpuType::P100)
                .map(|s| s.primary.layers)
                .sum();
            if a100_layers > 0 && p100_layers > 0 {
                assert!(
                    a100_layers > 3 * p100_layers,
                    "A100 {a100_layers} vs P100 {p100_layers}"
                );
            }
        }
    }

    #[test]
    fn serves_a_trace() {
        let c = paper_cluster();
        let m = llama_13b();
        let trace = TraceBuilder::new(DatasetKind::ShareGpt, 31).build(&Poisson::new(2.0), 20.0);
        let n = trace.len();
        let report = run(HexgenPolicy::new(), &c, &m, EngineConfig::default(), &trace);
        assert_eq!(report.policy, "hexgen");
        assert_eq!(
            report.completed.len(),
            n,
            "unfinished {}",
            report.unfinished
        );
        // No dynamic parallelism → no migrations.
        assert_eq!(report.migrations, 0);
    }
}
