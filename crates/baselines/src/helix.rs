//! Helix (arXiv 2406.01566): max-flow request routing over heterogeneous
//! GPUs and network.
//!
//! Helix models the cluster as a flow network — per-device compute
//! capacities as node-split arcs, network links as bandwidth arcs — and
//! serves along a *static* routing plan that realizes the network's
//! maximum flow. It is the strongest published global-routing competitor
//! to Hetis: where Hetis re-balances attention head-by-head every
//! iteration, Helix commits to the best coarse token-rate split the
//! topology admits and never looks at the live queue.
//!
//! Three pieces, mirroring the paper's decomposition:
//!
//! * [`FlowNetwork`] — integer-capacity max flow via Edmonds–Karp (BFS
//!   augmenting paths), the textbook core the planner and the property
//!   suite both exercise.
//! * [`HelixPlanner`] — derives the network from the existing cluster +
//!   link model (device FLOP/s → tokens/s arcs, alpha–beta link
//!   bandwidth → inter-stage arcs) for a candidate model partition.
//! * [`HelixPolicy`] — searches the same partition space as HexGen but
//!   scores candidates by *max-flow value* instead of iteration cost,
//!   then routes requests by smooth weighted round-robin over each
//!   instance's planned flow share. Placement stays stage-local and
//!   preemption LIFO: no dynamic parallelism, exactly the ablation axis
//!   the race scenarios measure.

use hetis_cluster::{Cluster, DeviceId};
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{
    EngineConfig, HeadPlacement, InstanceRole, InstanceTopo, Policy, PolicyCtx, StageTopo,
    Topology, VictimAction,
};
use hetis_model::ModelSpec;
use hetis_parallel::{
    balance_layers, dp_groupings, kv_pool_bytes, tp_pp_shapes, CostModel, InstanceConfig,
    ParallelConfig, StageConfig,
};
use hetis_workload::{Request, RequestId};

/// Arc capacity used for "unbounded" source/sink edges — large enough to
/// never bind, small enough that augmenting sums cannot overflow.
const UNBOUNDED: u64 = u64::MAX / 8;

/// An integer-capacity flow network with Edmonds–Karp max flow.
///
/// Edges are stored in forward/reverse pairs (edge `e` and `e ^ 1`);
/// capacities are residual, so the flow on a forward edge is its original
/// capacity minus the residual. BFS scans adjacency in insertion order,
/// making the maximum flow — value *and* assignment — deterministic for a
/// given construction order.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Per-node adjacency: indices into `to`/`cap`.
    adj: Vec<Vec<usize>>,
    /// Head node of each directed edge.
    to: Vec<usize>,
    /// Residual capacity of each directed edge.
    cap: Vec<u64>,
    /// Original capacity of each directed edge (reverse edges start at 0).
    cap0: Vec<u64>,
}

impl FlowNetwork {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            cap0: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    /// Appends a fresh node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `u → v` with capacity `cap`, returning its id
    /// (the paired residual reverse edge is `id ^ 1`).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64) -> usize {
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.cap0.push(cap);
        self.adj[u].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.cap0.push(0);
        self.adj[v].push(id + 1);
        id
    }

    /// Flow currently assigned to forward edge `e`.
    pub fn flow(&self, e: usize) -> u64 {
        self.cap0[e] - self.cap[e]
    }

    /// Original capacity of edge `e`.
    pub fn capacity(&self, e: usize) -> u64 {
        self.cap0[e]
    }

    /// All forward edges as `(id, from, to, capacity, flow)`.
    pub fn forward_edges(&self) -> Vec<(usize, usize, usize, u64, u64)> {
        let mut out = Vec::with_capacity(self.to.len() / 2);
        for (u, edges) in self.adj.iter().enumerate() {
            for &e in edges {
                if e % 2 == 0 {
                    out.push((e, u, self.to[e], self.cap0[e], self.flow(e)));
                }
            }
        }
        out.sort_by_key(|&(e, ..)| e);
        out
    }

    /// Net flow out of `node` (outgoing minus incoming). Zero at every
    /// node except the source (positive) and sink (negative) once a flow
    /// is assigned — the conservation property the test suite pins.
    pub fn net_flow(&self, node: usize) -> i128 {
        let mut net: i128 = 0;
        for (e, u, v, _, f) in self.forward_edges() {
            let _ = e;
            if u == node {
                net += f as i128;
            }
            if v == node {
                net -= f as i128;
            }
        }
        net
    }

    /// Edmonds–Karp: repeatedly augments along a BFS-shortest residual
    /// path until none remains. Returns the maximum flow value.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert!(s != t, "source and sink must differ");
        let n = self.nodes();
        let mut total: u64 = 0;
        loop {
            // BFS for the shortest augmenting path, recording the edge
            // used to reach each node.
            let mut pred: Vec<Option<usize>> = vec![None; n];
            let mut seen = vec![false; n];
            seen[s] = true;
            let mut queue = std::collections::VecDeque::from([s]);
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    if !seen[v] && self.cap[e] > 0 {
                        seen[v] = true;
                        pred[v] = Some(e);
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return total;
            }
            // Bottleneck along the path, then augment.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path edge");
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path edge");
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            total += bottleneck;
        }
    }

    /// A greedy feasible flow: augments along BFS paths using *forward
    /// residual capacity only* (no flow cancellation), so it can get
    /// stuck below the optimum. The property suite uses it as the lower
    /// bound any true max flow must dominate.
    pub fn greedy_flow(&mut self, s: usize, t: usize) -> u64 {
        assert!(s != t, "source and sink must differ");
        let n = self.nodes();
        let mut total: u64 = 0;
        loop {
            let mut pred: Vec<Option<usize>> = vec![None; n];
            let mut seen = vec![false; n];
            seen[s] = true;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    // Forward edges only: greedy never undoes a decision.
                    if e % 2 == 0 && !seen[v] && self.cap[e] > 0 {
                        seen[v] = true;
                        pred[v] = Some(e);
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return total;
            }
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path edge");
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path edge");
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            total += bottleneck;
        }
    }
}

/// The static routing plan a max-flow solve produces: a sustainable token
/// rate per serving instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    /// Planned tokens/s per instance (0 for instances the flow skips).
    pub instance_rate: Vec<u64>,
    /// Total max-flow value (tokens/s the whole cluster sustains).
    pub total_rate: u64,
}

/// Builds flow networks from the cluster + link model for a candidate
/// partition and extracts routing plans from their maximum flows.
pub struct HelixPlanner;

impl HelixPlanner {
    /// Effective dense-compute FLOPs one token costs through a stage of
    /// `layers` transformer layers (forward pass ≈ 2 FLOPs per parameter).
    fn stage_flops_per_token(model: &ModelSpec, layers: u32) -> f64 {
        2.0 * model.params_per_layer() as f64 * layers.max(1) as f64
    }

    /// Activation bytes one token carries across an inter-stage boundary.
    fn activation_bytes_per_token(model: &ModelSpec) -> f64 {
        (model.hidden_size * model.dtype.bytes()) as f64
    }

    /// Constructs the flow network of a topology: source → per-instance
    /// entry arcs → per-device compute arcs (node-split, capacity in
    /// tokens/s from `dense_flops`) per stage → inter-stage arcs capped by
    /// the best link bandwidth between consecutive stage groups → sink.
    ///
    /// Returns the network, the source and sink nodes, and the id of each
    /// instance's source arc (whose flow is that instance's planned rate).
    pub fn build_network(
        cluster: &Cluster,
        model: &ModelSpec,
        topology: &Topology,
    ) -> (FlowNetwork, usize, usize, Vec<usize>) {
        let mut net = FlowNetwork::new(2);
        let (source, sink) = (0, 1);
        let mut entry_arcs = Vec::with_capacity(topology.instances.len());
        for inst in &topology.instances {
            if inst.role == InstanceRole::Down || inst.stages.is_empty() {
                entry_arcs.push(usize::MAX);
                continue;
            }
            let mut prev_out: Option<(usize, &StageTopo)> = None;
            let mut entry_arc = usize::MAX;
            for stage in &inst.stages {
                let s_in = net.add_node();
                let s_out = net.add_node();
                // Node-split per device: each primary device contributes
                // its share of the stage's token rate as its own arc, so
                // per-device compute capacity is visible to the flow.
                let flops_per_token = Self::stage_flops_per_token(model, stage.primary.layers);
                for &d in &stage.primary.devices {
                    let rate = cluster.spec(d).dense_flops / flops_per_token;
                    net.add_edge(s_in, s_out, (rate as u64).max(1));
                }
                match prev_out {
                    None => entry_arc = net.add_edge(source, s_in, UNBOUNDED),
                    Some((prev, prev_stage)) => {
                        let cap = Self::link_tokens_per_s(
                            cluster,
                            model,
                            &prev_stage.primary.devices,
                            &stage.primary.devices,
                        );
                        net.add_edge(prev, s_in, cap);
                    }
                }
                prev_out = Some((s_out, stage));
            }
            if let Some((last, _)) = prev_out {
                net.add_edge(last, sink, UNBOUNDED);
            }
            entry_arcs.push(entry_arc);
        }
        (net, source, sink, entry_arcs)
    }

    /// Tokens/s an inter-stage boundary sustains: the best point-to-point
    /// bandwidth between the two device groups (the router picks the best
    /// path) divided by the per-token activation payload.
    fn link_tokens_per_s(
        cluster: &Cluster,
        model: &ModelSpec,
        from: &[DeviceId],
        to: &[DeviceId],
    ) -> u64 {
        let bytes = Self::activation_bytes_per_token(model);
        let mut best: f64 = 0.0;
        for &a in from {
            for &b in to {
                let link = cluster.link(a, b);
                let bw = if link.beta > 0.0 {
                    link.bandwidth()
                } else {
                    // Loopback (same device): effectively unbounded.
                    return UNBOUNDED;
                };
                best = best.max(bw);
            }
        }
        ((best / bytes) as u64).max(1)
    }

    /// Solves the max flow of `topology` and reads off the per-instance
    /// routing plan.
    pub fn plan(cluster: &Cluster, model: &ModelSpec, topology: &Topology) -> RoutePlan {
        let (mut net, source, sink, entry_arcs) = Self::build_network(cluster, model, topology);
        let total_rate = net.max_flow(source, sink);
        let instance_rate = entry_arcs
            .iter()
            .map(|&e| if e == usize::MAX { 0 } else { net.flow(e) })
            .collect();
        RoutePlan {
            instance_rate,
            total_rate,
        }
    }
}

/// The Helix policy: max-flow placement + static flow-weighted routing.
#[derive(Clone)]
pub struct HelixPolicy {
    /// The routing plan, computed once from the startup topology.
    plan: Option<RoutePlan>,
    /// Smooth weighted round-robin state (one credit per instance).
    credits: Vec<i128>,
}

impl HelixPolicy {
    /// A fresh Helix policy (plans at topology construction).
    pub fn new() -> Self {
        HelixPolicy {
            plan: None,
            credits: Vec::new(),
        }
    }

    /// The routing plan, once `topology` has run.
    pub fn plan(&self) -> Option<&RoutePlan> {
        self.plan.as_ref()
    }

    /// The placement search: enumerates the same DP groupings × TP/PP
    /// shapes × balanced layer splits as HexGen, but scores each feasible
    /// candidate by its **max-flow value** (ties broken toward lower
    /// iteration cost, then stable enumeration order) — Helix places the
    /// model to maximize what its router can push, not to minimize one
    /// batch's latency.
    pub fn search(cluster: &Cluster, model: &ModelSpec) -> Topology {
        let cost_model = CostModel::new(cluster, model);
        let probe = hetis_parallel::DecodeBatch {
            seqs: 64,
            sum_context: 64 * 512,
        };
        let mut best: Option<(u64, f64, Vec<InstanceConfig>)> = None;

        for dp in hetis_parallel::enumerate::candidate_dp_degrees(cluster) {
            let Some(instances) = dp_groupings(cluster, dp) else {
                continue;
            };
            let groups = &instances[0];
            let per_type: Vec<Vec<Vec<Vec<DeviceId>>>> = groups
                .iter()
                .map(|g| tp_pp_shapes(cluster, &g.devices))
                .collect();
            if per_type.iter().any(|s| s.is_empty()) {
                continue;
            }
            let mut idx = vec![0usize; per_type.len()];
            'combos: loop {
                let chain: Vec<Vec<DeviceId>> = idx
                    .iter()
                    .enumerate()
                    .flat_map(|(t, &i)| per_type[t][i].iter().cloned())
                    .collect();
                let n_stages = chain.len() as u32;
                let tp_ok = chain.iter().all(|g| {
                    let tp = g.len() as u32;
                    model.num_heads.is_multiple_of(tp) && tp <= model.num_kv_heads
                });
                if tp_ok && n_stages >= 1 && model.num_layers >= n_stages {
                    let speeds: Vec<f64> = chain
                        .iter()
                        .map(|g| g.iter().map(|&d| cluster.spec(d).dense_flops).sum())
                        .collect();
                    let layers = balance_layers(model.num_layers, &speeds);
                    let inst0 = InstanceConfig {
                        stages: chain
                            .iter()
                            .zip(&layers)
                            .map(|(g, &l)| StageConfig {
                                devices: g.clone(),
                                layers: l,
                            })
                            .collect(),
                    };
                    if let Some(all) = crate::hexgen::replicate_shape(cluster, &instances, &inst0) {
                        let pcfg = ParallelConfig {
                            instances: all.clone(),
                        };
                        if kv_pool_bytes(cluster, &pcfg, model).is_ok() {
                            let topo = Self::instances_to_topology(&all);
                            let flow = HelixPlanner::plan(cluster, model, &topo).total_rate;
                            let cost = cost_model.decode_iteration(&all[0], &probe);
                            let better = match &best {
                                None => true,
                                Some((bf, bc, _)) => flow > *bf || (flow == *bf && cost < *bc),
                            };
                            if better {
                                best = Some((flow, cost, all));
                            }
                        }
                    }
                }
                let mut t = 0;
                loop {
                    if t == idx.len() {
                        break 'combos;
                    }
                    idx[t] += 1;
                    if idx[t] < per_type[t].len() {
                        break;
                    }
                    idx[t] = 0;
                    t += 1;
                }
            }
        }

        let (_, _, instances) = best.expect("Helix found no feasible placement");
        Self::instances_to_topology(&instances)
    }

    fn instances_to_topology(instances: &[InstanceConfig]) -> Topology {
        Topology {
            instances: instances
                .iter()
                .map(|i| InstanceTopo {
                    stages: i.stages.iter().cloned().map(StageTopo::plain).collect(),
                    role: InstanceRole::Both,
                })
                .collect(),
        }
    }
}

impl Default for HelixPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for HelixPolicy {
    fn name(&self) -> String {
        "helix".into()
    }

    fn topology(&mut self, cluster: &Cluster, model: &ModelSpec, _cfg: &EngineConfig) -> Topology {
        let topo = Self::search(cluster, model);
        let plan = HelixPlanner::plan(cluster, model, &topo);
        self.credits = vec![0; plan.instance_rate.len()];
        self.plan = Some(plan);
        topo
    }

    fn route(&mut self, _req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        // Smooth weighted round-robin over the planned per-instance flow:
        // each entry instance accrues credit proportional to its planned
        // rate; the richest entry serves and pays the full round back.
        // Degenerates to plain round-robin when the plan is flat, stays
        // deterministic always, and skips instances the engine downed.
        let entries = ctx.topology.entry_instances();
        let plan = self.plan.as_ref().expect("topology() planned the flow");
        if self.credits.len() < ctx.topology.instances.len() {
            self.credits.resize(ctx.topology.instances.len(), 0);
        }
        let weight = |i: usize| -> i128 {
            plan.instance_rate
                .get(i)
                .copied()
                .map(|w| w.max(1) as i128)
                .unwrap_or(1)
        };
        let total: i128 = entries.iter().map(|&i| weight(i)).sum();
        let mut pick = entries[0];
        for &i in &entries {
            self.credits[i] += weight(i);
            if self.credits[i] > self.credits[pick] {
                pick = i;
            }
        }
        self.credits[pick] -= total;
        pick
    }

    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>> {
        let stages = &ctx.topology.instances[instance].stages;
        let p = HeadPlacement::stage_local(stages, ctx.model.num_heads);
        reqs.iter().map(|_| Some(p.clone())).collect()
    }

    fn select_victim(
        &mut self,
        instance: usize,
        _device: DeviceId,
        _blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        match StaticPolicy::lifo_victim_anywhere(instance, ctx) {
            Some(v) => VictimAction::Evict(v),
            None => VictimAction::Stall,
        }
    }

    fn fork(&self) -> Option<Box<dyn Policy + Send>> {
        // The plan is immutable after `topology`; routing credits never
        // advance on a fork (routing hooks don't run there).
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_engine::run;
    use hetis_model::{llama_13b, llama_70b};
    use hetis_workload::{DatasetKind, Poisson, TraceBuilder};

    #[test]
    fn edmonds_karp_textbook_network() {
        // CLRS figure: max flow 23.
        let mut n = FlowNetwork::new(6);
        n.add_edge(0, 1, 16);
        n.add_edge(0, 2, 13);
        n.add_edge(1, 2, 10);
        n.add_edge(2, 1, 4);
        n.add_edge(1, 3, 12);
        n.add_edge(3, 2, 9);
        n.add_edge(2, 4, 14);
        n.add_edge(4, 3, 7);
        n.add_edge(3, 5, 20);
        n.add_edge(4, 5, 4);
        assert_eq!(n.max_flow(0, 5), 23);
        // Conservation at every interior node.
        for v in 1..5 {
            assert_eq!(n.net_flow(v), 0, "node {v}");
        }
        assert_eq!(n.net_flow(0), 23);
        assert_eq!(n.net_flow(5), -23);
        // Capacity respected everywhere.
        for (e, _, _, cap, flow) in n.forward_edges() {
            assert!(flow <= cap, "edge {e}: {flow} > {cap}");
        }
    }

    #[test]
    fn greedy_is_dominated_by_max_flow() {
        // The classic trap: greedy sends 1 unit through the cross edge
        // and strands capacity; max flow recovers it.
        let build = || {
            let mut n = FlowNetwork::new(4);
            n.add_edge(0, 1, 1);
            n.add_edge(0, 2, 1);
            n.add_edge(1, 2, 1);
            n.add_edge(1, 3, 1);
            n.add_edge(2, 3, 1);
            n
        };
        let greedy = build().greedy_flow(0, 3);
        let max = build().max_flow(0, 3);
        assert!(max >= greedy);
        assert_eq!(max, 2);
    }

    #[test]
    fn plan_is_deterministic_and_positive() {
        let c = paper_cluster();
        let m = llama_70b();
        let t = HelixPolicy::search(&c, &m);
        let a = HelixPlanner::plan(&c, &m, &t);
        let b = HelixPlanner::plan(&c, &m, &t);
        assert_eq!(a, b);
        assert!(a.total_rate > 0);
        assert_eq!(
            a.instance_rate.iter().sum::<u64>(),
            a.total_rate,
            "entry arcs carry the whole flow"
        );
    }

    #[test]
    fn search_uses_every_gpu_for_70b() {
        let c = paper_cluster();
        let m = llama_70b();
        let t = HelixPolicy::search(&c, &m);
        let used: usize = t
            .instances
            .iter()
            .map(|i| i.stages.iter().map(|s| s.primary.tp()).sum::<usize>())
            .sum();
        assert_eq!(used, 12, "Helix must not leave GPUs idle");
        for i in &t.instances {
            for s in &i.stages {
                assert!(s.attention_workers.is_empty(), "static parallelism only");
            }
        }
    }

    #[test]
    fn serves_a_trace() {
        let c = paper_cluster();
        let m = llama_13b();
        let trace = TraceBuilder::new(DatasetKind::ShareGpt, 77).build(&Poisson::new(2.0), 20.0);
        let n = trace.len();
        let report = run(HelixPolicy::new(), &c, &m, EngineConfig::default(), &trace);
        assert_eq!(report.policy, "helix");
        assert_eq!(
            report.completed.len(),
            n,
            "unfinished {}",
            report.unfinished
        );
        assert_eq!(report.migrations, 0, "no dynamic parallelism");
    }

    #[test]
    fn downed_instances_are_skipped() {
        let c = paper_cluster();
        let m = llama_70b();
        let mut p = HelixPolicy::new();
        let mut topo = p.topology(&c, &m, &EngineConfig::default());
        if topo.instances.len() < 2 {
            return; // single-instance plan: nothing to down
        }
        topo.instances[0].role = InstanceRole::Down;
        let entries = topo.entry_instances();
        assert!(!entries.contains(&0));
    }
}
