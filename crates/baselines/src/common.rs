//! Shared helpers for the baseline policies.

use hetis_cluster::{Cluster, DeviceId, MemoryLedger};
use hetis_model::ModelSpec;
use hetis_parallel::balance_layers;

/// Splits `model.num_layers` across stages (each a TP device group),
/// first in proportion to compute speed, then shifted until every stage's
/// weight shard fits its devices' memory. Returns `None` when the stages
/// cannot hold the model at all.
pub fn fit_layers(
    cluster: &Cluster,
    model: &ModelSpec,
    stage_groups: &[Vec<DeviceId>],
) -> Option<Vec<u32>> {
    let k = stage_groups.len();
    if k == 0 || model.num_layers < k as u32 {
        return None;
    }
    let speeds: Vec<f64> = stage_groups
        .iter()
        .map(|g| g.iter().map(|&d| cluster.spec(d).dense_flops).sum())
        .collect();
    let mut layers = balance_layers(model.num_layers, &speeds);

    // Per-stage layer capacity from device memory (TP shards evenly).
    let layer_bytes = model.weight_bytes_per_layer();
    let emb_half = model.weight_bytes_embeddings() / 2;
    let cap: Vec<u32> = stage_groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let pool: u64 = g
                .iter()
                .map(|&d| {
                    let ledger = MemoryLedger::new(cluster.spec(d).mem_bytes);
                    ledger.kv_pool() // weights must fit inside total - reserve
                })
                .sum();
            let mut budget = pool;
            if i == 0 {
                budget = budget.saturating_sub(emb_half);
            }
            if i == k - 1 {
                budget = budget.saturating_sub(emb_half);
            }
            (budget / layer_bytes) as u32
        })
        .collect();
    if cap.iter().map(|&c| c as u64).sum::<u64>() < model.num_layers as u64 {
        return None;
    }

    // Shift layers from over-capacity stages to the roomiest others.
    for _ in 0..model.num_layers {
        let Some(over) = (0..k).find(|&i| layers[i] > cap[i]) else {
            break;
        };
        let under = (0..k)
            .filter(|&i| layers[i] < cap[i])
            .max_by_key(|&i| cap[i] - layers[i])?;
        layers[over] -= 1;
        layers[under] += 1;
    }
    if (0..k).any(|i| layers[i] > cap[i] || layers[i] == 0) {
        return None;
    }
    Some(layers)
}

/// Largest TP degree from `{8,4,2,1}` that divides the head counts and
/// does not exceed `n`.
pub fn best_tp(n: usize, model: &ModelSpec) -> usize {
    [8usize, 4, 2, 1]
        .into_iter()
        .find(|&tp| {
            tp <= n && model.num_heads.is_multiple_of(tp as u32) && tp as u32 <= model.num_kv_heads
        })
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_cluster::GpuType;
    use hetis_model::{llama_13b, llama_70b};

    #[test]
    fn fit_layers_balances_by_speed_when_memory_ample() {
        let c = paper_cluster();
        let m = llama_13b();
        let a100 = c.devices_of_type(GpuType::A100);
        let p100 = c.devices_of_type(GpuType::P100);
        let layers = fit_layers(&c, &m, &[a100, p100]).unwrap();
        assert_eq!(layers.iter().sum::<u32>(), 40);
        // A100s are ~27x faster: they take the overwhelming majority.
        assert!(layers[0] > 30, "{layers:?}");
    }

    #[test]
    fn fit_layers_respects_memory() {
        let c = paper_cluster();
        let m = llama_70b();
        let r3090 = c.devices_of_type(GpuType::Rtx3090);
        let p100 = c.devices_of_type(GpuType::P100);
        // 3090s are ~11x faster than P100s, but 4x3090 can hold at most
        // ~51 of 80 layers; the split must be memory-shifted.
        let layers = fit_layers(&c, &m, &[r3090.clone(), p100.clone()]);
        assert!(
            layers.is_none() || {
                let l = layers.unwrap();
                l.iter().sum::<u32>() == 80
            }
        );
        // A single P100 can never hold Llama-70B.
        assert!(fit_layers(&c, &m, &[vec![p100[0]]]).is_none());
    }

    #[test]
    fn best_tp_divides_heads() {
        let m70 = llama_70b(); // 64 q heads, 8 kv heads
        assert_eq!(best_tp(4, &m70), 4);
        assert_eq!(best_tp(3, &m70), 2);
        assert_eq!(best_tp(1, &m70), 1);
        let m13 = llama_13b(); // 40 heads
        assert_eq!(best_tp(8, &m13), 8);
        assert_eq!(best_tp(6, &m13), 4);
    }
}
