//! Property-based tests for the Helix max-flow planner.
//!
//! Two layers of coverage:
//!
//! * **Random layered networks** — flow conservation at every interior
//!   node, per-edge capacity respect, and max-flow dominance over the
//!   greedy (no-cancellation) feasible flow, on seeded random layered
//!   DAGs of arbitrary widths and capacities.
//! * **Planner-built networks** — the same invariants on the networks
//!   [`HelixPlanner`] constructs from seeded random heterogeneous
//!   clusters, plus the plan accounting identity (per-instance rates sum
//!   to the max-flow value) and positivity.

use hetis_baselines::{FlowNetwork, HelixPlanner, HelixPolicy};
use hetis_cluster::{Cluster, ClusterBuilder, GpuType};
use hetis_model::llama_13b;
use proptest::prelude::*;

/// Builds a fully connected layered DAG: source → layer 0 → … → layer
/// k−1 → sink, consuming capacities round-robin from `caps`.
fn layered(widths: &[usize], caps: &[u64]) -> (FlowNetwork, usize, usize) {
    let mut net = FlowNetwork::new(2);
    let (s, t) = (0, 1);
    let layers: Vec<Vec<usize>> = widths
        .iter()
        .map(|&w| (0..w).map(|_| net.add_node()).collect())
        .collect();
    let mut ci = 0usize;
    let mut cap = || {
        let c = caps[ci % caps.len()];
        ci += 1;
        c
    };
    for &v in &layers[0] {
        let c = cap();
        net.add_edge(s, v, c);
    }
    for pair in layers.windows(2) {
        for &u in &pair[0] {
            for &v in &pair[1] {
                let c = cap();
                net.add_edge(u, v, c);
            }
        }
    }
    for &u in layers.last().expect("at least one layer") {
        let c = cap();
        net.add_edge(u, t, c);
    }
    (net, s, t)
}

/// Asserts conservation and capacity respect for a solved network.
fn check_flow_invariants(
    net: &FlowNetwork,
    s: usize,
    t: usize,
    value: u64,
) -> Result<(), TestCaseError> {
    for (e, _, _, cap, flow) in net.forward_edges() {
        prop_assert!(flow <= cap, "edge {e}: flow {flow} exceeds capacity {cap}");
    }
    for node in 0..net.nodes() {
        let net_out = net.net_flow(node);
        if node == s {
            prop_assert_eq!(net_out, value as i128, "source emits the flow value");
        } else if node == t {
            prop_assert_eq!(net_out, -(value as i128), "sink absorbs the flow value");
        } else {
            prop_assert_eq!(net_out, 0, "conservation violated at node {}", node);
        }
    }
    Ok(())
}

/// A seeded random heterogeneous cluster that can always host Llama-13B:
/// at least one A100 host, plus optional 3090 and P100 hosts.
fn random_cluster(a100s: usize, rtxs: usize, p100s: usize) -> Cluster {
    let mut b = ClusterBuilder::new().host(&vec![GpuType::A100; a100s]);
    if rtxs > 0 {
        b = b.host(&vec![GpuType::Rtx3090; rtxs]);
    }
    if p100s > 0 {
        b = b.host(&vec![GpuType::P100; p100s]);
    }
    b.build()
}

proptest! {
    /// Max flow on a random layered network conserves flow at every
    /// interior node and respects every capacity.
    #[test]
    fn layered_flow_conserves_and_respects_capacities(
        widths in proptest::collection::vec(1usize..4, 2..5),
        caps in proptest::collection::vec(1u64..40, 32),
    ) {
        let (mut net, s, t) = layered(&widths, &caps);
        let value = net.max_flow(s, t);
        prop_assert!(value > 0, "fully connected positive capacities must flow");
        check_flow_invariants(&net, s, t, value)?;
    }

    /// The true max flow dominates the greedy feasible flow (forward
    /// residuals only, no cancellation) on the same network — and the
    /// greedy flow is itself feasible.
    #[test]
    fn max_flow_dominates_any_greedy_feasible_flow(
        widths in proptest::collection::vec(1usize..4, 2..5),
        caps in proptest::collection::vec(1u64..40, 32),
    ) {
        let (mut maxed, s, t) = layered(&widths, &caps);
        let (mut greedy, ..) = layered(&widths, &caps);
        let best = maxed.max_flow(s, t);
        let lower = greedy.greedy_flow(s, t);
        prop_assert!(
            best >= lower,
            "max flow {} below a greedy feasible flow {}", best, lower
        );
        check_flow_invariants(&greedy, s, t, lower)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The planner's flow network over a searched placement on a random
    /// heterogeneous cluster satisfies the same invariants, and the plan
    /// read off it accounts exactly: Σ per-instance rate = max flow > 0.
    #[test]
    fn planner_networks_conserve_on_random_clusters(
        a100s in 1usize..4,
        rtxs in 0usize..4,
        p100s in 0usize..4,
    ) {
        let cluster = random_cluster(a100s, rtxs, p100s);
        let model = llama_13b();
        let topo = HelixPolicy::search(&cluster, &model);
        let (mut net, s, t, entry_arcs) =
            HelixPlanner::build_network(&cluster, &model, &topo);
        let value = net.max_flow(s, t);
        check_flow_invariants(&net, s, t, value)?;

        let plan = HelixPlanner::plan(&cluster, &model, &topo);
        prop_assert_eq!(plan.total_rate, value, "plan must read the same solve");
        prop_assert!(plan.total_rate > 0, "a hosted model must sustain flow");
        let summed: u64 = plan.instance_rate.iter().sum();
        prop_assert_eq!(summed, plan.total_rate, "per-instance rates must account");
        prop_assert_eq!(plan.instance_rate.len(), entry_arcs.len());
        // And the planner's max flow dominates the greedy flow on its own
        // network, too.
        let (mut greedy_net, gs, gt, _) =
            HelixPlanner::build_network(&cluster, &model, &topo);
        let lower = greedy_net.greedy_flow(gs, gt);
        prop_assert!(value >= lower);
    }
}
