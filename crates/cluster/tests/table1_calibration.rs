//! Integration test: the device model reproduces the paper's Table 1
//! (OPT-2.7B whole-model iteration times across A100 / 3090 / P100).
//!
//! We check *ratios* tightly and absolute times loosely — the simulator is
//! calibrated, not cycle-accurate (see DESIGN.md §1).

use hetis_cluster::calib::table1;
use hetis_cluster::{
    attn_decode_time, attn_prefill_time, dense_decode_time, dense_prefill_time, AttnWork,
    DenseWork, DeviceSpec, GpuType,
};
use hetis_model::{opt_2_7b, ModuleCosts};

/// Whole-model prefill iteration time for `n` requests of `seq` tokens.
fn prefill_time(spec: &DeviceSpec) -> f64 {
    let m = opt_2_7b();
    let costs = ModuleCosts::new(&m);
    let tokens = table1::PREFILL_REQUESTS * table1::SEQ_LEN;
    let dense = DenseWork {
        flops: costs.dense_flops_total(tokens),
        weight_bytes: m.weight_bytes_per_layer() as f64,
    };
    let attn_flops = table1::PREFILL_REQUESTS as f64 * costs.attn_prefill_flops(table1::SEQ_LEN);
    let per_layer = dense_prefill_time(spec, dense, 3) + attn_prefill_time(spec, attn_flops);
    per_layer * m.num_layers as f64
        + (m.vocab_size * m.hidden_size * m.dtype.bytes()) as f64 / spec.decode_stream_bw
}

/// Whole-model decode iteration time for `n` requests at `seq` context.
fn decode_time(spec: &DeviceSpec) -> f64 {
    let m = opt_2_7b();
    let costs = ModuleCosts::new(&m);
    let n = table1::DECODE_REQUESTS;
    let dense = DenseWork {
        flops: costs.dense_flops_total(n),
        weight_bytes: m.weight_bytes_per_layer() as f64,
    };
    let attn = AttnWork {
        query_heads: (n * m.num_heads as u64) as f64,
        kv_bytes: n as f64 * costs.attn_decode_kv_bytes(m.num_heads as u64, table1::SEQ_LEN),
    };
    let per_layer = dense_decode_time(spec, dense, 3) + attn_decode_time(spec, attn);
    per_layer * m.num_layers as f64
        + (m.vocab_size * m.hidden_size * m.dtype.bytes()) as f64 / spec.decode_stream_bw
}

fn rel_err(measured: f64, reference: f64) -> f64 {
    (measured - reference).abs() / reference
}

#[test]
fn absolute_times_within_loose_tolerance() {
    let cases = [
        (GpuType::A100, table1::A100),
        (GpuType::Rtx3090, table1::R3090),
        (GpuType::P100, table1::P100),
    ];
    for (gpu, (ref_pf, ref_dc)) in cases {
        let spec = DeviceSpec::of(gpu);
        let pf = prefill_time(&spec);
        let dc = decode_time(&spec);
        assert!(
            rel_err(pf, ref_pf) < 0.25,
            "{gpu:?} prefill {pf:.4}s vs paper {ref_pf}s"
        );
        assert!(
            rel_err(dc, ref_dc) < 0.25,
            "{gpu:?} decode {dc:.4}s vs paper {ref_dc}s"
        );
    }
}

#[test]
fn prefill_ratios_match_paper() {
    let a = prefill_time(&DeviceSpec::of(GpuType::A100));
    let r = prefill_time(&DeviceSpec::of(GpuType::Rtx3090));
    let p = prefill_time(&DeviceSpec::of(GpuType::P100));
    // Paper: 2.45x and 24.5x.
    assert!(rel_err(r / a, 2.45) < 0.15, "3090/A100 prefill = {}", r / a);
    assert!(rel_err(p / a, 24.5) < 0.25, "P100/A100 prefill = {}", p / a);
}

#[test]
fn decode_ratios_match_paper() {
    let a = decode_time(&DeviceSpec::of(GpuType::A100));
    let r = decode_time(&DeviceSpec::of(GpuType::Rtx3090));
    let p = decode_time(&DeviceSpec::of(GpuType::P100));
    // Paper: 1.47x and 7.93x.
    assert!(rel_err(r / a, 1.47) < 0.25, "3090/A100 decode = {}", r / a);
    assert!(rel_err(p / a, 7.93) < 0.25, "P100/A100 decode = {}", p / a);
}
