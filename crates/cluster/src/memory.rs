//! Per-device memory ledger: weights, activation workspace, and the KV
//! pool that remains — the quantity behind the paper's Fig. 1 and Fig. 11.

use crate::calib::{ACTIVATION_RESERVE_FRACTION, ACTIVATION_RESERVE_MIN};

/// Accounting for one device's memory.
///
/// The lifecycle is: construct with the device capacity → reserve weights
/// (model shards) → the rest minus an activation reserve becomes the KV
/// pool → the serving engine allocates/frees KV bytes against the pool.
#[derive(Debug, Clone)]
pub struct MemoryLedger {
    total: u64,
    weights: u64,
    activation_reserve: u64,
    kv_used: u64,
}

/// Error returned when a reservation or allocation cannot fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes that were available.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: requested {} B, available {} B",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl MemoryLedger {
    /// A ledger over `total` bytes of device memory, with the default
    /// activation reserve set aside.
    pub fn new(total: u64) -> Self {
        let reserve =
            ((total as f64 * ACTIVATION_RESERVE_FRACTION) as u64).max(ACTIVATION_RESERVE_MIN);
        MemoryLedger {
            total,
            weights: 0,
            activation_reserve: reserve.min(total),
            kv_used: 0,
        }
    }

    /// Reserves `bytes` for model weights. Fails if weights + reserve would
    /// exceed capacity.
    pub fn reserve_weights(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        let new_weights = self.weights + bytes;
        if new_weights + self.activation_reserve > self.total {
            return Err(OutOfMemory {
                requested: bytes,
                available: self
                    .total
                    .saturating_sub(self.weights + self.activation_reserve),
            });
        }
        self.weights = new_weights;
        Ok(())
    }

    /// Total KV pool (capacity available to caches), bytes.
    #[inline]
    pub fn kv_pool(&self) -> u64 {
        self.total
            .saturating_sub(self.weights + self.activation_reserve)
    }

    /// KV bytes currently allocated.
    #[inline]
    pub fn kv_used(&self) -> u64 {
        self.kv_used
    }

    /// KV bytes still free.
    #[inline]
    pub fn kv_free(&self) -> u64 {
        self.kv_pool() - self.kv_used
    }

    /// KV pool utilization in [0, 1].
    pub fn kv_utilization(&self) -> f64 {
        let pool = self.kv_pool();
        if pool == 0 {
            0.0
        } else {
            self.kv_used as f64 / pool as f64
        }
    }

    /// Allocates `bytes` of KV cache.
    pub fn alloc_kv(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.kv_free() {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.kv_free(),
            });
        }
        self.kv_used += bytes;
        Ok(())
    }

    /// Frees `bytes` of KV cache. Panics on underflow (a logic error).
    pub fn free_kv(&mut self, bytes: u64) {
        assert!(
            bytes <= self.kv_used,
            "KV free underflow: freeing {bytes} of {}",
            self.kv_used
        );
        self.kv_used -= bytes;
    }

    /// Total device memory.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes reserved for weights.
    pub fn weights(&self) -> u64 {
        self.weights
    }

    /// Bytes reserved for activations/workspace.
    pub fn activation_reserve(&self) -> u64 {
        self.activation_reserve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::GB;

    #[test]
    fn pool_is_total_minus_weights_minus_reserve() {
        let mut m = MemoryLedger::new(80 * GB);
        m.reserve_weights(30 * GB).unwrap();
        assert_eq!(m.kv_pool(), 80 * GB - 30 * GB - m.activation_reserve());
        assert_eq!(m.kv_free(), m.kv_pool());
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = MemoryLedger::new(24 * GB);
        m.reserve_weights(10 * GB).unwrap();
        let pool = m.kv_pool();
        m.alloc_kv(pool).unwrap();
        assert_eq!(m.kv_free(), 0);
        assert!(m.alloc_kv(1).is_err());
        m.free_kv(pool / 2);
        assert_eq!(m.kv_used(), pool - pool / 2);
        assert!((m.kv_utilization() - m.kv_used() as f64 / pool as f64).abs() < 1e-12);
    }

    #[test]
    fn overweight_rejected() {
        let mut m = MemoryLedger::new(12 * GB);
        let err = m.reserve_weights(12 * GB).unwrap_err();
        assert!(err.available < 12 * GB);
        // The ledger is unchanged after a failed reservation.
        assert_eq!(m.weights(), 0);
    }

    #[test]
    #[should_panic]
    fn free_underflow_panics() {
        let mut m = MemoryLedger::new(GB);
        m.free_kv(1);
    }

    #[test]
    fn paper_fig1a_example_shape() {
        // Fig. 1a: a 7B FP16 model (~13.5 GB) on a 3090 as decode worker
        // leaves roughly 10 GB of cache space.
        let mut m = MemoryLedger::new(24 * GB);
        m.reserve_weights(13_500_000_000).unwrap();
        let pool_gb = m.kv_pool() as f64 / 1e9;
        assert!((8.0..11.5).contains(&pool_gb), "pool = {pool_gb} GB");
    }
}
