//! GPU device types and their calibrated performance envelopes.

use std::fmt;

/// A GPU model present in the simulated cluster.
///
/// The three concrete types are the paper's testbed; [`GpuType::Custom`]
/// supports the large-scale synthetic clusters used in the search-overhead
/// experiment (§7.4: "five GPU types with 32 GPUs each").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuType {
    /// NVIDIA A100-80GB — the high-end device.
    A100,
    /// NVIDIA GeForce RTX 3090 (24 GB) — the mid-range device.
    Rtx3090,
    /// NVIDIA Tesla P100 (12 GB in the paper's hosts) — the low-end device.
    P100,
    /// A synthetic type, indexed; its spec is interpolated between P100 and
    /// A100 by `tier` (0.0 = P100-like … 1.0 = A100-like).
    Custom(u8),
}

impl fmt::Display for GpuType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuType::A100 => write!(f, "A100"),
            GpuType::Rtx3090 => write!(f, "3090"),
            GpuType::P100 => write!(f, "P100"),
            GpuType::Custom(i) => write!(f, "GPU-T{i}"),
        }
    }
}

/// The calibrated performance envelope of one GPU type.
///
/// These are *effective* rates — what the paper's profiled kernels achieve,
/// not datasheet peaks. In particular `decode_stream_bw` is the effective
/// weight-streaming bandwidth in the decode (GEMV) regime, which on the
/// P100 is far below its nominal HBM bandwidth because FP16 GEMV on that
/// part is severely kernel-limited; calibrating the effective value against
/// Table 1 of the paper preserves exactly the behaviour the scheduler sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// The GPU model.
    pub gpu: GpuType,
    /// Total device memory in bytes.
    pub mem_bytes: u64,
    /// Effective dense-GEMM throughput, FLOP/s (compute-bound regime).
    pub dense_flops: f64,
    /// Effective weight-streaming bandwidth in the decode regime, B/s.
    pub decode_stream_bw: f64,
    /// Effective attention (KV-read) bandwidth, B/s. Narrower spread than
    /// dense rates — the source of opportunity O2 in the paper.
    pub attn_bw: f64,
    /// Per-query-head attention overhead, seconds (the ground truth behind
    /// the paper's `a_i` coefficient; models head-level contention).
    pub attn_per_head: f64,
    /// Per-kernel launch overhead, seconds.
    pub launch_overhead: f64,
}

impl DeviceSpec {
    /// Calibrated spec for a GPU type (constants in [`crate::calib`]).
    pub fn of(gpu: GpuType) -> DeviceSpec {
        use crate::calib as c;
        match gpu {
            GpuType::A100 => DeviceSpec {
                gpu,
                mem_bytes: c::A100_MEM,
                dense_flops: c::A100_DENSE_FLOPS,
                decode_stream_bw: c::A100_STREAM_BW,
                attn_bw: c::A100_ATTN_BW,
                attn_per_head: c::A100_ATTN_PER_HEAD,
                launch_overhead: c::A100_LAUNCH,
            },
            GpuType::Rtx3090 => DeviceSpec {
                gpu,
                mem_bytes: c::R3090_MEM,
                dense_flops: c::R3090_DENSE_FLOPS,
                decode_stream_bw: c::R3090_STREAM_BW,
                attn_bw: c::R3090_ATTN_BW,
                attn_per_head: c::R3090_ATTN_PER_HEAD,
                launch_overhead: c::R3090_LAUNCH,
            },
            GpuType::P100 => DeviceSpec {
                gpu,
                mem_bytes: c::P100_MEM,
                dense_flops: c::P100_DENSE_FLOPS,
                decode_stream_bw: c::P100_STREAM_BW,
                attn_bw: c::P100_ATTN_BW,
                attn_per_head: c::P100_ATTN_PER_HEAD,
                launch_overhead: c::P100_LAUNCH,
            },
            GpuType::Custom(tier) => {
                // Geometric interpolation between the P100 (tier 0) and the
                // A100 (tier 4+) envelopes; memory interpolates linearly.
                let t = (tier as f64 / 4.0).clamp(0.0, 1.0);
                let lerp = |lo: f64, hi: f64| lo * (hi / lo).powf(t);
                DeviceSpec {
                    gpu,
                    mem_bytes: (c::P100_MEM as f64 + (c::A100_MEM as f64 - c::P100_MEM as f64) * t)
                        as u64,
                    dense_flops: lerp(c::P100_DENSE_FLOPS, c::A100_DENSE_FLOPS),
                    decode_stream_bw: lerp(c::P100_STREAM_BW, c::A100_STREAM_BW),
                    attn_bw: lerp(c::P100_ATTN_BW, c::A100_ATTN_BW),
                    attn_per_head: lerp(c::P100_ATTN_PER_HEAD, c::A100_ATTN_PER_HEAD),
                    launch_overhead: lerp(c::P100_LAUNCH, c::A100_LAUNCH),
                }
            }
        }
    }
}

/// Identifier of a device within a [`crate::Cluster`]. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Index form for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// One physical GPU in the cluster.
#[derive(Debug, Clone)]
pub struct Device {
    /// Cluster-unique id.
    pub id: DeviceId,
    /// Host the device is plugged into (PCIe domain).
    pub host: crate::cluster::HostId,
    /// Performance envelope.
    pub spec: DeviceSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_ordering_matches_paper_hierarchy() {
        let a = DeviceSpec::of(GpuType::A100);
        let r = DeviceSpec::of(GpuType::Rtx3090);
        let p = DeviceSpec::of(GpuType::P100);
        assert!(a.dense_flops > r.dense_flops && r.dense_flops > p.dense_flops);
        assert!(a.mem_bytes > r.mem_bytes && r.mem_bytes > p.mem_bytes);
        assert!(a.attn_bw > r.attn_bw && r.attn_bw > p.attn_bw);
        // Memory ratios from §2.2: 3.33x and 6.67x.
        let m_ab = a.mem_bytes as f64 / r.mem_bytes as f64;
        let m_ap = a.mem_bytes as f64 / p.mem_bytes as f64;
        assert!((m_ab - 3.33).abs() < 0.05, "A100/3090 mem ratio {m_ab}");
        assert!((m_ap - 6.67).abs() < 0.1, "A100/P100 mem ratio {m_ap}");
    }

    #[test]
    fn custom_tiers_interpolate_monotonically() {
        let mut last = 0.0;
        for tier in 0..5 {
            let s = DeviceSpec::of(GpuType::Custom(tier));
            assert!(s.dense_flops > last, "tier {tier} not increasing");
            last = s.dense_flops;
        }
        // Endpoints coincide with the real parts.
        let t0 = DeviceSpec::of(GpuType::Custom(0));
        let p = DeviceSpec::of(GpuType::P100);
        assert!((t0.dense_flops - p.dense_flops).abs() / p.dense_flops < 1e-9);
        let t4 = DeviceSpec::of(GpuType::Custom(4));
        let a = DeviceSpec::of(GpuType::A100);
        assert!((t4.dense_flops - a.dense_flops).abs() / a.dense_flops < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(GpuType::A100.to_string(), "A100");
        assert_eq!(GpuType::Custom(2).to_string(), "GPU-T2");
        assert_eq!(DeviceId(3).to_string(), "dev3");
    }
}
