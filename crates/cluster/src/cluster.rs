//! Cluster topology: hosts, devices, links, and the paper's testbed layout.

use crate::device::{Device, DeviceId, DeviceSpec, GpuType};
use crate::net::link::{AlphaBeta, LinkKind};

/// Identifier of a host (PCIe domain) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A heterogeneous GPU cluster: devices grouped into hosts, joined by a
/// LAN; GPUs inside a host share PCIe.
#[derive(Debug, Clone)]
pub struct Cluster {
    devices: Vec<Device>,
    hosts: Vec<Vec<DeviceId>>,
}

impl Cluster {
    /// All devices, ordered by id.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the cluster has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device with the given id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Spec shorthand.
    pub fn spec(&self, id: DeviceId) -> &DeviceSpec {
        &self.devices[id.index()].spec
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Devices on a host.
    pub fn host_devices(&self, host: HostId) -> &[DeviceId] {
        &self.hosts[host.0 as usize]
    }

    /// Link class between two devices.
    pub fn link_kind(&self, a: DeviceId, b: DeviceId) -> LinkKind {
        if a == b {
            LinkKind::Loopback
        } else if self.device(a).host == self.device(b).host {
            LinkKind::IntraHost
        } else {
            LinkKind::InterHost
        }
    }

    /// Alpha–beta parameters of the path between two devices.
    pub fn link(&self, a: DeviceId, b: DeviceId) -> AlphaBeta {
        AlphaBeta::of(self.link_kind(a, b))
    }

    /// The *worst* link among all pairs in a group — what a ring collective
    /// over the group is bottlenecked by.
    pub fn worst_link(&self, group: &[DeviceId]) -> AlphaBeta {
        let mut worst = AlphaBeta::of(LinkKind::Loopback);
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                let l = self.link(a, b);
                if l.beta > worst.beta || (l.beta == worst.beta && l.alpha > worst.alpha) {
                    worst = l;
                }
            }
        }
        worst
    }

    /// Ids of all devices of a given GPU type.
    pub fn devices_of_type(&self, gpu: GpuType) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.spec.gpu == gpu)
            .map(|d| d.id)
            .collect()
    }

    /// Distinct GPU types present, ordered from *highest* to *lowest*
    /// dense throughput (the order the paper's exclusion heuristic walks in
    /// reverse).
    pub fn gpu_types_by_power(&self) -> Vec<GpuType> {
        let mut types: Vec<GpuType> = Vec::new();
        for d in &self.devices {
            if !types.contains(&d.spec.gpu) {
                types.push(d.spec.gpu);
            }
        }
        types.sort_by(|a, b| {
            DeviceSpec::of(*b)
                .dense_flops
                .partial_cmp(&DeviceSpec::of(*a).dense_flops)
                .unwrap()
        });
        types
    }

    /// Total cluster memory in bytes.
    pub fn total_memory(&self) -> u64 {
        self.devices.iter().map(|d| d.spec.mem_bytes).sum()
    }
}

/// Builder for clusters: add hosts with their GPU complements.
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    hosts: Vec<Vec<GpuType>>,
}

impl ClusterBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one host carrying the given GPUs.
    pub fn host(mut self, gpus: &[GpuType]) -> Self {
        self.hosts.push(gpus.to_vec());
        self
    }

    /// Materializes the cluster.
    pub fn build(self) -> Cluster {
        let mut devices = Vec::new();
        let mut hosts = Vec::new();
        let mut next = 0u32;
        for (h, gpus) in self.hosts.into_iter().enumerate() {
            let host_id = HostId(h as u32);
            let mut ids = Vec::with_capacity(gpus.len());
            for gpu in gpus {
                let id = DeviceId(next);
                next += 1;
                devices.push(Device {
                    id,
                    host: host_id,
                    spec: DeviceSpec::of(gpu),
                });
                ids.push(id);
            }
            hosts.push(ids);
        }
        Cluster { devices, hosts }
    }
}

/// The paper's evaluation cluster (§7.1): one host with 4×A100-80GB, two
/// hosts with 2×RTX-3090 each, one host with 4×P100; 100 Gbps LAN between
/// hosts, PCIe inside.
pub fn paper_cluster() -> Cluster {
    ClusterBuilder::new()
        .host(&[GpuType::A100; 4])
        .host(&[GpuType::Rtx3090; 2])
        .host(&[GpuType::Rtx3090; 2])
        .host(&[GpuType::P100; 4])
        .build()
}

/// The ablation cluster of Fig. 14: one A100 primary plus two 3090s.
pub fn ablation_cluster() -> Cluster {
    ClusterBuilder::new()
        .host(&[GpuType::A100])
        .host(&[GpuType::Rtx3090])
        .host(&[GpuType::Rtx3090])
        .build()
}

/// The large-scale synthetic cluster of §7.4's search-overhead study:
/// `types` GPU tiers with `per_type` GPUs each, packed 4 per host.
pub fn large_synthetic(types: u8, per_type: usize) -> Cluster {
    let mut b = ClusterBuilder::new();
    for t in 0..types {
        let mut remaining = per_type;
        while remaining > 0 {
            let n = remaining.min(4);
            let gpus = vec![GpuType::Custom(t); n];
            b = b.host(&gpus);
            remaining -= n;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_layout() {
        let c = paper_cluster();
        assert_eq!(c.len(), 12);
        assert_eq!(c.num_hosts(), 4);
        assert_eq!(c.devices_of_type(GpuType::A100).len(), 4);
        assert_eq!(c.devices_of_type(GpuType::Rtx3090).len(), 4);
        assert_eq!(c.devices_of_type(GpuType::P100).len(), 4);
        // 4*80 + 4*24 + 4*12 GB
        assert_eq!(
            c.total_memory(),
            (4 * 80 + 4 * 24 + 4 * 12) * crate::calib::GB
        );
    }

    #[test]
    fn link_kinds() {
        let c = paper_cluster();
        let a100s = c.devices_of_type(GpuType::A100);
        let p100s = c.devices_of_type(GpuType::P100);
        assert_eq!(c.link_kind(a100s[0], a100s[1]), LinkKind::IntraHost);
        assert_eq!(c.link_kind(a100s[0], p100s[0]), LinkKind::InterHost);
        assert_eq!(c.link_kind(a100s[0], a100s[0]), LinkKind::Loopback);
        // 3090s are split across two hosts.
        let r = c.devices_of_type(GpuType::Rtx3090);
        assert_eq!(c.link_kind(r[0], r[1]), LinkKind::IntraHost);
        assert_eq!(c.link_kind(r[1], r[2]), LinkKind::InterHost);
    }

    #[test]
    fn worst_link_dominates_group() {
        let c = paper_cluster();
        let a100s = c.devices_of_type(GpuType::A100);
        let intra = c.worst_link(&a100s);
        assert_eq!(intra.beta, AlphaBeta::of(LinkKind::IntraHost).beta);
        let r = c.devices_of_type(GpuType::Rtx3090);
        let cross = c.worst_link(&r);
        assert_eq!(cross.beta, AlphaBeta::of(LinkKind::InterHost).beta);
    }

    #[test]
    fn types_sorted_by_power() {
        let c = paper_cluster();
        assert_eq!(
            c.gpu_types_by_power(),
            vec![GpuType::A100, GpuType::Rtx3090, GpuType::P100]
        );
    }

    #[test]
    fn synthetic_cluster_size() {
        let c = large_synthetic(5, 32);
        assert_eq!(c.len(), 160);
        assert_eq!(c.num_hosts(), 5 * 8);
        assert_eq!(c.gpu_types_by_power().len(), 5);
    }

    #[test]
    fn ablation_cluster_layout() {
        let c = ablation_cluster();
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_hosts(), 3);
    }
}
