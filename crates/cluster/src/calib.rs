//! Calibration constants, traceable to the paper's measurements.
//!
//! Sources:
//! * Table 1 (OPT-2.7B, batch 3 prefill / 25 decode, whole model):
//!   A100 0.060 s / 0.0097 s, 3090 0.147 s / 0.0143 s, P100 1.47 s / 0.077 s.
//! * Fig. 2 (Llama-70B one layer, decode): MLP gap P100/A100 grows to the
//!   30–40× range ("40.4× on average", §2.3), Attention gap stays ~2–5×.
//! * §7.1: 100 Gbps LAN between hosts, PCIe within hosts.
//!
//! The derivation (see `DESIGN.md` §5): prefill is compute-bound at these
//! token counts, so `dense_flops` ratios are set to the paper's 1 : 2.45 :
//! 24.5–30 prefill ratios. Decode dense is weight-streaming-bound, so
//! `decode_stream_bw` is fitted to the Table 1 decode times after removing
//! the attention and launch components. Attention effective bandwidths are
//! fitted to Fig. 2b's narrow gap. The tests at the bottom of this file pin
//! all of these relationships; `cargo test -p hetis-cluster calib` re-checks
//! the calibration.

/// Bytes in one GiB-as-10⁹ ("GB" in the paper's tables).
pub const GB: u64 = 1_000_000_000;

// ------------------------------------------------------------------- A100
/// A100 total memory (80 GB).
pub const A100_MEM: u64 = 80 * GB;
/// A100 effective dense throughput (FLOP/s).
pub const A100_DENSE_FLOPS: f64 = 130e12;
/// A100 effective decode weight-streaming bandwidth (B/s).
pub const A100_STREAM_BW: f64 = 1.10e12;
/// A100 effective attention bandwidth (B/s).
pub const A100_ATTN_BW: f64 = 1.25e12;
/// A100 per-query-head attention overhead (s).
pub const A100_ATTN_PER_HEAD: f64 = 4.0e-9;
/// A100 kernel launch overhead (s).
pub const A100_LAUNCH: f64 = 8.0e-6;

// ------------------------------------------------------------------- 3090
/// RTX 3090 total memory (24 GB).
pub const R3090_MEM: u64 = 24 * GB;
/// RTX 3090 effective dense throughput (FLOP/s): A100 / 2.45 (Table 1).
pub const R3090_DENSE_FLOPS: f64 = A100_DENSE_FLOPS / 2.45;
/// RTX 3090 effective decode weight-streaming bandwidth (B/s).
pub const R3090_STREAM_BW: f64 = 0.62e12;
/// RTX 3090 effective attention bandwidth (B/s).
pub const R3090_ATTN_BW: f64 = 0.72e12;
/// RTX 3090 per-query-head attention overhead (s).
pub const R3090_ATTN_PER_HEAD: f64 = 7.0e-9;
/// RTX 3090 kernel launch overhead (s).
pub const R3090_LAUNCH: f64 = 10.0e-6;

// ------------------------------------------------------------------- P100
/// P100 memory as deployed in the paper's hosts (12 GB).
pub const P100_MEM: u64 = 12 * GB;
/// P100 effective dense throughput (FLOP/s): ~A100 / 27.7. Table 1's
/// prefill ratio is 24.5×; Fig. 2a pushes the compute-bound MLP gap toward
/// 40×. 27.7 splits the difference so both land within tolerance.
pub const P100_DENSE_FLOPS: f64 = 4.7e12;
/// P100 effective decode weight-streaming bandwidth (B/s). Far below the
/// datasheet HBM2 number — FP16 GEMV on the P100 is kernel-limited, and
/// this *effective* value is what reproduces Table 1's 77 ms decode.
pub const P100_STREAM_BW: f64 = 0.085e12;
/// P100 effective attention bandwidth (B/s): ~3.8× below A100 (Fig. 2b).
pub const P100_ATTN_BW: f64 = 0.33e12;
/// P100 per-query-head attention overhead (s).
pub const P100_ATTN_PER_HEAD: f64 = 16.0e-9;
/// P100 kernel launch overhead (s).
pub const P100_LAUNCH: f64 = 15.0e-6;

// ---------------------------------------------------------------- network
/// Inter-host LAN: 100 Gbps = 12.5 GB/s effective payload bandwidth.
pub const LAN_BETA: f64 = 1.0 / 12.5e9;
/// Inter-host LAN latency term (s).
pub const LAN_ALPHA: f64 = 15.0e-6;
/// Intra-host PCIe effective bandwidth: ~14 GB/s.
pub const PCIE_BETA: f64 = 1.0 / 14.0e9;
/// Intra-host PCIe latency term (s).
pub const PCIE_ALPHA: f64 = 6.0e-6;

/// Fraction of a link's bandwidth available to low-priority cache
/// migration streams (§6 "Live cache migration"): migrations ride a
/// low-priority CUDA stream and must not steal from inference collectives.
pub const MIGRATION_BW_SHARE: f64 = 0.35;

/// Default activation/workspace memory reserved per device, bytes. vLLM
/// reserves workspace for activations and CUDA graphs; we set aside a
/// proportional slice before sizing the KV pool.
pub const ACTIVATION_RESERVE_FRACTION: f64 = 0.06;
/// Floor for the activation reserve.
pub const ACTIVATION_RESERVE_MIN: u64 = GB;

/// Paper Table 1 reference times (seconds), used by calibration tests and
/// the `table1_device_gap` bench.
pub mod table1 {
    /// (prefill, decode) for A100.
    pub const A100: (f64, f64) = (0.060, 0.0097);
    /// (prefill, decode) for RTX 3090.
    pub const R3090: (f64, f64) = (0.147, 0.0143);
    /// (prefill, decode) for P100.
    pub const P100: (f64, f64) = (1.47, 0.077);
    /// Prefill batch: 3 requests (we assume 512-token prompts).
    pub const PREFILL_REQUESTS: u64 = 3;
    /// Decode batch: 25 requests (we assume 512-token contexts).
    pub const DECODE_REQUESTS: u64 = 25;
    /// Assumed per-request sequence length for the Table 1 profile.
    pub const SEQ_LEN: u64 = 512;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ratios_match_table1_prefill() {
        let r_3090 = A100_DENSE_FLOPS / R3090_DENSE_FLOPS;
        assert!((r_3090 - 2.45).abs() < 0.01, "3090 ratio {r_3090}");
        let r_p100 = A100_DENSE_FLOPS / P100_DENSE_FLOPS;
        assert!(
            (20.0..35.0).contains(&r_p100),
            "P100 dense ratio {r_p100} outside the 24.5–40 calibration window"
        );
    }

    #[test]
    fn attention_gap_narrower_than_dense_gap() {
        // Opportunity O2 (§2.4): the attention gap must be far smaller than
        // the dense gap, otherwise offloading to low-end GPUs cannot pay.
        let dense_gap = A100_DENSE_FLOPS / P100_DENSE_FLOPS;
        let attn_gap = A100_ATTN_BW / P100_ATTN_BW;
        assert!(attn_gap < 5.0, "attention gap {attn_gap}");
        assert!(dense_gap / attn_gap > 5.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn lan_is_slower_than_pcie() {
        assert!(LAN_BETA > PCIE_BETA);
        assert!(LAN_ALPHA > PCIE_ALPHA);
    }
}
