//! Analytic kernel timing models — the simulated "silicon".
//!
//! Two families:
//! * [`dense`] — parameter-carrying GEMMs (QKV/out-proj/MLP): roofline of
//!   compute rate vs. weight-streaming bandwidth.
//! * [`attention`] — the parameter-free KV-bound attention kernel, linear
//!   in cache bytes and head count exactly as the paper observes (Fig. 7),
//!   which is what makes Hetis's linear profiling model (Eq. 3) work.

pub mod attention;
pub mod dense;
