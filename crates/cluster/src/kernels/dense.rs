//! Dense (GEMM) kernel timing: roofline of compute vs. weight streaming.

use crate::device::DeviceSpec;

/// One dense-kernel invocation: how many FLOPs it performs and how many
/// weight bytes it must stream from device memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseWork {
    /// Floating-point operations.
    pub flops: f64,
    /// Weight bytes streamed (the decode-regime bound).
    pub weight_bytes: f64,
}

impl DenseWork {
    /// Sums two pieces of dense work executed back-to-back.
    pub fn plus(self, other: DenseWork) -> DenseWork {
        DenseWork {
            flops: self.flops + other.flops,
            weight_bytes: self.weight_bytes + other.weight_bytes,
        }
    }

    /// Zero work.
    pub const ZERO: DenseWork = DenseWork {
        flops: 0.0,
        weight_bytes: 0.0,
    };
}

/// Time for dense work in the *prefill* regime (large token counts —
/// compute-bound on every paper device at the profiled batch sizes).
///
/// Still takes the roofline max: a pathological 1-token "prefill" falls
/// back to the streaming bound.
pub fn dense_prefill_time(spec: &DeviceSpec, work: DenseWork, kernels: u32) -> f64 {
    roofline(spec, work) + kernels as f64 * spec.launch_overhead
}

/// Time for dense work in the *decode* regime (one token per sequence —
/// weight-streaming-bound until batch sizes grow large, after which the
/// compute term takes over; this crossover is exactly what Fig. 2a shows).
pub fn dense_decode_time(spec: &DeviceSpec, work: DenseWork, kernels: u32) -> f64 {
    roofline(spec, work) + kernels as f64 * spec.launch_overhead
}

#[inline]
fn roofline(spec: &DeviceSpec, work: DenseWork) -> f64 {
    let compute = work.flops / spec.dense_flops;
    let stream = work.weight_bytes / spec.decode_stream_bw;
    compute.max(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceSpec, GpuType};

    fn specs() -> (DeviceSpec, DeviceSpec, DeviceSpec) {
        (
            DeviceSpec::of(GpuType::A100),
            DeviceSpec::of(GpuType::Rtx3090),
            DeviceSpec::of(GpuType::P100),
        )
    }

    #[test]
    fn prefill_is_compute_bound_at_scale() {
        let (a, ..) = specs();
        // 1 TFLOP over 1 GB of weights: compute term dominates on A100.
        let w = DenseWork {
            flops: 1e12,
            weight_bytes: 1e9,
        };
        let t = dense_prefill_time(&a, w, 0);
        assert!((t - 1e12 / a.dense_flops).abs() / t < 1e-9);
    }

    #[test]
    fn decode_is_stream_bound_at_small_batch() {
        let (a, ..) = specs();
        // 1 GFLOP over 1 GB of weights (tiny batch): streaming dominates.
        let w = DenseWork {
            flops: 1e9,
            weight_bytes: 1e9,
        };
        let t = dense_decode_time(&a, w, 0);
        assert!((t - 1e9 / a.decode_stream_bw).abs() / t < 1e-9);
    }

    #[test]
    fn decode_crossover_with_batch_growth() {
        // As the token count grows, decode dense transitions from
        // stream-bound to compute-bound (Fig. 2a's regime change).
        let (a, ..) = specs();
        let per_token_flops = 1.4e9; // ~Llama-70B one layer MLP
        let weight_bytes = 1.4e9;
        let t_small = dense_decode_time(
            &a,
            DenseWork {
                flops: 8.0 * per_token_flops,
                weight_bytes,
            },
            0,
        );
        let t_large = dense_decode_time(
            &a,
            DenseWork {
                flops: 512.0 * per_token_flops,
                weight_bytes,
            },
            0,
        );
        // Small batch: time equals the streaming bound (flat in batch).
        assert!((t_small - weight_bytes / a.decode_stream_bw).abs() / t_small < 1e-9);
        // Large batch: strictly larger, governed by compute.
        assert!(t_large > t_small * 3.0);
    }

    #[test]
    fn mlp_gap_p100_vs_a100_in_paper_window() {
        // Fig. 2a / §2.3: the decode-MLP gap at large batch should sit in
        // the ~25–40x window.
        let (a, _, p) = specs();
        let w = DenseWork {
            flops: 400.0 * 1.4e9,
            weight_bytes: 1.4e9,
        };
        let gap = dense_decode_time(&p, w, 0) / dense_decode_time(&a, w, 0);
        assert!((20.0..45.0).contains(&gap), "MLP gap {gap}");
    }

    #[test]
    fn launch_overhead_counted_per_kernel() {
        let (a, ..) = specs();
        let w = DenseWork {
            flops: 0.0,
            weight_bytes: 0.0,
        };
        let t = dense_decode_time(&a, w, 3);
        assert!((t - 3.0 * a.launch_overhead).abs() < 1e-15);
    }

    #[test]
    fn work_addition() {
        let w = DenseWork {
            flops: 1.0,
            weight_bytes: 2.0,
        }
        .plus(DenseWork {
            flops: 3.0,
            weight_bytes: 4.0,
        });
        assert_eq!(
            w,
            DenseWork {
                flops: 4.0,
                weight_bytes: 6.0
            }
        );
    }
}
