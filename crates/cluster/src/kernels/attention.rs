//! Attention kernel timing: linear in KV bytes and query heads.
//!
//! The paper validates exactly this structure empirically (Fig. 7):
//! attention time is independent of request count at fixed heads+cache,
//! linear in cache size, and linear in head count. The simulated ground
//! truth is therefore the same linear form the Profiler later re-fits —
//! with per-device coefficients derived from the calibrated envelope, plus
//! optional multiplicative noise injected by callers.

use crate::device::DeviceSpec;

/// One decode-attention invocation on a device (one layer): total query
/// heads across all requests resident here, and total KV bytes they attend
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttnWork {
    /// Total query heads across requests.
    pub query_heads: f64,
    /// Total KV-cache bytes read.
    pub kv_bytes: f64,
}

impl AttnWork {
    /// Sums attention work batched into one kernel.
    pub fn plus(self, other: AttnWork) -> AttnWork {
        AttnWork {
            query_heads: self.query_heads + other.query_heads,
            kv_bytes: self.kv_bytes + other.kv_bytes,
        }
    }

    /// Zero work.
    pub const ZERO: AttnWork = AttnWork {
        query_heads: 0.0,
        kv_bytes: 0.0,
    };

    /// True if there is nothing to compute.
    pub fn is_zero(&self) -> bool {
        self.query_heads == 0.0 && self.kv_bytes == 0.0
    }
}

/// Decode-attention time on `spec` (one layer, one kernel):
/// `a·heads + b·kv_bytes + c` — the simulator's ground truth for Eq. 3.
///
/// Returns 0 for zero work (no kernel is launched at all).
pub fn attn_decode_time(spec: &DeviceSpec, work: AttnWork) -> f64 {
    if work.is_zero() {
        return 0.0;
    }
    spec.attn_per_head * work.query_heads + work.kv_bytes / spec.attn_bw + spec.launch_overhead
}

/// Prefill-attention time: compute-bound quadratic attention, executed on
/// the primary workers (Hetis runs prefill attention with the dense ops).
pub fn attn_prefill_time(spec: &DeviceSpec, flops: f64) -> f64 {
    if flops == 0.0 {
        return 0.0;
    }
    flops / spec.dense_flops + spec.launch_overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceSpec, GpuType};

    #[test]
    fn linear_in_kv_bytes() {
        // Fig. 7b: attention time grows linearly with cache size.
        let s = DeviceSpec::of(GpuType::A100);
        let base = AttnWork {
            query_heads: 1000.0,
            kv_bytes: 1e9,
        };
        let t1 = attn_decode_time(&s, base);
        let t2 = attn_decode_time(
            &s,
            AttnWork {
                kv_bytes: 2e9,
                ..base
            },
        );
        let slope = t2 - t1;
        assert!((slope - 1e9 / s.attn_bw).abs() / slope < 1e-9);
    }

    #[test]
    fn linear_in_heads() {
        // Fig. 7c: attention time grows linearly with head count.
        let s = DeviceSpec::of(GpuType::P100);
        let t1 = attn_decode_time(
            &s,
            AttnWork {
                query_heads: 10_000.0,
                kv_bytes: 1e9,
            },
        );
        let t2 = attn_decode_time(
            &s,
            AttnWork {
                query_heads: 20_000.0,
                kv_bytes: 1e9,
            },
        );
        assert!(((t2 - t1) - 10_000.0 * s.attn_per_head).abs() < 1e-12);
    }

    #[test]
    fn independent_of_request_count() {
        // Fig. 7a: with total heads and cache fixed, splitting work across
        // more requests changes nothing — the model has no request term.
        let s = DeviceSpec::of(GpuType::Rtx3090);
        let w = AttnWork {
            query_heads: 4000.0,
            kv_bytes: 3e9,
        };
        // "100 requests" and "400 requests" with the same aggregate:
        let t100 = attn_decode_time(&s, w);
        let t400 = attn_decode_time(&s, w);
        assert_eq!(t100, t400);
    }

    #[test]
    fn attention_gap_narrow_across_devices() {
        // Fig. 2b: attention gap P100/A100 in the ~2–5x range for a
        // realistic mix (Llama-70B-like, 400 requests × 1000 ctx).
        let a = DeviceSpec::of(GpuType::A100);
        let p = DeviceSpec::of(GpuType::P100);
        let w = AttnWork {
            query_heads: 400.0 * 64.0,
            kv_bytes: 400.0 * 4.1e6,
        };
        let gap = attn_decode_time(&p, w) / attn_decode_time(&a, w);
        assert!((2.0..5.5).contains(&gap), "attention gap {gap}");
    }

    #[test]
    fn zero_work_zero_time() {
        let s = DeviceSpec::of(GpuType::A100);
        assert_eq!(attn_decode_time(&s, AttnWork::ZERO), 0.0);
        assert_eq!(attn_prefill_time(&s, 0.0), 0.0);
    }

    #[test]
    fn prefill_attention_compute_bound() {
        let s = DeviceSpec::of(GpuType::A100);
        let t = attn_prefill_time(&s, 1e12);
        assert!(t > 1e12 / s.dense_flops);
        assert!(t < 1e12 / s.dense_flops + 2.0 * s.launch_overhead);
    }
}
