//! Heterogeneous GPU cluster model: devices, kernel timing, memory and
//! network.
//!
//! This crate is the substitute for the paper's physical testbed (a host
//! with 4×A100-80GB, two hosts with 2×RTX-3090 each, and a host with
//! 4×P100, joined by a 100 Gbps LAN with PCIe inside each host). Every
//! performance number it produces is derived from an analytic device model
//! *calibrated against the paper's own measurements*:
//!
//! * Table 1 — OPT-2.7B whole-model iteration times per GPU
//!   (prefill ratio A100 : 3090 : P100 = 1 : 2.45 : 24.5,
//!   decode ratio 1 : 1.47 : 7.93);
//! * Fig. 2 — per-module decode gaps for Llama-70B (MLP up to ~40×,
//!   Attention only ~2–5×);
//! * §5.1 — the alpha–beta point-to-point network model.
//!
//! The calibration constants and the tests that pin them live in
//! [`calib`]. See `DESIGN.md` §5 for the derivation.

pub mod calib;
pub mod cluster;
pub mod device;
pub mod kernels;
pub mod memory;
pub mod net;

pub use cluster::{Cluster, ClusterBuilder, HostId};
pub use device::{Device, DeviceId, DeviceSpec, GpuType};
pub use kernels::attention::{attn_decode_time, attn_prefill_time, AttnWork};
pub use kernels::dense::{dense_decode_time, dense_prefill_time, DenseWork};
pub use memory::MemoryLedger;
pub use net::collective::{all_gather_time, all_reduce_time, p2p_time};
pub use net::link::{AlphaBeta, LinkKind};
pub use net::stream::MigrationStream;
