//! Network model: alpha–beta links, collective cost models, and
//! low-priority migration streams.

pub mod collective;
pub mod link;
pub mod stream;
