//! Collective communication cost models (ring algorithms over alpha–beta
//! links), matching how NCCL behaves at these message sizes.

use super::link::AlphaBeta;

/// Ring all-reduce over `n` participants whose slowest hop has parameters
/// `worst`: `2(n-1)·alpha + 2·(n-1)/n · bytes · beta`.
///
/// Tensor parallelism issues two of these per layer (after attention
/// output projection and after the MLP), which is why cross-host TP is
/// ruinous and the Parallelizer keeps TP groups inside hosts.
pub fn all_reduce_time(worst: AlphaBeta, n: usize, bytes: f64) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    2.0 * (nf - 1.0) * worst.alpha + 2.0 * (nf - 1.0) / nf * bytes * worst.beta
}

/// Ring all-gather over `n` participants: `(n-1)·alpha + (n-1)/n·bytes·beta`
/// where `bytes` is the total gathered payload.
pub fn all_gather_time(worst: AlphaBeta, n: usize, bytes: f64) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    (nf - 1.0) * worst.alpha + (nf - 1.0) / nf * bytes * worst.beta
}

/// Point-to-point send of `bytes` over `link`.
pub fn p2p_time(link: AlphaBeta, bytes: f64) -> f64 {
    link.time(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::link::LinkKind;

    #[test]
    fn allreduce_degenerate_cases() {
        let l = AlphaBeta::of(LinkKind::IntraHost);
        assert_eq!(all_reduce_time(l, 1, 1e6), 0.0);
        assert_eq!(all_reduce_time(l, 4, 0.0), 0.0);
    }

    #[test]
    fn allreduce_grows_with_participants() {
        let l = AlphaBeta::of(LinkKind::IntraHost);
        let t2 = all_reduce_time(l, 2, 1e6);
        let t4 = all_reduce_time(l, 4, 1e6);
        let t8 = all_reduce_time(l, 8, 1e6);
        assert!(t2 < t4 && t4 < t8);
        // Bandwidth term saturates at 2*bytes*beta; the alpha term keeps
        // growing linearly — the "communication overhead grows with the
        // number of GPUs" effect from §2.3.
        let bw_term_only = 2.0 * 1e6 * l.beta;
        assert!(t8 < bw_term_only + 14.0 * l.alpha + 1e-12);
    }

    #[test]
    fn allreduce_formula_exact() {
        let l = AlphaBeta {
            alpha: 1e-5,
            beta: 1e-10,
        };
        let t = all_reduce_time(l, 4, 1e8);
        let expect = 2.0 * 3.0 * 1e-5 + 2.0 * 0.75 * 1e8 * 1e-10;
        assert!((t - expect).abs() < 1e-15);
    }

    #[test]
    fn allgather_half_of_allreduce_bandwidth() {
        let l = AlphaBeta::of(LinkKind::InterHost);
        let ar = all_reduce_time(l, 4, 1e8);
        let ag = all_gather_time(l, 4, 1e8);
        assert!(ag < ar);
        assert!((ar / ag - 2.0).abs() < 0.1);
    }

    #[test]
    fn p2p_matches_link() {
        let l = AlphaBeta::of(LinkKind::InterHost);
        assert_eq!(p2p_time(l, 1e6), l.time(1e6));
    }
}
