//! Point-to-point link model (alpha–beta), as used by the paper (§5.1).

use crate::calib;

/// Physical class of the path between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Same host: PCIe.
    IntraHost,
    /// Different hosts: the 100 Gbps LAN.
    InterHost,
    /// Same device: no transfer.
    Loopback,
}

/// The alpha–beta model: `t(bytes) = alpha + beta * bytes`.
///
/// This is the same "well-established linear Alpha–Beta model" the paper
/// cites for its transfer-overhead modeling (Eq. 4); here it doubles as the
/// simulated ground truth the Profiler measures against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBeta {
    /// Fixed per-message latency (s).
    pub alpha: f64,
    /// Inverse bandwidth (s/byte).
    pub beta: f64,
}

impl AlphaBeta {
    /// Transfer time for a message of `bytes`.
    #[inline]
    pub fn time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            0.0
        } else {
            self.alpha + self.beta * bytes
        }
    }

    /// Effective bandwidth in B/s.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        1.0 / self.beta
    }

    /// Parameters for a link kind, from the calibration constants.
    pub fn of(kind: LinkKind) -> AlphaBeta {
        match kind {
            LinkKind::IntraHost => AlphaBeta {
                alpha: calib::PCIE_ALPHA,
                beta: calib::PCIE_BETA,
            },
            LinkKind::InterHost => AlphaBeta {
                alpha: calib::LAN_ALPHA,
                beta: calib::LAN_BETA,
            },
            LinkKind::Loopback => AlphaBeta {
                alpha: 0.0,
                beta: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_zero_time() {
        let l = AlphaBeta::of(LinkKind::InterHost);
        assert_eq!(l.time(0.0), 0.0);
        assert!(l.time(1.0) > 0.0);
    }

    #[test]
    fn loopback_is_free() {
        let l = AlphaBeta::of(LinkKind::Loopback);
        assert_eq!(l.time(1e9), 0.0);
    }

    #[test]
    fn lan_100gbps() {
        let l = AlphaBeta::of(LinkKind::InterHost);
        // 1 GB at 12.5 GB/s = 80 ms plus alpha.
        let t = l.time(1e9);
        assert!((t - (0.080 + l.alpha)).abs() < 1e-9, "t = {t}");
        assert!((l.bandwidth() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn pcie_faster_than_lan() {
        let pcie = AlphaBeta::of(LinkKind::IntraHost);
        let lan = AlphaBeta::of(LinkKind::InterHost);
        assert!(pcie.time(1e8) < lan.time(1e8));
    }
}
