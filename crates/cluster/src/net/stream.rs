//! Low-priority migration streams (§6 "Live cache migration").
//!
//! Hetis migrates KV cache on low-priority CUDA streams so collective
//! communication of ongoing inference is never blocked. We model each
//! directed (src-host → dst-host) pair as an independent queue that gets a
//! fixed *share* of the link bandwidth; foreground traffic sees the full
//! link, migrations see the share and queue FIFO behind each other.

use super::link::AlphaBeta;
use crate::calib::MIGRATION_BW_SHARE;
use std::collections::HashMap;

/// FIFO background-transfer scheduler over a set of directed paths.
#[derive(Debug, Clone, Default)]
pub struct MigrationStream {
    /// Per-path time at which the previous migration drains.
    busy_until: HashMap<(u32, u32), f64>,
    /// Total bytes migrated (stats).
    total_bytes: f64,
    /// Number of migrations (stats).
    count: u64,
}

impl MigrationStream {
    /// An idle stream scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a background copy of `bytes` over `link` on the directed
    /// path `src → dst` starting no earlier than `now`; returns completion
    /// time. Foreground traffic is *not* delayed (low-priority stream); the
    /// copy itself runs at `MIGRATION_BW_SHARE` of the link bandwidth.
    pub fn schedule(&mut self, src: u32, dst: u32, link: AlphaBeta, bytes: f64, now: f64) -> f64 {
        if bytes <= 0.0 || (link.alpha == 0.0 && link.beta == 0.0) {
            // Loopback or empty: instantaneous.
            return now;
        }
        let slot = self.busy_until.entry((src, dst)).or_insert(0.0);
        let start = now.max(*slot);
        let duration = link.alpha + link.beta * bytes / MIGRATION_BW_SHARE;
        let done = start + duration;
        *slot = done;
        self.total_bytes += bytes;
        self.count += 1;
        done
    }

    /// Earliest time the path `src → dst` is idle again.
    pub fn idle_at(&self, src: u32, dst: u32) -> f64 {
        self.busy_until.get(&(src, dst)).copied().unwrap_or(0.0)
    }

    /// Folds a shard's stream back into the authoritative one after a
    /// parallel simulation window. `shard` started the window as a clone
    /// of this stream (recorded in `base_count` / `base_bytes`) and only
    /// scheduled on paths its shard owns, so per-path horizons merge by
    /// max and the stats add by delta.
    pub fn absorb_shard(&mut self, shard: &MigrationStream, base_count: u64, base_bytes: f64) {
        for (&path, &t) in &shard.busy_until {
            let slot = self.busy_until.entry(path).or_insert(0.0);
            if t > *slot {
                *slot = t;
            }
        }
        self.count += shard.count - base_count;
        self.total_bytes += shard.total_bytes - base_bytes;
    }

    /// Total bytes ever scheduled.
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Number of migrations ever scheduled.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::link::LinkKind;

    #[test]
    fn migration_slower_than_foreground() {
        let link = AlphaBeta::of(LinkKind::InterHost);
        let mut s = MigrationStream::new();
        let done = s.schedule(0, 1, link, 1e9, 0.0);
        let fg = link.time(1e9);
        assert!(done > fg, "migration {done} should exceed foreground {fg}");
        assert!((done - (link.alpha + link.beta * 1e9 / MIGRATION_BW_SHARE)).abs() < 1e-12);
    }

    #[test]
    fn fifo_per_path() {
        let link = AlphaBeta::of(LinkKind::InterHost);
        let mut s = MigrationStream::new();
        let d1 = s.schedule(0, 1, link, 1e8, 0.0);
        let d2 = s.schedule(0, 1, link, 1e8, 0.0);
        assert!(d2 > d1);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
        // A different path is independent.
        let d3 = s.schedule(1, 0, link, 1e8, 0.0);
        assert!((d3 - d1).abs() < 1e-12);
    }

    #[test]
    fn late_start_respected() {
        let link = AlphaBeta::of(LinkKind::InterHost);
        let mut s = MigrationStream::new();
        let d = s.schedule(0, 1, link, 1e8, 5.0);
        assert!(d > 5.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.total_bytes(), 1e8);
    }

    #[test]
    fn loopback_instant() {
        let mut s = MigrationStream::new();
        let d = s.schedule(2, 2, AlphaBeta::of(LinkKind::Loopback), 1e9, 3.0);
        assert_eq!(d, 3.0);
    }
}
