//! Cost-aware acquisition: spot vs on-demand replacement billing.
//!
//! The churn scenarios already model *capacity* economics — devices
//! revoked and rejoining — but never dollars. This module adds the
//! missing axis. An [`AcquisitionPolicy`] decides, at every acquisition
//! point (the initial fleet at `t = 0` and every churn replacement that
//! `Join`s), whether the slot is bought on the spot market (billed at the
//! on-demand rate × the [`PriceTrace`] multiplier, integrated over the
//! occupancy interval) or on-demand (full rate). [`CostMeter::bill`]
//! replays the deterministic churn schedule through that state machine
//! and produces a ledger; [`CostMeter::attach`] folds the ledger and the
//! run's in-SLO goodput into a [`CostReport`] on the `RunReport`.
//!
//! Billing is a pure replay of `(events, prices, policy)` — it never
//! perturbs the simulation. Two runs differing only in acquisition
//! policy therefore have *identical* serving behavior, SLO attainment,
//! and goodput; only the dollars (and hence `cost_per_in_slo_token`)
//! move. That is exactly the comparison the spot-acquisition scenario
//! pins: the cost-aware policy must undercut always-on-demand at
//! equal-or-better attainment, and the digest (which folds the attached
//! `CostReport`) freezes the acquisition decisions themselves.
//!
//! The same decision function is shared with [`crate::ElasticController`]
//! (see `ElasticController::acquisition_decision`), so "what the
//! controller chose during the run" and "what the meter billed after it"
//! cannot drift apart.

use hetis_cluster::{Cluster, DeviceId, GpuType};
use hetis_engine::{ClusterEvent, ClusterEventKind, CostReport, RunReport};
use hetis_workload::PriceTrace;

/// How a device slot is billed for one occupancy interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquisitionClass {
    /// Spot market: on-demand rate × integrated price multiplier.
    Spot,
    /// On-demand: full rate for the whole interval.
    OnDemand,
}

/// The acquisition decision rule consulted at every acquisition point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcquisitionPolicy {
    /// Every slot on-demand — the conservative baseline every cost
    /// comparison races against.
    AlwaysOnDemand,
    /// Every slot on spot, whatever the current price.
    AlwaysSpot,
    /// Cost-aware: take spot while the multiplier at acquisition time is
    /// at or below the threshold, fall back to on-demand when the spot
    /// market is expensive (multiplier above it).
    SpotAware {
        /// Largest spot multiplier still worth taking.
        threshold: f64,
    },
}

impl AcquisitionPolicy {
    /// Decides the billing class given the spot multiplier quoted at the
    /// acquisition instant.
    pub fn decide(&self, multiplier: f64) -> AcquisitionClass {
        match *self {
            AcquisitionPolicy::AlwaysOnDemand => AcquisitionClass::OnDemand,
            AcquisitionPolicy::AlwaysSpot => AcquisitionClass::Spot,
            AcquisitionPolicy::SpotAware { threshold } => {
                if multiplier <= threshold {
                    AcquisitionClass::Spot
                } else {
                    AcquisitionClass::OnDemand
                }
            }
        }
    }

    /// Short policy name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            AcquisitionPolicy::AlwaysOnDemand => "ondemand",
            AcquisitionPolicy::AlwaysSpot => "spot",
            AcquisitionPolicy::SpotAware { .. } => "spot-aware",
        }
    }
}

/// One acquisition decision, as made by the controller or the meter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquisitionRecord {
    /// The acquired device slot.
    pub device: DeviceId,
    /// Simulated acquisition time.
    pub time: f64,
    /// Spot multiplier quoted at that time.
    pub multiplier: f64,
    /// The decision.
    pub class: AcquisitionClass,
}

/// One billed occupancy interval of a device slot.
#[derive(Debug, Clone, PartialEq)]
pub struct BilledInterval {
    /// The device.
    pub device: DeviceId,
    /// Its GPU class.
    pub gpu: GpuType,
    /// Interval start (acquisition).
    pub start: f64,
    /// Interval end (revocation, failure, or end of billing window).
    pub end: f64,
    /// How it was billed.
    pub class: AcquisitionClass,
    /// Dollars charged.
    pub dollars: f64,
    /// True when churn (revocation/failure) ended the interval.
    pub revoked: bool,
}

/// The full billing of one run: intervals plus the acquisition log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BillingLedger {
    /// Every billed interval, in deterministic (device, start) order.
    pub intervals: Vec<BilledInterval>,
    /// Every acquisition decision, in the same order they were made.
    pub acquisitions: Vec<AcquisitionRecord>,
}

impl BillingLedger {
    /// Total dollars across all intervals.
    pub fn total_dollars(&self) -> f64 {
        self.intervals.iter().map(|i| i.dollars).sum()
    }

    /// Folds the ledger and a run's in-SLO goodput into a [`CostReport`].
    pub fn report(&self, run: &RunReport) -> CostReport {
        let mut on_demand_dollars = 0.0;
        let mut spot_dollars = 0.0;
        let mut per_gpu: Vec<(GpuType, f64)> = Vec::new();
        let mut billed_device_s = 0.0;
        let mut revocations = 0;
        for i in &self.intervals {
            match i.class {
                AcquisitionClass::Spot => spot_dollars += i.dollars,
                AcquisitionClass::OnDemand => on_demand_dollars += i.dollars,
            }
            billed_device_s += i.end - i.start;
            revocations += i.revoked as u64;
            match per_gpu.iter_mut().find(|(g, _)| *g == i.gpu) {
                Some((_, d)) => *d += i.dollars,
                None => per_gpu.push((i.gpu, i.dollars)),
            }
        }
        let (mut spot_acquisitions, mut on_demand_acquisitions) = (0, 0);
        for a in &self.acquisitions {
            match a.class {
                AcquisitionClass::Spot => spot_acquisitions += 1,
                AcquisitionClass::OnDemand => on_demand_acquisitions += 1,
            }
        }
        let in_slo_tokens: u64 = run.class_stats().iter().map(|s| s.goodput_tokens).sum();
        let total = on_demand_dollars + spot_dollars;
        CostReport {
            on_demand_dollars,
            spot_dollars,
            per_gpu_dollars: per_gpu,
            spot_acquisitions,
            on_demand_acquisitions,
            revocations,
            billed_device_s,
            in_slo_tokens,
            cost_per_in_slo_token: if in_slo_tokens == 0 {
                f64::INFINITY
            } else {
                total / in_slo_tokens as f64
            },
        }
    }
}

/// Bills a churn schedule against a price trace under one acquisition
/// policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMeter {
    /// On-demand $/hour per GPU class.
    pub rates_per_hour: Vec<(GpuType, f64)>,
    /// The spot-price multiplier curve.
    pub prices: PriceTrace,
    /// The acquisition decision rule.
    pub policy: AcquisitionPolicy,
}

impl CostMeter {
    /// A meter with the default cloud rate card.
    pub fn new(prices: PriceTrace, policy: AcquisitionPolicy) -> Self {
        CostMeter {
            rates_per_hour: Self::default_rates(),
            prices,
            policy,
        }
    }

    /// Ball-park public-cloud on-demand $/hour for the paper's testbed
    /// classes (synthetic tiers interpolate between P100 and A100 like
    /// their compute envelopes do).
    pub fn default_rates() -> Vec<(GpuType, f64)> {
        vec![
            (GpuType::A100, 4.10),
            (GpuType::Rtx3090, 0.80),
            (GpuType::P100, 0.55),
        ]
    }

    /// On-demand $/hour of one GPU class.
    pub fn rate_of(&self, gpu: GpuType) -> f64 {
        if let Some((_, r)) = self.rates_per_hour.iter().find(|(g, _)| *g == gpu) {
            return *r;
        }
        match gpu {
            GpuType::Custom(tier) => {
                // Geometric interpolation between the P100 and A100 rates,
                // matching the synthetic compute envelope.
                let t = (tier as f64 / 4.0).clamp(0.0, 1.0);
                0.55 * (4.10f64 / 0.55).powf(t)
            }
            _ => 1.0,
        }
    }

    /// Dollars for one interval of `gpu` billed as `class`.
    fn interval_dollars(&self, gpu: GpuType, class: AcquisitionClass, a: f64, b: f64) -> f64 {
        let per_s = self.rate_of(gpu) / 3600.0;
        match class {
            AcquisitionClass::OnDemand => per_s * (b - a),
            AcquisitionClass::Spot => per_s * self.prices.integral(a, b),
        }
    }

    /// The acquisition state machine: replays the deterministic churn
    /// schedule and bills every occupancy interval of every device.
    ///
    /// Per device slot: acquired at `t = 0` (policy decides spot vs
    /// on-demand at the opening quote); a `PreemptNotice` revokes it
    /// `notice` seconds later and a `Fail` immediately (either ends the
    /// interval and counts a revocation); a `Join` re-acquires it at the
    /// quote of that instant. Slowdowns don't touch billing. The final
    /// open interval closes at `until` (the billing horizon).
    pub fn bill(&self, cluster: &Cluster, events: &[ClusterEvent], until: f64) -> BillingLedger {
        let mut ledger = BillingLedger::default();
        for dev in cluster.devices() {
            let gpu = dev.spec.gpu;
            let acquire = |t: f64, ledger: &mut BillingLedger| {
                let multiplier = self.prices.at(t);
                let rec = AcquisitionRecord {
                    device: dev.id,
                    time: t,
                    multiplier,
                    class: self.policy.decide(multiplier),
                };
                ledger.acquisitions.push(rec);
                rec
            };
            let close =
                |rec: AcquisitionRecord, end: f64, revoked: bool, ledger: &mut BillingLedger| {
                    let end = end.min(until).max(rec.time);
                    ledger.intervals.push(BilledInterval {
                        device: dev.id,
                        gpu,
                        start: rec.time,
                        end,
                        class: rec.class,
                        dollars: self.interval_dollars(gpu, rec.class, rec.time, end),
                        revoked,
                    });
                };
            let mut open = Some(acquire(0.0, &mut ledger));
            for e in events.iter().filter(|e| e.device == dev.id) {
                match e.kind {
                    ClusterEventKind::PreemptNotice { notice } => {
                        if let Some(rec) = open.take() {
                            close(rec, e.time + notice, true, &mut ledger);
                        }
                    }
                    ClusterEventKind::Fail => {
                        if let Some(rec) = open.take() {
                            close(rec, e.time, true, &mut ledger);
                        }
                    }
                    ClusterEventKind::Join => {
                        if open.is_none() && e.time < until {
                            open = Some(acquire(e.time, &mut ledger));
                        }
                    }
                    ClusterEventKind::Slowdown { .. } | ClusterEventKind::Restore => {}
                }
            }
            if let Some(rec) = open.take() {
                close(rec, until, false, &mut ledger);
            }
        }
        ledger
    }

    /// Bills the schedule and attaches the resulting [`CostReport`] to
    /// `report` (the billing window covers the run's full simulated
    /// duration, including any drain past the scenario horizon).
    pub fn attach(
        &self,
        cluster: &Cluster,
        events: &[ClusterEvent],
        horizon: f64,
        report: &mut RunReport,
    ) {
        let until = horizon.max(report.duration);
        let ledger = self.bill(cluster, events, until);
        report.cost = Some(ledger.report(report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_engine::ClusterEventKind;

    fn storm_events(c: &Cluster) -> Vec<ClusterEvent> {
        crate::ChurnProcess::preemption_storm(c, GpuType::P100, 99, 20.0, 5.0, 10.0, Some(15.0))
    }

    #[test]
    fn decisions_follow_policy_and_quote() {
        let aware = AcquisitionPolicy::SpotAware { threshold: 0.6 };
        assert_eq!(aware.decide(0.5), AcquisitionClass::Spot);
        assert_eq!(aware.decide(0.7), AcquisitionClass::OnDemand);
        assert_eq!(
            AcquisitionPolicy::AlwaysOnDemand.decide(0.01),
            AcquisitionClass::OnDemand
        );
        assert_eq!(
            AcquisitionPolicy::AlwaysSpot.decide(0.99),
            AcquisitionClass::Spot
        );
    }

    #[test]
    fn billing_is_deterministic_and_conserves_time() {
        let c = paper_cluster();
        let events = storm_events(&c);
        let prices = PriceTrace::seeded(17, 120.0, 10.0, 0.25, 0.95);
        let meter = CostMeter::new(prices, AcquisitionPolicy::AlwaysSpot);
        let a = meter.bill(&c, &events, 120.0);
        let b = meter.bill(&c, &events, 120.0);
        assert_eq!(a, b);
        // Every P100 has a revoked interval plus a rejoined one; every
        // other device bills exactly [0, until).
        let p100s = c.devices_of_type(GpuType::P100);
        for d in c.devices() {
            let ivs: Vec<&BilledInterval> =
                a.intervals.iter().filter(|i| i.device == d.id).collect();
            if p100s.contains(&d.id) {
                assert_eq!(ivs.len(), 2, "revoked then re-acquired");
                assert!(ivs[0].revoked && !ivs[1].revoked);
            } else {
                assert_eq!(ivs.len(), 1);
                assert_eq!((ivs[0].start, ivs[0].end), (0.0, 120.0));
            }
            for i in &ivs {
                assert!(i.end >= i.start && i.dollars >= 0.0);
            }
        }
    }

    #[test]
    fn spot_always_undercuts_on_demand() {
        let c = paper_cluster();
        let events = storm_events(&c);
        let prices = PriceTrace::seeded(23, 120.0, 10.0, 0.25, 0.95);
        let on_demand = CostMeter::new(prices.clone(), AcquisitionPolicy::AlwaysOnDemand);
        let spot = CostMeter::new(prices.clone(), AcquisitionPolicy::AlwaysSpot);
        let aware = CostMeter::new(prices, AcquisitionPolicy::SpotAware { threshold: 0.7 });
        let d_od = on_demand.bill(&c, &events, 120.0).total_dollars();
        let d_spot = spot.bill(&c, &events, 120.0).total_dollars();
        let d_aware = aware.bill(&c, &events, 120.0).total_dollars();
        assert!(d_spot < d_od, "spot {d_spot} vs on-demand {d_od}");
        assert!(
            d_spot <= d_aware && d_aware <= d_od,
            "aware must sit between: {d_spot} <= {d_aware} <= {d_od}"
        );
    }

    #[test]
    fn fail_bills_to_the_failure_instant() {
        let c = paper_cluster();
        let dev = c.devices()[0].id;
        let events = vec![
            ClusterEvent {
                time: 30.0,
                device: dev,
                kind: ClusterEventKind::Fail,
            },
            ClusterEvent {
                time: 50.0,
                device: dev,
                kind: ClusterEventKind::Join,
            },
        ];
        let meter = CostMeter::new(PriceTrace::constant(0.5), AcquisitionPolicy::AlwaysOnDemand);
        let ledger = meter.bill(&c, &events, 100.0);
        let ivs: Vec<&BilledInterval> = ledger
            .intervals
            .iter()
            .filter(|i| i.device == dev)
            .collect();
        assert_eq!(ivs.len(), 2);
        assert_eq!((ivs[0].start, ivs[0].end), (0.0, 30.0));
        assert!(ivs[0].revoked);
        assert_eq!((ivs[1].start, ivs[1].end), (50.0, 100.0));
        // 80 billed seconds at the device's rate.
        let rate = meter.rate_of(c.devices()[0].spec.gpu) / 3600.0;
        let dev_dollars: f64 = ivs.iter().map(|i| i.dollars).sum();
        assert!((dev_dollars - rate * 80.0).abs() < 1e-9);
    }

    #[test]
    fn custom_tier_rates_interpolate() {
        let meter = CostMeter::new(PriceTrace::constant(0.5), AcquisitionPolicy::AlwaysSpot);
        let lo = meter.rate_of(GpuType::Custom(0));
        let hi = meter.rate_of(GpuType::Custom(4));
        assert!((lo - 0.55).abs() < 1e-9);
        assert!((hi - 4.10).abs() < 1e-9);
        let mid = meter.rate_of(GpuType::Custom(2));
        assert!(lo < mid && mid < hi);
    }
}
