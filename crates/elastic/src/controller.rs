//! The [`ElasticController`]: live re-planning on cluster change.
//!
//! On every churn event the controller re-runs the Parallelizer's
//! hierarchical search on the *surviving* device set (via a sub-cluster
//! rebuild with an id mapping), diffs the resulting topology against the
//! running one, and emits a [`ReplanPlan`]:
//!
//! * a **constrained topology** that is actually applied — surviving
//!   primary stages keep their devices and layer splits (weights cannot
//!   teleport mid-run), while the attention-worker pool is rebuilt from
//!   every surviving non-primary device, including primaries orphaned by
//!   a Down instance;
//! * **drain migrations** — for a device with a preemption notice, the
//!   Hauler-style head moves that carry resident KV to healthy devices
//!   before revocation;
//! * a deterministic **re-plan latency** derived from the number of
//!   candidates the search evaluated (the engine stalls pipelines for
//!   this long, charging the cost the paper reports in §7.4).

use crate::cost::{AcquisitionRecord, CostMeter};
use hetis_cluster::{Cluster, ClusterBuilder, DeviceId};
use hetis_core::{search_topology, HetisConfig, WorkloadProfile};
use hetis_engine::{
    ClusterEvent, ClusterEventKind, DeviceHealth, HeadPlacement, HealthView, InstanceRole, Phase,
    PolicyCtx, RedispatchOp, Topology,
};
use hetis_telemetry::TelemetrySnapshot;
use hetis_workload::RequestId;

/// Controller tunables.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Fixed re-plan cost in simulated seconds (state sync, dispatch
    /// barrier).
    pub replan_base_s: f64,
    /// Marginal simulated seconds per search candidate evaluated (the
    /// paper reports 4–15 s searches; our analytic search evaluates the
    /// same candidate set far faster, so the cost is re-imposed here).
    pub replan_per_candidate_s: f64,
    /// Run the full hierarchical re-search for the diff/latency model.
    /// When false only the constrained worker rebuild runs (cheapest).
    pub rerun_search: bool,
    /// Plan drain migrations on preemption notices.
    pub drain_on_notice: bool,
    /// Telemetry snapshots retained by [`ElasticController::observe`]:
    /// a fixed-capacity ring mirroring the telemetry `EventRing` —
    /// observing past capacity overwrites the oldest snapshot and counts
    /// a drop instead of growing without bound.
    pub observation_capacity: usize,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            replan_base_s: 0.25,
            replan_per_candidate_s: 0.002,
            rerun_search: true,
            drain_on_notice: true,
            observation_capacity: 256,
        }
    }
}

/// Fixed-capacity ring of telemetry snapshots with drop accounting —
/// the same overwrite-oldest contract as the telemetry `EventRing`, so
/// a long run cannot grow the controller's memory without bound.
#[derive(Debug, Clone)]
struct ObservationRing {
    buf: Vec<TelemetrySnapshot>,
    /// Index of the oldest element once the ring is full (0 before).
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl ObservationRing {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "observation ring needs capacity >= 1");
        ObservationRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, snap: TelemetrySnapshot) {
        if self.buf.len() < self.capacity {
            self.buf.push(snap);
        } else {
            self.buf[self.head] = snap;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Buffered snapshots, oldest first.
    fn iter(&self) -> impl Iterator<Item = &TelemetrySnapshot> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// Topology delta produced by a re-plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopologyDiff {
    /// Attention workers added, per (instance, device).
    pub workers_added: Vec<(usize, DeviceId)>,
    /// Attention workers removed, per (instance, device).
    pub workers_removed: Vec<(usize, DeviceId)>,
    /// Instances currently Down.
    pub instances_down: Vec<usize>,
}

/// The controller's decision for one cluster event.
#[derive(Debug, Clone)]
pub struct ReplanPlan {
    /// Constrained topology to install (primaries preserved).
    pub topology: Topology,
    /// What changed relative to the running topology.
    pub diff: TopologyDiff,
    /// Unconstrained re-search result on the surviving devices, mapped
    /// back to cluster ids (diagnostic: what a from-scratch deployment
    /// would look like).
    pub ideal_topology: Option<Topology>,
    /// Candidates the re-search evaluated (0 when skipped).
    pub searched_candidates: usize,
    /// Simulated seconds the re-plan costs.
    pub replan_latency: f64,
    /// KV drain moves for draining devices.
    pub migrations: Vec<RedispatchOp>,
}

/// Live re-planner around the Hetis Parallelizer — the elastic
/// subsystem's main entry point.
///
/// On every cluster-change event it re-runs the hierarchical topology
/// search on the *surviving* device set (rebuilt as a sub-cluster with
/// id remapping), diffs the ideal result against the running topology,
/// and emits a [`ReplanPlan`]: the constrained topology actually
/// installable live (surviving primaries keep their devices and layers
/// — weights cannot teleport — while the attention-worker pool is
/// rebuilt from all surviving non-primary devices), Hauler-planned KV
/// drains off devices under preemption notice, and a deterministic
/// re-plan latency the engine charges to every pipeline. Wrap it around
/// any policy with [`crate::ElasticPolicy`]; construct the no-replan
/// ablation with [`crate::ElasticPolicy::frozen`].
#[derive(Debug, Clone)]
pub struct ElasticController {
    hetis: HetisConfig,
    profile: WorkloadProfile,
    cfg: ElasticConfig,
    /// Telemetry snapshots fed in via [`Self::observe`]: a bounded ring
    /// (capacity [`ElasticConfig::observation_capacity`]), newest last.
    observations: ObservationRing,
    /// Cost-aware acquisition: when set, every capacity re-acquisition
    /// (a `Join` replacing revoked hardware) is priced against the
    /// meter's spot trace and classed spot vs on-demand by its policy.
    /// `None` keeps the controller economics-blind (the pre-PR-10
    /// behavior, bit-identical digests).
    acquisition: Option<CostMeter>,
}

impl ElasticController {
    /// A controller planning for `profile` with the paper's defaults.
    pub fn new(hetis: HetisConfig, profile: WorkloadProfile) -> Self {
        let cfg = ElasticConfig::default();
        ElasticController {
            hetis,
            profile,
            observations: ObservationRing::new(cfg.observation_capacity),
            cfg,
            acquisition: None,
        }
    }

    /// Overrides the elastic tunables (builder style: re-sizes the
    /// observation ring, discarding anything already observed).
    pub fn with_config(mut self, cfg: ElasticConfig) -> Self {
        self.observations = ObservationRing::new(cfg.observation_capacity);
        self.cfg = cfg;
        self
    }

    /// Enables cost-aware acquisition (builder style): `Join` events are
    /// priced against the meter's spot trace and the replacement slot is
    /// classed spot vs on-demand by its policy. The *same* meter should
    /// bill the run afterwards ([`CostMeter::attach`]) — decision and
    /// billing share one `decide()` on one trace, so they cannot drift.
    pub fn with_acquisition(mut self, meter: CostMeter) -> Self {
        self.acquisition = Some(meter);
        self
    }

    /// The acquisition meter, when cost-aware acquisition is enabled.
    pub fn acquisition(&self) -> Option<&CostMeter> {
        self.acquisition.as_ref()
    }

    /// The spot-vs-on-demand call for one cluster event: `Some` exactly
    /// when a meter is configured and the event (re-)acquires capacity
    /// (a `Join`). Pure — same event, same trace, same answer — which is
    /// what lets [`CostMeter::bill`] replay the run's decisions after
    /// the fact without a decision log.
    pub fn acquisition_decision(&self, event: &ClusterEvent) -> Option<AcquisitionRecord> {
        let meter = self.acquisition.as_ref()?;
        if !matches!(event.kind, ClusterEventKind::Join) {
            return None;
        }
        let multiplier = meter.prices.at(event.time);
        Some(AcquisitionRecord {
            device: event.device,
            time: event.time,
            multiplier,
            class: meter.policy.decide(multiplier),
        })
    }

    /// Feeds a live telemetry snapshot (queue depths, streaming
    /// per-class percentiles, KV occupancy) into the controller's
    /// bounded ring — past capacity the oldest snapshot is overwritten
    /// and counted in [`Self::observations_dropped`]. The retained
    /// stream feeds diagnostics ([`Self::max_observed_queue_depth`]);
    /// the *closed-loop* consumer is [`crate::ClosedLoopController`],
    /// which watches each snapshot as it arrives.
    pub fn observe(&mut self, snapshot: &TelemetrySnapshot) {
        self.observations.push(snapshot.clone());
    }

    /// Snapshots currently retained (oldest first, at most
    /// [`ElasticConfig::observation_capacity`]).
    pub fn observations(&self) -> Vec<&TelemetrySnapshot> {
        self.observations.iter().collect()
    }

    /// Snapshots overwritten because the observation ring was full.
    pub fn observations_dropped(&self) -> u64 {
        self.observations.dropped
    }

    /// Largest admission-queue depth seen across the retained snapshots
    /// — the simplest scale-up pressure signal.
    pub fn max_observed_queue_depth(&self) -> u32 {
        self.observations
            .iter()
            .map(|s| s.max_queue_depth())
            .max()
            .unwrap_or(0)
    }

    /// Computes the plan for one event. `ctx.topology` is the engine's
    /// current (already health-pruned) topology.
    pub fn replan(
        &self,
        event: &ClusterEvent,
        health: &HealthView,
        ctx: &PolicyCtx<'_>,
    ) -> ReplanPlan {
        let accepting = health.accepting();

        // Unconstrained re-search on the survivors (diff + latency model).
        let (ideal_topology, searched_candidates) = if self.cfg.rerun_search {
            match ideal_search(ctx.cluster, &accepting, ctx, &self.profile, &self.hetis) {
                Some((topo, evaluated)) => (Some(topo), evaluated),
                None => (None, 0),
            }
        } else {
            (None, 0)
        };

        // Constrained rebuild: keep surviving primaries, re-pool workers.
        let topology = rebuild_workers(ctx.topology, health);
        let diff = diff_topologies(ctx.topology, &topology);

        let migrations = if self.cfg.drain_on_notice
            && matches!(event.kind, ClusterEventKind::PreemptNotice { .. })
        {
            plan_drain(event.device, &topology, health, ctx)
        } else {
            Vec::new()
        };

        let replan_latency =
            self.cfg.replan_base_s + self.cfg.replan_per_candidate_s * searched_candidates as f64;

        ReplanPlan {
            topology,
            diff,
            ideal_topology,
            searched_candidates,
            replan_latency,
            migrations,
        }
    }

    /// Drain moves for every currently draining device, restricted to
    /// `instance` when given. Called from the scheduling loop: requests
    /// are only movable between iterations, so the drain happens
    /// incrementally across the whole notice window rather than in one
    /// shot at the event.
    pub fn drain_plans(
        &self,
        health: &HealthView,
        ctx: &PolicyCtx<'_>,
        instance: Option<usize>,
    ) -> Vec<RedispatchOp> {
        if !self.cfg.drain_on_notice {
            return Vec::new();
        }
        let mut out = Vec::new();
        for dev in health.draining() {
            // The snapshot only refreshes on policy-visible events, so a
            // device past its revocation deadline may still read as
            // draining — nothing can be saved there any more.
            if let DeviceHealth::Draining { deadline, .. } = health.of(dev) {
                if deadline <= ctx.now {
                    continue;
                }
            }
            out.extend(
                plan_drain(dev, ctx.topology, health, ctx)
                    .into_iter()
                    .filter(|op| {
                        instance.is_none_or(|i| {
                            ctx.requests
                                .get(&op.req)
                                .map(|r| r.instance == i)
                                .unwrap_or(false)
                        })
                    }),
            );
        }
        out
    }

    /// Plans a load-driven capacity change for the closed loop (no churn
    /// event involved). Scale-out rebuilds the attention-worker pool
    /// from every accepting non-primary device — reclaiming idle
    /// silicon exactly like a churn replan; scale-in retires the
    /// highest-id worker of the instance with the largest pool. Returns
    /// `None` when the change would be a no-op (already at full pool /
    /// no worker left to retire), so the caller can skip the replan
    /// stall entirely. Latency is `replan_base_s` only: no search is
    /// re-run for a pool resize.
    pub fn scale_plan(
        &self,
        scale_out: bool,
        health: &HealthView,
        ctx: &PolicyCtx<'_>,
    ) -> Option<ReplanPlan> {
        let topology = if scale_out {
            rebuild_workers(ctx.topology, health)
        } else {
            shrink_workers(ctx.topology)?
        };
        let diff = diff_topologies(ctx.topology, &topology);
        if diff.workers_added.is_empty() && diff.workers_removed.is_empty() {
            return None;
        }
        Some(ReplanPlan {
            topology,
            diff,
            ideal_topology: None,
            searched_candidates: 0,
            replan_latency: self.cfg.replan_base_s,
            migrations: Vec::new(),
        })
    }
}

/// Retires one attention worker: the highest-id device of the serving
/// instance with the most first-stage workers (lowest instance index on
/// ties). `None` when no serving instance has any worker left —
/// scale-in never touches primaries.
fn shrink_workers(current: &Topology) -> Option<Topology> {
    let mut topo = current.clone();
    let (k, n) = topo
        .instances
        .iter()
        .enumerate()
        .filter(|(_, i)| i.role != InstanceRole::Down)
        .map(|(k, i)| {
            (
                k,
                i.stages
                    .first()
                    .map(|s| s.attention_workers.len())
                    .unwrap_or(0),
            )
        })
        .max_by_key(|&(k, n)| (n, std::cmp::Reverse(k)))?;
    if n == 0 {
        return None;
    }
    let victim = *topo.instances[k].stages[0].attention_workers.iter().max()?;
    for s in topo.instances[k].stages.iter_mut() {
        s.attention_workers.retain(|&d| d != victim);
    }
    Some(topo)
}

/// Rebuilds the shared attention-worker pool of every serving instance
/// from all surviving devices that are not a serving instance's primary.
/// Orphaned primaries of Down instances re-enter the pool as workers —
/// idle silicon is the first thing elasticity should reclaim.
fn rebuild_workers(current: &Topology, health: &HealthView) -> Topology {
    let mut topo = current.clone();
    let mut primary_of_serving: Vec<DeviceId> = Vec::new();
    for inst in &topo.instances {
        if inst.role == InstanceRole::Down {
            continue;
        }
        for s in &inst.stages {
            primary_of_serving.extend(s.primary.devices.iter().copied());
        }
    }
    let mut pool: Vec<DeviceId> = health
        .accepting()
        .into_iter()
        .filter(|d| !primary_of_serving.contains(d))
        .collect();
    pool.sort();

    let serving: Vec<usize> = topo
        .instances
        .iter()
        .enumerate()
        .filter(|(_, i)| i.role != InstanceRole::Down)
        .map(|(k, _)| k)
        .collect();
    if serving.is_empty() {
        return topo;
    }
    // Round-robin devices across serving instances (device-id order keeps
    // it deterministic); each instance's stages share its pool (§3.2).
    let mut per_inst: Vec<Vec<DeviceId>> = vec![Vec::new(); topo.instances.len()];
    for (i, dev) in pool.into_iter().enumerate() {
        per_inst[serving[i % serving.len()]].push(dev);
    }
    for (k, inst) in topo.instances.iter_mut().enumerate() {
        if inst.role == InstanceRole::Down {
            continue;
        }
        for s in inst.stages.iter_mut() {
            s.attention_workers = per_inst[k].clone();
        }
    }
    topo
}

/// Per-instance worker-list diff plus Down inventory.
fn diff_topologies(old: &Topology, new: &Topology) -> TopologyDiff {
    let mut diff = TopologyDiff::default();
    for (k, (o, n)) in old.instances.iter().zip(&new.instances).enumerate() {
        if n.role == InstanceRole::Down {
            diff.instances_down.push(k);
            continue;
        }
        let ow = o
            .stages
            .first()
            .map(|s| s.attention_workers.clone())
            .unwrap_or_default();
        let nw = n
            .stages
            .first()
            .map(|s| s.attention_workers.clone())
            .unwrap_or_default();
        for &d in &nw {
            if !ow.contains(&d) {
                diff.workers_added.push((k, d));
            }
        }
        for &d in &ow {
            if !nw.contains(&d) {
                diff.workers_removed.push((k, d));
            }
        }
    }
    diff
}

/// Runs the hierarchical search on the surviving devices by rebuilding a
/// sub-cluster with the same host structure (ids remapped back
/// afterwards). Returns `None` when the survivors cannot host the model.
fn ideal_search(
    cluster: &Cluster,
    accepting: &[DeviceId],
    ctx: &PolicyCtx<'_>,
    profile: &WorkloadProfile,
    hetis: &HetisConfig,
) -> Option<(Topology, usize)> {
    if accepting.is_empty() {
        return None;
    }
    let mut builder = ClusterBuilder::new();
    let mut mapping: Vec<DeviceId> = Vec::new(); // sub id -> cluster id
    for h in 0..cluster.num_hosts() {
        let survivors: Vec<DeviceId> = cluster
            .host_devices(hetis_cluster::HostId(h as u32))
            .iter()
            .copied()
            .filter(|d| accepting.contains(d))
            .collect();
        if survivors.is_empty() {
            continue;
        }
        let gpus: Vec<_> = survivors.iter().map(|&d| cluster.spec(d).gpu).collect();
        builder = builder.host(&gpus);
        mapping.extend(survivors);
    }
    if mapping.is_empty() {
        return None;
    }
    let sub = builder.build();
    // Quick feasibility gate: enough total memory for one weight copy.
    if sub.total_memory() < ctx.model.weight_bytes_total() {
        return None;
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        search_topology(&sub, ctx.model, profile, hetis)
    }))
    .ok()?;
    Some((map_topology(&outcome.topology, &mapping), outcome.evaluated))
}

/// Rewrites every device id of a sub-cluster topology back to cluster ids.
fn map_topology(topo: &Topology, mapping: &[DeviceId]) -> Topology {
    let mut out = topo.clone();
    for inst in out.instances.iter_mut() {
        for s in inst.stages.iter_mut() {
            for d in s.primary.devices.iter_mut() {
                *d = mapping[d.index()];
            }
            for d in s.attention_workers.iter_mut() {
                *d = mapping[d.index()];
            }
        }
    }
    out
}

/// Hauler-style drain: for every resident decoding request holding head
/// groups on `draining`, plan a re-dispatch that moves exactly those
/// heads to the healthiest alternative device of the same stage (most
/// free KV bytes, id tie-break). The engine executes the moves on its
/// low-priority migration streams.
fn plan_drain(
    draining: DeviceId,
    topo: &Topology,
    health: &HealthView,
    ctx: &PolicyCtx<'_>,
) -> Vec<RedispatchOp> {
    let mut affected: Vec<(RequestId, HeadPlacement, usize)> = ctx
        .requests
        .values()
        .filter(|r| r.phase == Phase::Decoding && !r.in_flight)
        .filter_map(|r| {
            let p = r.placement.as_ref()?;
            p.devices()
                .contains(&draining)
                .then(|| (r.req.id, p.clone(), r.instance))
        })
        .collect();
    affected.sort_by_key(|&(rid, ..)| rid);

    let mut planned_bytes: Vec<(DeviceId, u64)> = Vec::new(); // drain-targeting pressure
    let mut out = Vec::new();
    for (rid, placement, inst) in affected {
        if topo.instances[inst].role == InstanceRole::Down {
            continue;
        }
        let mut new_placement = placement.clone();
        let mut changed = false;
        for (s, stage_pl) in new_placement.per_stage.iter_mut().enumerate() {
            let Some(pos) = stage_pl.iter().position(|&(d, _)| d == draining) else {
                continue;
            };
            let (_, heads) = stage_pl.remove(pos);
            // Candidate targets: this stage's devices that accept KV.
            let stage = &topo.instances[inst].stages[s];
            let mut candidates: Vec<DeviceId> = stage
                .attention_devices()
                .into_iter()
                .filter(|&d| d != draining && matches!(health.of(d), DeviceHealth::Alive { .. }))
                .collect();
            candidates.sort();
            candidates.dedup();
            if candidates.is_empty() {
                // Nowhere to drain to: leave the placement; the engine
                // will recompute-preempt at revocation.
                stage_pl.insert(pos, (draining, heads));
                continue;
            }
            let free_of = |d: DeviceId| -> i128 {
                let planned: u64 = planned_bytes
                    .iter()
                    .filter(|&&(pd, _)| pd == d)
                    .map(|&(_, b)| b)
                    .sum();
                ctx.kv.device(d).free_bytes() as i128 - planned as i128
            };
            let target = *candidates
                .iter()
                .max_by_key(|&&d| (free_of(d), std::cmp::Reverse(d)))
                .expect("non-empty candidates");
            match stage_pl.iter_mut().find(|(d, _)| *d == target) {
                Some(entry) => entry.1 += heads,
                None => stage_pl.push((target, heads)),
            }
            stage_pl.sort_by_key(|&(d, _)| d);
            // Pressure bookkeeping so sequential drains spread out: only
            // this stage's resident bytes land on this target.
            let moved = ctx
                .kv
                .device(draining)
                .entry(rid, s as u16)
                .map(|e| {
                    ctx.kv
                        .device(draining)
                        .bytes_needed(e.groups, e.tokens, e.layers)
                })
                .unwrap_or(0);
            planned_bytes.push((target, moved));
            changed = true;
        }
        if changed {
            out.push(RedispatchOp {
                req: rid,
                new_placement,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_cluster::GpuType;
    use hetis_engine::{InstanceTopo, StageTopo};
    use hetis_parallel::StageConfig;

    fn two_instance_topo(c: &Cluster) -> Topology {
        let a100 = c.devices_of_type(GpuType::A100);
        let p100 = c.devices_of_type(GpuType::P100);
        let mk = |devs: Vec<DeviceId>, workers: Vec<DeviceId>| {
            let mut s = StageTopo::plain(StageConfig {
                devices: devs,
                layers: 40,
            });
            s.attention_workers = workers;
            InstanceTopo {
                stages: vec![s],
                role: InstanceRole::Both,
            }
        };
        Topology {
            instances: vec![
                mk(vec![a100[0], a100[1]], vec![p100[0], p100[2]]),
                mk(vec![a100[2], a100[3]], vec![p100[1], p100[3]]),
            ],
        }
    }

    fn full_health(c: &Cluster) -> Vec<DeviceHealth> {
        vec![DeviceHealth::NOMINAL; c.len()]
    }

    #[test]
    fn observe_accumulates_snapshots() {
        use hetis_core::WorkloadProfile;
        use hetis_telemetry::QueueDepthStat;
        use hetis_workload::DatasetKind;
        let mut ctl = ElasticController::new(
            HetisConfig::default(),
            WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 8),
        );
        assert_eq!(ctl.max_observed_queue_depth(), 0);
        for (t, depth) in [(1.0, 3u32), (2.0, 9), (3.0, 5)] {
            let snap = TelemetrySnapshot {
                now: t,
                window_secs: f64::INFINITY,
                events_published: 1,
                events_buffered: 1,
                dropped: 0,
                completions: 0,
                open_flows: 0,
                classes: vec![],
                queue_depths: vec![QueueDepthStat {
                    time: t,
                    instance: 0,
                    waiting: depth,
                    running: 2,
                }],
                kv: None,
            };
            ctl.observe(&snap);
        }
        assert_eq!(ctl.observations().len(), 3);
        assert_eq!(ctl.max_observed_queue_depth(), 9);
        assert_eq!(ctl.observations_dropped(), 0);
    }

    #[test]
    fn observation_ring_is_bounded_and_counts_drops() {
        use hetis_core::WorkloadProfile;
        use hetis_workload::DatasetKind;
        let mut ctl = ElasticController::new(
            HetisConfig::default(),
            WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 8),
        )
        .with_config(ElasticConfig {
            observation_capacity: 4,
            ..ElasticConfig::default()
        });
        let mk = |t: f64| TelemetrySnapshot {
            now: t,
            window_secs: f64::INFINITY,
            events_published: 1,
            events_buffered: 1,
            dropped: 0,
            completions: 0,
            open_flows: 0,
            classes: vec![],
            queue_depths: vec![],
            kv: None,
        };
        for t in 0..10 {
            ctl.observe(&mk(t as f64));
        }
        assert_eq!(ctl.observations().len(), 4, "capacity bounds retention");
        assert_eq!(ctl.observations_dropped(), 6);
        // Oldest-first iteration: the survivors are the last four pushed.
        let times: Vec<f64> = ctl.observations().iter().map(|s| s.now).collect();
        assert_eq!(times, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn scale_plan_out_reclaims_and_in_retires() {
        use hetis_core::WorkloadProfile;
        use hetis_workload::DatasetKind;
        let c = paper_cluster();
        let model = hetis_model::llama_13b();
        let ctl = ElasticController::new(
            HetisConfig::default(),
            WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 8),
        );
        let kv =
            hetis_engine::KvState::new(&c, &model, 16, &std::collections::HashMap::new()).unwrap();
        let requests = std::collections::HashMap::new();
        // Start from a topology whose worker pool is NOT full: the 3090s
        // are unused.
        let topo = two_instance_topo(&c);
        let ctx = PolicyCtx {
            cluster: &c,
            model: &model,
            now: 0.0,
            kv: hetis_engine::KvView::single(&kv),
            requests: hetis_engine::RequestsView::single(&requests),
            topology: &topo,
            prefill_chunk_tokens: None,
            prefix: hetis_engine::PrefixView::Empty,
        };
        let view = HealthView::new(full_health(&c));
        let plan = ctl
            .scale_plan(true, &view, &ctx)
            .expect("idle 3090s to reclaim");
        assert!(!plan.diff.workers_added.is_empty());
        assert_eq!(plan.searched_candidates, 0, "pool resize re-runs no search");
        assert!(plan.migrations.is_empty());
        assert!(plan.replan_latency > 0.0);

        // Scale-out again from the full pool: a no-op, so no plan.
        let full = plan.topology.clone();
        let ctx_full = PolicyCtx {
            topology: &full,
            ..ctx
        };
        assert!(ctl.scale_plan(true, &view, &ctx_full).is_none());

        // Scale-in retires exactly one worker (the highest id of the
        // biggest pool) and never touches primaries.
        let plan_in = ctl
            .scale_plan(false, &view, &ctx_full)
            .expect("workers to retire");
        assert_eq!(plan_in.diff.workers_removed.len(), 1);
        assert!(plan_in.diff.workers_added.is_empty());
        let before: usize = full
            .instances
            .iter()
            .map(|i| i.stages[0].attention_workers.len())
            .sum();
        let after: usize = plan_in
            .topology
            .instances
            .iter()
            .map(|i| i.stages[0].attention_workers.len())
            .sum();
        assert_eq!(after + 1, before);
        for (o, n) in full.instances.iter().zip(&plan_in.topology.instances) {
            assert_eq!(o.stages[0].primary.devices, n.stages[0].primary.devices);
        }
    }

    #[test]
    fn rebuild_pools_surviving_non_primaries() {
        let c = paper_cluster();
        let topo = two_instance_topo(&c);
        let mut h = full_health(&c);
        // Kill p100[0] (dev 8).
        let dead = c.devices_of_type(GpuType::P100)[0];
        h[dead.index()] = DeviceHealth::Dead;
        let view = HealthView::new(h);
        let out = rebuild_workers(&topo, &view);
        for inst in &out.instances {
            for s in &inst.stages {
                assert!(!s.attention_workers.contains(&dead));
            }
        }
        // Survivors: 4×3090 + 3×P100 = 7 workers, split 4/3 round-robin.
        let total: usize = out
            .instances
            .iter()
            .map(|i| i.stages[0].attention_workers.len())
            .sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn orphaned_primaries_become_workers() {
        let c = paper_cluster();
        let mut topo = two_instance_topo(&c);
        topo.instances[1].role = InstanceRole::Down;
        let view = HealthView::new(full_health(&c));
        let out = rebuild_workers(&topo, &view);
        let workers = &out.instances[0].stages[0].attention_workers;
        let a100 = c.devices_of_type(GpuType::A100);
        // The Down instance's A100s are reclaimed as attention workers.
        assert!(workers.contains(&a100[2]) && workers.contains(&a100[3]));
        // The Down instance itself is untouched.
        assert_eq!(out.instances[1].role, InstanceRole::Down);
    }

    #[test]
    fn diff_reports_adds_and_removals() {
        let c = paper_cluster();
        let old = two_instance_topo(&c);
        let mut h = full_health(&c);
        let dead = c.devices_of_type(GpuType::P100)[0];
        h[dead.index()] = DeviceHealth::Dead;
        let new = rebuild_workers(&old, &HealthView::new(h));
        let diff = diff_topologies(&old, &new);
        assert!(diff.workers_removed.iter().any(|&(_, d)| d == dead));
        assert!(!diff.workers_added.is_empty(), "3090s should join the pool");
    }

    #[test]
    fn ideal_search_maps_ids_back() {
        use hetis_model::llama_70b;
        use hetis_workload::DatasetKind;
        let c = paper_cluster();
        let model = llama_70b();
        let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 32);
        // Survivors: everything except the last P100.
        let dead = c.devices_of_type(GpuType::P100)[3];
        let accepting: Vec<DeviceId> = c
            .devices()
            .iter()
            .map(|d| d.id)
            .filter(|&d| d != dead)
            .collect();
        let kv =
            hetis_engine::KvState::new(&c, &model, 16, &std::collections::HashMap::new()).unwrap();
        let requests = std::collections::HashMap::new();
        let topo = two_instance_topo(&c);
        let ctx = PolicyCtx {
            cluster: &c,
            model: &model,
            now: 0.0,
            kv: hetis_engine::KvView::single(&kv),
            requests: hetis_engine::RequestsView::single(&requests),
            topology: &topo,
            prefill_chunk_tokens: None,
            prefix: hetis_engine::PrefixView::Empty,
        };
        let (ideal, evaluated) =
            ideal_search(&c, &accepting, &ctx, &profile, &HetisConfig::default())
                .expect("survivors host llama-70b");
        assert!(evaluated > 0);
        let mut used: Vec<DeviceId> = Vec::new();
        for i in &ideal.instances {
            for s in &i.stages {
                used.extend(s.primary.devices.iter().copied());
                used.extend(s.attention_workers.iter().copied());
            }
        }
        used.sort();
        used.dedup();
        for d in &used {
            assert!(accepting.contains(d), "{d} is not a survivor");
            assert_ne!(*d, dead);
        }
    }
}
