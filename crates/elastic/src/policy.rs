//! [`ElasticPolicy`]: wraps any serving policy with live re-planning.
//!
//! The wrapper delegates every scheduling decision to the inner policy
//! and adds the [`crate::ElasticController`] behind the engine's
//! cluster-change hook. Two modes:
//!
//! * [`ElasticPolicy::with_controller`] — full elasticity: on every churn
//!   event the controller re-plans the worker pool, drains KV off
//!   devices under preemption notice, and charges a deterministic
//!   re-plan latency.
//! * [`ElasticPolicy::frozen`] — the no-replanning baseline: the engine
//!   still enforces safety (dead devices pruned, lost instances downed,
//!   orphaned requests re-enqueued) but nothing is re-planned, drained,
//!   or reclaimed. This is the "vLLM-style failover" every elastic
//!   scenario compares against.

use crate::controller::ElasticController;
use hetis_cluster::{Cluster, DeviceId};
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::{
    ClusterEvent, EngineConfig, Handoff, HeadPlacement, HealthView, Policy, PolicyCtx,
    RedispatchOp, ReplanResponse, Topology, VictimAction,
};
use hetis_model::ModelSpec;
use hetis_workload::{Request, RequestId};

/// A policy wrapper adding (or explicitly withholding) elasticity.
pub struct ElasticPolicy<P: Policy> {
    inner: P,
    controller: Option<ElasticController>,
    /// Health as of the last cluster event (drives incremental drains).
    health: Option<HealthView>,
    /// Replan statistics observed so far (event label, searched
    /// candidates), for diagnostics.
    replans_seen: Vec<(String, usize)>,
    /// Drain re-dispatches planned across the run.
    drains_planned: usize,
}

impl<P: Policy> ElasticPolicy<P> {
    /// Full elasticity around `inner`.
    pub fn with_controller(inner: P, controller: ElasticController) -> Self {
        ElasticPolicy {
            inner,
            controller: Some(controller),
            health: None,
            replans_seen: Vec::new(),
            drains_planned: 0,
        }
    }

    /// The no-replan baseline: engine-enforced safety only.
    pub fn frozen(inner: P) -> Self {
        ElasticPolicy {
            inner,
            controller: None,
            health: None,
            replans_seen: Vec::new(),
            drains_planned: 0,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Events handled so far as (label, searched candidates).
    pub fn replans_seen(&self) -> &[(String, usize)] {
        &self.replans_seen
    }

    /// Drain re-dispatches planned across the run.
    pub fn drains_planned(&self) -> usize {
        self.drains_planned
    }
}

/// Hetis with its matching elastic controller (same config + profile).
pub fn elastic_hetis(cfg: HetisConfig, profile: WorkloadProfile) -> ElasticPolicy<HetisPolicy> {
    let controller = ElasticController::new(cfg.clone(), profile);
    ElasticPolicy::with_controller(HetisPolicy::new(cfg, profile), controller)
}

/// Hetis with churn safety but no re-planning (the ablation baseline).
pub fn frozen_hetis(cfg: HetisConfig, profile: WorkloadProfile) -> ElasticPolicy<HetisPolicy> {
    ElasticPolicy::frozen(HetisPolicy::new(cfg, profile))
}

impl<P: Policy> Policy for ElasticPolicy<P> {
    fn name(&self) -> String {
        match self.controller {
            Some(_) => format!("{}+elastic", self.inner.name()),
            None => format!("{}+frozen", self.inner.name()),
        }
    }

    fn topology(&mut self, cluster: &Cluster, model: &ModelSpec, cfg: &EngineConfig) -> Topology {
        self.inner.topology(cluster, model, cfg)
    }

    fn route(&mut self, req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        self.inner.route(req, ctx)
    }

    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>> {
        self.inner.place_batch(instance, reqs, ctx)
    }

    fn after_prefill(
        &mut self,
        instance: usize,
        req: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> Option<Handoff> {
        self.inner.after_prefill(instance, req, ctx)
    }

    fn before_decode(&mut self, instance: usize, ctx: &PolicyCtx<'_>) -> Vec<RedispatchOp> {
        // Incremental KV drain off devices under preemption notice:
        // requests are movable only between iterations, so each
        // scheduling round carries another slice of the drain. Drains
        // preempt the inner policy's balancing this round.
        if let (Some(controller), Some(health)) = (&self.controller, &self.health) {
            let drains = controller.drain_plans(health, ctx, Some(instance));
            if !drains.is_empty() {
                self.drains_planned += drains.len();
                return drains;
            }
        }
        self.inner.before_decode(instance, ctx)
    }

    fn select_victim(
        &mut self,
        instance: usize,
        device: DeviceId,
        blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        self.inner.select_victim(instance, device, blocked, ctx)
    }

    fn on_cluster_change(
        &mut self,
        event: &ClusterEvent,
        health: &HealthView,
        ctx: &PolicyCtx<'_>,
    ) -> ReplanResponse {
        self.health = Some(health.clone());
        let Some(controller) = &self.controller else {
            return ReplanResponse::default();
        };
        let plan = controller.replan(event, health, ctx);
        self.replans_seen
            .push((event.label(), plan.searched_candidates));
        ReplanResponse {
            new_topology: Some(plan.topology),
            migrations: plan.migrations,
            replan_latency: plan.replan_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_workload::DatasetKind;

    #[test]
    fn names_distinguish_modes() {
        let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 16);
        let e = elastic_hetis(HetisConfig::default(), profile);
        assert_eq!(e.name(), "hetis+elastic");
        let f = frozen_hetis(HetisConfig::default(), profile);
        assert_eq!(f.name(), "hetis+frozen");
    }
}
