//! [`ElasticPolicy`]: wraps any serving policy with live re-planning.
//!
//! The wrapper delegates every scheduling decision to the inner policy
//! and adds the [`crate::ElasticController`] behind the engine's
//! cluster-change hook. Two modes:
//!
//! * [`ElasticPolicy::with_controller`] — full elasticity: on every churn
//!   event the controller re-plans the worker pool, drains KV off
//!   devices under preemption notice, and charges a deterministic
//!   re-plan latency.
//! * [`ElasticPolicy::frozen`] — the no-replanning baseline: the engine
//!   still enforces safety (dead devices pruned, lost instances downed,
//!   orphaned requests re-enqueued) but nothing is re-planned, drained,
//!   or reclaimed. This is the "vLLM-style failover" every elastic
//!   scenario compares against.

use crate::closed_loop::ClosedLoopController;
use crate::controller::ElasticController;
use crate::cost::AcquisitionRecord;
use hetis_cluster::{Cluster, DeviceId};
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::{
    ClosedLoopConfig, ClusterEvent, ControlAction, ControlResponse, EngineConfig, Handoff,
    HeadPlacement, HealthView, Policy, PolicyCtx, RedispatchOp, ReplanResponse, Topology,
    VictimAction,
};
use hetis_model::ModelSpec;
use hetis_telemetry::TelemetrySnapshot;
use hetis_workload::{Request, RequestId};

/// A policy wrapper adding (or explicitly withholding) elasticity.
pub struct ElasticPolicy<P: Policy> {
    inner: P,
    controller: Option<ElasticController>,
    /// Health as of the last cluster event (drives incremental drains).
    health: Option<HealthView>,
    /// Replan statistics observed so far (event label, searched
    /// candidates), for diagnostics.
    replans_seen: Vec<(String, usize)>,
    /// Drain re-dispatches planned across the run.
    drains_planned: usize,
    /// Spot-vs-on-demand calls made on `Join` events (empty unless the
    /// controller has an acquisition meter), for diagnostics.
    acquisitions: Vec<AcquisitionRecord>,
    /// Closed-loop automaton, constructed lazily from the engine's
    /// `ClosedLoopConfig` on the first telemetry tick (stays `None` with
    /// an open loop).
    closed_loop: Option<ClosedLoopController>,
    /// Attention workers added by *actuated* closed-loop scale-outs and
    /// not yet returned. Scale-in proposals actuate only while this is
    /// positive: the loop never shrinks the pool below its pre-loop
    /// capacity (proposals whose plan came back `None` — nothing spare
    /// to reclaim — add nothing here).
    scaled_out_workers: usize,
}

impl<P: Policy> ElasticPolicy<P> {
    /// Full elasticity around `inner`.
    pub fn with_controller(inner: P, controller: ElasticController) -> Self {
        ElasticPolicy {
            inner,
            controller: Some(controller),
            health: None,
            replans_seen: Vec::new(),
            drains_planned: 0,
            acquisitions: Vec::new(),
            closed_loop: None,
            scaled_out_workers: 0,
        }
    }

    /// The no-replan baseline: engine-enforced safety only.
    pub fn frozen(inner: P) -> Self {
        ElasticPolicy {
            inner,
            controller: None,
            health: None,
            replans_seen: Vec::new(),
            drains_planned: 0,
            acquisitions: Vec::new(),
            closed_loop: None,
            scaled_out_workers: 0,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Events handled so far as (label, searched candidates).
    pub fn replans_seen(&self) -> &[(String, usize)] {
        &self.replans_seen
    }

    /// Drain re-dispatches planned across the run.
    pub fn drains_planned(&self) -> usize {
        self.drains_planned
    }

    /// Spot-vs-on-demand acquisition calls made on `Join` events, in
    /// event order (empty unless the controller carries a
    /// [`crate::CostMeter`]).
    pub fn acquisitions_decided(&self) -> &[AcquisitionRecord] {
        &self.acquisitions
    }

    /// The closed-loop automaton, once the first telemetry tick has
    /// constructed it (`None` with an open loop).
    pub fn closed_loop(&self) -> Option<&ClosedLoopController> {
        self.closed_loop.as_ref()
    }
}

/// Hetis with its matching elastic controller (same config + profile).
pub fn elastic_hetis(cfg: HetisConfig, profile: WorkloadProfile) -> ElasticPolicy<HetisPolicy> {
    let controller = ElasticController::new(cfg.clone(), profile);
    ElasticPolicy::with_controller(HetisPolicy::new(cfg, profile), controller)
}

/// Hetis with churn safety but no re-planning (the ablation baseline).
pub fn frozen_hetis(cfg: HetisConfig, profile: WorkloadProfile) -> ElasticPolicy<HetisPolicy> {
    ElasticPolicy::frozen(HetisPolicy::new(cfg, profile))
}

impl<P: Policy> Policy for ElasticPolicy<P> {
    fn name(&self) -> String {
        match self.controller {
            Some(_) => format!("{}+elastic", self.inner.name()),
            None => format!("{}+frozen", self.inner.name()),
        }
    }

    fn topology(&mut self, cluster: &Cluster, model: &ModelSpec, cfg: &EngineConfig) -> Topology {
        self.inner.topology(cluster, model, cfg)
    }

    fn route(&mut self, req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        self.inner.route(req, ctx)
    }

    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>> {
        self.inner.place_batch(instance, reqs, ctx)
    }

    fn after_prefill(
        &mut self,
        instance: usize,
        req: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> Option<Handoff> {
        self.inner.after_prefill(instance, req, ctx)
    }

    fn before_decode(&mut self, instance: usize, ctx: &PolicyCtx<'_>) -> Vec<RedispatchOp> {
        // Incremental KV drain off devices under preemption notice:
        // requests are movable only between iterations, so each
        // scheduling round carries another slice of the drain. Drains
        // preempt the inner policy's balancing this round.
        if let (Some(controller), Some(health)) = (&self.controller, &self.health) {
            let drains = controller.drain_plans(health, ctx, Some(instance));
            if !drains.is_empty() {
                self.drains_planned += drains.len();
                return drains;
            }
        }
        self.inner.before_decode(instance, ctx)
    }

    fn select_victim(
        &mut self,
        instance: usize,
        device: DeviceId,
        blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        self.inner.select_victim(instance, device, blocked, ctx)
    }

    fn on_cluster_change(
        &mut self,
        event: &ClusterEvent,
        health: &HealthView,
        ctx: &PolicyCtx<'_>,
    ) -> ReplanResponse {
        self.health = Some(health.clone());
        let Some(controller) = &self.controller else {
            return ReplanResponse::default();
        };
        let plan = controller.replan(event, health, ctx);
        self.replans_seen
            .push((event.label(), plan.searched_candidates));
        // Price the replacement when the event re-acquires capacity and
        // the controller is cost-aware (Join + meter configured).
        if let Some(decision) = controller.acquisition_decision(event) {
            self.acquisitions.push(decision);
        }
        ReplanResponse {
            new_topology: Some(plan.topology),
            migrations: plan.migrations,
            replan_latency: plan.replan_latency,
        }
    }

    fn on_telemetry_tick(
        &mut self,
        snapshot: &TelemetrySnapshot,
        closed_loop: &ClosedLoopConfig,
        health: &HealthView,
        ctx: &PolicyCtx<'_>,
    ) -> ControlResponse {
        // Feed the diagnostic stream (bounded ring) and run the automaton.
        if let Some(controller) = &mut self.controller {
            controller.observe(snapshot);
        }
        let automaton = self
            .closed_loop
            .get_or_insert_with(|| ClosedLoopController::new(closed_loop.clone()));
        let actions = automaton.on_tick(snapshot);
        if actions.is_empty() {
            return ControlResponse::default();
        }
        let mut response = ControlResponse::default();
        for &action in &actions {
            match action {
                ControlAction::ScaleOut { .. } | ControlAction::ScaleIn => {
                    // Scale proposals route through the elastic
                    // controller's replan path; a frozen policy records
                    // the proposal (it lands in the control log) but has
                    // no planner to actuate it. A no-op plan (already at
                    // full pool / nothing to retire) skips the replan —
                    // and its stall — entirely. Scale-ins actuate only
                    // while earlier scale-outs actually grew the pool:
                    // the loop never retires pre-loop capacity.
                    if let Some(controller) = &self.controller {
                        let out = matches!(action, ControlAction::ScaleOut { .. });
                        if !out && self.scaled_out_workers == 0 {
                            continue;
                        }
                        if let Some(plan) = controller.scale_plan(out, health, ctx) {
                            if out {
                                self.scaled_out_workers += plan.diff.workers_added.len();
                            } else {
                                self.scaled_out_workers = self
                                    .scaled_out_workers
                                    .saturating_sub(plan.diff.workers_removed.len().max(1));
                            }
                            self.replans_seen.push((
                                if out {
                                    "scale-out(load)".into()
                                } else {
                                    "scale-in(load)".into()
                                },
                                plan.searched_candidates,
                            ));
                            response.replan = Some(ReplanResponse {
                                new_topology: Some(plan.topology),
                                migrations: plan.migrations,
                                replan_latency: plan.replan_latency,
                            });
                        }
                    }
                }
                ControlAction::ThrottleOn { .. } => response.throttle = Some(true),
                ControlAction::ThrottleOff => response.throttle = Some(false),
                ControlAction::PaceOn { chunk_tokens, .. } => {
                    response.pace_chunk_tokens = Some(Some(chunk_tokens))
                }
                ControlAction::PaceOff => response.pace_chunk_tokens = Some(None),
            }
        }
        response.actions = actions;
        response
    }

    fn fork(&self) -> Option<Box<dyn Policy + Send>> {
        // The controller is immutable between barriers; `health` only
        // changes in `on_cluster_change` (a barrier hook). The fork needs
        // both so `before_decode` keeps planning incremental drains
        // inside windows. Diagnostics counters reset on the fork — they
        // are discarded at the merge anyway.
        let inner = self.inner.fork()?;
        Some(Box::new(ElasticPolicy {
            inner,
            controller: self.controller.clone(),
            health: self.health.clone(),
            replans_seen: Vec::new(),
            drains_planned: 0,
            acquisitions: Vec::new(),
            closed_loop: None,
            scaled_out_workers: self.scaled_out_workers,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_workload::DatasetKind;

    #[test]
    fn names_distinguish_modes() {
        let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 16);
        let e = elastic_hetis(HetisConfig::default(), profile);
        assert_eq!(e.name(), "hetis+elastic");
        let f = frozen_hetis(HetisConfig::default(), profile);
        assert_eq!(f.name(), "hetis+frozen");
    }
}
