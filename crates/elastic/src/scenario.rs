//! Churn scenarios: a request trace plus a deterministic cluster-change
//! schedule, built together so one seed reproduces the whole experiment.

use crate::churn::ChurnProcess;
use crate::cost::CostMeter;
use hetis_cluster::{Cluster, GpuType};
use hetis_engine::{run_with_churn, ClusterEvent, EngineConfig, Policy, RunReport};
use hetis_model::ModelSpec;
use hetis_workload::{ArrivalProcess, DatasetKind, PiecewiseRate, Poisson, Trace, TraceBuilder};

/// A complete elastic-serving scenario.
#[derive(Debug, Clone)]
pub struct ChurnScenario {
    /// The request trace.
    pub trace: Trace,
    /// The cluster-change schedule.
    pub events: Vec<ClusterEvent>,
    /// Horizon both were generated over, seconds.
    pub horizon: f64,
}

impl ChurnScenario {
    /// Steady Poisson arrivals plus a churn process.
    pub fn steady(
        cluster: &Cluster,
        dataset: DatasetKind,
        seed: u64,
        rate: f64,
        horizon: f64,
        churn: &ChurnProcess,
    ) -> Self {
        ChurnScenario {
            trace: TraceBuilder::new(dataset, seed).build(&Poisson::new(rate), horizon),
            events: churn.generate(cluster, horizon),
            horizon,
        }
    }

    /// The adversarial headline scenario: every device of `gpu` receives
    /// a preemption notice inside a storm window while the request rate
    /// spikes by `rate_multiplier` in the same window. Capacity rejoins
    /// `rejoin_after_s` after revocation when given.
    #[allow(clippy::too_many_arguments)]
    pub fn preemption_storm(
        cluster: &Cluster,
        dataset: DatasetKind,
        seed: u64,
        base_rate: f64,
        horizon: f64,
        gpu: GpuType,
        storm_start: f64,
        storm_len: f64,
        notice_s: f64,
        rejoin_after_s: Option<f64>,
        rate_multiplier: f64,
    ) -> Self {
        let arrivals =
            PiecewiseRate::storm(horizon, base_rate, storm_start, storm_len, rate_multiplier);
        ChurnScenario {
            trace: TraceBuilder::new(dataset, seed).build(&arrivals, horizon),
            events: ChurnProcess::preemption_storm(
                cluster,
                gpu,
                seed ^ 0xE1A5_71C0,
                storm_start,
                storm_len,
                notice_s,
                rejoin_after_s,
            ),
            horizon,
        }
    }

    /// Custom arrivals + explicit events.
    pub fn custom<A: ArrivalProcess>(
        dataset: DatasetKind,
        seed: u64,
        arrivals: &A,
        horizon: f64,
        events: Vec<ClusterEvent>,
    ) -> Self {
        ChurnScenario {
            trace: TraceBuilder::new(dataset, seed).build(arrivals, horizon),
            events,
            horizon,
        }
    }

    /// Runs a policy through the scenario.
    pub fn run<P: Policy>(
        &self,
        policy: P,
        cluster: &Cluster,
        model: &ModelSpec,
        cfg: EngineConfig,
    ) -> RunReport {
        run_with_churn(policy, cluster, model, cfg, &self.trace, &self.events)
    }

    /// Runs a policy through the scenario and bills it: the meter replays
    /// the same churn schedule against its spot-price trace and attaches
    /// a [`hetis_engine::CostReport`] (dollars split spot/on-demand and
    /// per GPU class, acquisition counts, `cost_per_in_slo_token`) to the
    /// report. Billing is a pure post-run replay — the serving behavior,
    /// and hence everything else in the report, is identical to
    /// [`ChurnScenario::run`]; only the digest moves, because it folds
    /// the attached cost block.
    pub fn run_priced<P: Policy>(
        &self,
        policy: P,
        cluster: &Cluster,
        model: &ModelSpec,
        cfg: EngineConfig,
        meter: &CostMeter,
    ) -> RunReport {
        let mut report = self.run(policy, cluster, model, cfg);
        meter.attach(cluster, &self.events, self.horizon, &mut report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ClassRates;
    use hetis_cluster::cluster::paper_cluster;

    #[test]
    fn steady_scenario_is_deterministic() {
        let c = paper_cluster();
        let churn = ChurnProcess::new(5).class(GpuType::P100, ClassRates::spot(30.0, 15.0, 45.0));
        let a = ChurnScenario::steady(&c, DatasetKind::ShareGpt, 9, 2.0, 60.0, &churn);
        let b = ChurnScenario::steady(&c, DatasetKind::ShareGpt, 9, 2.0, 60.0, &churn);
        assert_eq!(a.trace.requests(), b.trace.requests());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn storm_scenario_spikes_and_preempts_together() {
        let c = paper_cluster();
        let s = ChurnScenario::preemption_storm(
            &c,
            DatasetKind::ShareGpt,
            3,
            2.0,
            120.0,
            GpuType::P100,
            40.0,
            10.0,
            15.0,
            Some(30.0),
            2.5,
        );
        assert!(!s.events.is_empty());
        // All preemption notices sit in the storm window.
        for e in &s.events {
            if matches!(e.kind, hetis_engine::ClusterEventKind::PreemptNotice { .. }) {
                assert!((40.0..50.0).contains(&e.time));
            }
        }
        assert!(!s.trace.is_empty());
    }
}
