//! # `hetis-elastic` — cluster churn, failure injection, and live
//! re-planning
//!
//! Hetis's headline claim is *dynamic* parallelism, but a static
//! reproduction only ever exercises the Parallelizer once, at startup.
//! This crate makes the cluster itself dynamic:
//!
//! * [`ChurnProcess`] — a seeded generator of deterministic cluster-change
//!   schedules (spot preemptions with notice, hard failures, joins,
//!   thermal slowdowns) with per-device-class rates, built on `sim-core`'s
//!   RNG so every scenario reproduces bit-for-bit.
//! * [`ElasticController`] — on each event, re-runs the Parallelizer's
//!   hierarchical search on the surviving device set, diffs the old/new
//!   topology, and emits a [`ReplanPlan`]: a constrained topology
//!   (surviving primaries keep their weights), Hauler-planned KV drains
//!   off devices under preemption notice, and a deterministic re-plan
//!   latency that the engine charges to the pipelines.
//! * [`ElasticPolicy`] — wraps Hetis (or any baseline) behind the
//!   engine's `on_cluster_change` hook; [`ElasticPolicy::frozen`] is the
//!   no-replan ablation every scenario compares against.
//! * [`ClosedLoopController`] — the telemetry feedback automaton: at
//!   every telemetry tick it reads the bus's windowed per-class
//!   percentiles/attainment and emits scale proposals (breach-for-N
//!   with cooldown hysteresis), admission throttling, and chunk-pacing
//!   actions, which `ElasticPolicy` routes into the engine through the
//!   `on_telemetry_tick` hook. Open loop (`EngineConfig::closed_loop:
//!   None`) is bit-identical to not having the subsystem at all.
//! * [`ChurnScenario`] — trace + churn schedule generated together from
//!   one seed, including the headline *preemption storm* (all devices of
//!   one class revoked inside a window while the request rate spikes).
//! * [`CostMeter`] / [`AcquisitionPolicy`] — the economics axis: a
//!   deterministic spot-price trace (`hetis_workload::PriceTrace`) priced
//!   against every capacity acquisition. The controller classes `Join`
//!   replacements spot vs on-demand; after the run the meter replays the
//!   same schedule into a `CostReport` (per-class dollars,
//!   `cost_per_in_slo_token`) attached to the `RunReport` — a pure
//!   billing overlay that never perturbs the simulation.
//!
//! The engine-side halves (device health, forced eviction of lost KV,
//! Down instances, `replan_latency` / `lost_tokens` accounting in
//! `RunReport`) live in `hetis_engine::churn`. See `DESIGN.md` §E for the
//! subsystem walk-through and `crates/bench/benches/scenario_elastic_churn.rs`
//! for the end-to-end comparison.

pub mod churn;
pub mod closed_loop;
pub mod controller;
pub mod cost;
pub mod policy;
pub mod scenario;

pub use churn::{ChurnProcess, ClassRates};
pub use closed_loop::ClosedLoopController;
pub use controller::{ElasticConfig, ElasticController, ReplanPlan, TopologyDiff};
pub use cost::{
    AcquisitionClass, AcquisitionPolicy, AcquisitionRecord, BilledInterval, BillingLedger,
    CostMeter,
};
pub use policy::{elastic_hetis, frozen_hetis, ElasticPolicy};
pub use scenario::ChurnScenario;
