//! The [`ClosedLoopController`]: windowed-SLO feedback on the telemetry
//! bus.
//!
//! PR 6's bus streams per-class sliding-window percentiles, queue
//! depths and KV occupancy; this automaton turns them into the three
//! actuations `crate::ElasticPolicy` routes into the engine at every
//! telemetry tick:
//!
//! * **scale-out / scale-in** — windowed p99 TTFT above a class target
//!   for `breach_ticks` *consecutive* ticks proposes scale-out; p99
//!   at or below `scale_in_margin ×` target for the same streak (and
//!   only while previously added capacity is outstanding) proposes
//!   scale-in. A shared cooldown separates any two scale actions, so
//!   the pair can never oscillate within a cooldown window.
//! * **admission throttling** — protected-class windowed attainment
//!   below `throttle_attainment` engages the throttle; it releases at
//!   `throttle_release` (hysteresis band) or when the protected class
//!   leaves the window entirely (nothing left to protect — background
//!   traffic must not starve forever).
//! * **chunk pacing** — protected-class windowed p99 TTFT above
//!   `pace_engage_frac ×` target caps the chunk tokens a fused
//!   iteration may carry at `pace_chunk_tokens` (heavier backlogs drain
//!   unfused); release at `pace_release_frac ×` target.
//!
//! Determinism contract: the automaton is a pure function of the
//! snapshot sequence — no wall clock, no randomness, no floating-point
//! accumulation across ticks (counters are integers; thresholds compare
//! window summaries directly). Same `(seed, trace, config)` ⇒ same
//! snapshots ⇒ same action sequence ⇒ same `RunReport::digest`.

use hetis_engine::{ClosedLoopConfig, ControlAction};
use hetis_telemetry::TelemetrySnapshot;
use hetis_workload::SloClass;

/// Per-tick feedback automaton over telemetry snapshots. Construct once
/// per run (it carries the breach/cooldown state machine) and feed every
/// tick's snapshot to [`Self::on_tick`].
#[derive(Debug, Clone)]
pub struct ClosedLoopController {
    cfg: ClosedLoopConfig,
    /// Consecutive breach ticks per class (`SloClass::index()` order).
    breach: [u32; 3],
    /// Consecutive calm ticks (all signal-bearing classes comfortably
    /// under target).
    calm: u32,
    /// Ticks left before the next scale action may fire.
    cooldown: u32,
    /// Scale-outs not yet matched by a scale-in: scale-in only returns
    /// capacity this loop added, so a calm-from-the-start run never
    /// proposes anything.
    outstanding: u32,
    throttled: bool,
    pacing: bool,
    ticks: u64,
}

impl ClosedLoopController {
    /// A fresh automaton (no breach history, no outstanding capacity).
    pub fn new(cfg: ClosedLoopConfig) -> Self {
        ClosedLoopController {
            cfg,
            breach: [0; 3],
            calm: 0,
            cooldown: 0,
            outstanding: 0,
            throttled: false,
            pacing: false,
            ticks: 0,
        }
    }

    /// True while the admission throttle is engaged.
    pub fn throttled(&self) -> bool {
        self.throttled
    }

    /// True while chunk pacing is engaged.
    pub fn pacing(&self) -> bool {
        self.pacing
    }

    /// Scale-outs proposed but not yet returned by a scale-in.
    pub fn outstanding_scale_outs(&self) -> u32 {
        self.outstanding
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Consumes one telemetry tick; returns the actions to take this
    /// tick (possibly empty), in a fixed order: scale, throttle, pace.
    pub fn on_tick(&mut self, snap: &TelemetrySnapshot) -> Vec<ControlAction> {
        self.ticks += 1;
        if self.cooldown > 0 {
            self.cooldown -= 1;
        }
        let mut actions = Vec::new();
        if self.cfg.scaling {
            self.scale_tick(snap, &mut actions);
        }
        if self.cfg.throttling {
            self.throttle_tick(snap, &mut actions);
        }
        if self.cfg.pacing {
            self.pace_tick(snap, &mut actions);
        }
        actions
    }

    /// Scale automaton: breach-for-N debounce, calm-for-N release,
    /// shared cooldown between any two scale actions.
    fn scale_tick(&mut self, snap: &TelemetrySnapshot, actions: &mut Vec<ControlAction>) {
        let min = self.cfg.min_window_samples;
        let mut breaching: Option<(SloClass, f64)> = None;
        let mut any_hot = false;
        let mut calm_evidence = false;
        for &class in SloClass::ALL.iter() {
            let target = class.target().ttft;
            if !target.is_finite() {
                continue;
            }
            let i = class.index() as usize;
            match snap.windowed_ttft(class).filter(|t| t.count >= min) {
                Some(t) if t.p99 > target => {
                    self.breach[i] += 1;
                    any_hot = true;
                    if self.breach[i] >= self.cfg.breach_ticks && breaching.is_none() {
                        breaching = Some((class, t.p99));
                    }
                }
                Some(t) => {
                    self.breach[i] = 0;
                    if t.p99 <= self.cfg.scale_in_margin * target {
                        calm_evidence = true;
                    } else {
                        any_hot = true;
                    }
                }
                // Too few samples: no signal either way.
                None => self.breach[i] = 0,
            }
        }
        if let Some((class, p99_ttft)) = breaching {
            self.calm = 0;
            if self.cooldown == 0 {
                actions.push(ControlAction::ScaleOut { class, p99_ttft });
                self.outstanding += 1;
                self.cooldown = self.cfg.cooldown_ticks;
                self.breach = [0; 3];
            }
        } else if calm_evidence && !any_hot {
            self.calm += 1;
            if self.outstanding > 0 && self.calm >= self.cfg.breach_ticks && self.cooldown == 0 {
                actions.push(ControlAction::ScaleIn);
                self.outstanding -= 1;
                self.cooldown = self.cfg.cooldown_ticks;
                self.calm = 0;
            }
        } else {
            self.calm = 0;
        }
    }

    /// Throttle automaton on protected-class windowed attainment.
    fn throttle_tick(&mut self, snap: &TelemetrySnapshot, actions: &mut Vec<ControlAction>) {
        let protect = self.cfg.protected_class;
        let graded = snap.class(protect).map(|c| c.slo.count).unwrap_or(0);
        let attainment = snap.windowed_attainment(protect);
        if !self.throttled {
            if let Some(a) = attainment {
                if graded >= self.cfg.min_window_samples && a < self.cfg.throttle_attainment {
                    self.throttled = true;
                    actions.push(ControlAction::ThrottleOn { attainment: a });
                }
            }
        } else {
            // Release on recovery — or when the protected class has no
            // windowed signal left, so deferred traffic cannot starve
            // behind a stale engagement.
            let release = match attainment {
                Some(a) if graded >= self.cfg.min_window_samples => a >= self.cfg.throttle_release,
                _ => true,
            };
            if release {
                self.throttled = false;
                actions.push(ControlAction::ThrottleOff);
            }
        }
    }

    /// Pacing automaton on protected-class windowed p99 TTFT.
    fn pace_tick(&mut self, snap: &TelemetrySnapshot, actions: &mut Vec<ControlAction>) {
        let protect = self.cfg.protected_class;
        let target = protect.target().ttft;
        if !target.is_finite() {
            return;
        }
        let ttft = snap
            .windowed_ttft(protect)
            .filter(|t| t.count >= self.cfg.min_window_samples);
        if !self.pacing {
            if let Some(t) = ttft {
                if t.p99 > self.cfg.pace_engage_frac * target {
                    self.pacing = true;
                    actions.push(ControlAction::PaceOn {
                        chunk_tokens: self.cfg.pace_chunk_tokens,
                        p99_ttft: t.p99,
                    });
                }
            }
        } else {
            let release = match ttft {
                Some(t) => t.p99 <= self.cfg.pace_release_frac * target,
                None => true,
            };
            if release {
                self.pacing = false;
                actions.push(ControlAction::PaceOff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_telemetry::{ClassLatencyStats, WindowSummary};

    /// A synthetic snapshot whose interactive window shows `count`
    /// samples at a constant p99 TTFT and constant attainment.
    fn snap(now: f64, count: usize, p99_ttft: f64, attainment: f64) -> TelemetrySnapshot {
        let summary = |p: f64| WindowSummary {
            count,
            p50: p,
            p95: p,
            p99: p,
            mean: p,
        };
        TelemetrySnapshot {
            now,
            window_secs: 15.0,
            events_published: count as u64,
            events_buffered: count,
            dropped: 0,
            completions: count as u64,
            open_flows: 0,
            classes: vec![ClassLatencyStats {
                class: SloClass::Interactive,
                ttft: summary(p99_ttft),
                tpot: summary(0.05),
                normalized_latency: summary(0.05),
                slo: summary(attainment),
            }],
            queue_depths: vec![],
            kv: None,
        }
    }

    fn cfg() -> ClosedLoopConfig {
        ClosedLoopConfig {
            breach_ticks: 3,
            cooldown_ticks: 5,
            min_window_samples: 4,
            ..ClosedLoopConfig::default()
        }
    }

    #[test]
    fn breach_for_n_ticks_is_necessary() {
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            throttling: false,
            pacing: false,
            ..cfg()
        });
        // N-1 breaching ticks, then calm: no proposal ever.
        for t in 0..2 {
            assert!(ctl.on_tick(&snap(t as f64, 10, 2.0, 1.0)).is_empty());
        }
        for t in 2..20 {
            assert!(ctl.on_tick(&snap(t as f64, 10, 0.2, 1.0)).is_empty());
        }
        assert_eq!(ctl.outstanding_scale_outs(), 0);
    }

    #[test]
    fn breach_for_n_ticks_is_sufficient() {
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            throttling: false,
            pacing: false,
            ..cfg()
        });
        // Exactly N consecutive breaches: the N-th tick proposes.
        assert!(ctl.on_tick(&snap(0.0, 10, 2.0, 1.0)).is_empty());
        assert!(ctl.on_tick(&snap(1.0, 10, 2.0, 1.0)).is_empty());
        let actions = ctl.on_tick(&snap(2.0, 10, 2.0, 1.0));
        assert!(
            matches!(actions[..], [ControlAction::ScaleOut { .. }]),
            "{actions:?}"
        );
        assert_eq!(ctl.outstanding_scale_outs(), 1);
    }

    #[test]
    fn thin_windows_are_no_signal() {
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            throttling: false,
            pacing: false,
            ..cfg()
        });
        // Breaching p99 but below min_window_samples: never proposes.
        for t in 0..20 {
            assert!(ctl.on_tick(&snap(t as f64, 2, 5.0, 0.0)).is_empty());
        }
    }

    #[test]
    fn no_scale_flip_within_cooldown() {
        let c = cfg();
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            throttling: false,
            pacing: false,
            ..c.clone()
        });
        let mut scale_ticks: Vec<u64> = Vec::new();
        // Storm for 10 ticks, then dead calm for 30: the automaton must
        // space every pair of scale actions by >= cooldown_ticks.
        for t in 0..40 {
            let s = if t < 10 {
                snap(t as f64, 10, 3.0, 0.5)
            } else {
                snap(t as f64, 10, 0.1, 1.0)
            };
            for a in ctl.on_tick(&s) {
                match a {
                    ControlAction::ScaleOut { .. } | ControlAction::ScaleIn => {
                        scale_ticks.push(ctl.ticks());
                    }
                    _ => {}
                }
            }
        }
        assert!(
            scale_ticks.len() >= 2,
            "storm then calm must scale both ways"
        );
        for w in scale_ticks.windows(2) {
            assert!(
                w[1] - w[0] >= c.cooldown_ticks as u64,
                "scale actions at ticks {w:?} violate the cooldown"
            );
        }
        assert_eq!(ctl.outstanding_scale_outs(), 0, "calm returns all capacity");
    }

    #[test]
    fn scale_in_only_returns_added_capacity() {
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            throttling: false,
            pacing: false,
            ..cfg()
        });
        // Calm from the start: no outstanding scale-out, so never a
        // scale-in no matter how long the calm lasts.
        for t in 0..50 {
            assert!(ctl.on_tick(&snap(t as f64, 10, 0.1, 1.0)).is_empty());
        }
    }

    #[test]
    fn throttle_engages_and_releases_with_hysteresis() {
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            scaling: false,
            pacing: false,
            ..cfg()
        });
        // Low attainment engages the throttle once.
        let a = ctl.on_tick(&snap(0.0, 10, 0.5, 0.5));
        assert!(matches!(a[..], [ControlAction::ThrottleOn { .. }]));
        assert!(ctl.throttled());
        // Mid-band attainment (>= engage, < release): stays engaged.
        assert!(ctl.on_tick(&snap(1.0, 10, 0.5, 0.93)).is_empty());
        assert!(ctl.throttled());
        // Recovery releases.
        let a = ctl.on_tick(&snap(2.0, 10, 0.5, 0.99));
        assert!(matches!(a[..], [ControlAction::ThrottleOff]));
        assert!(!ctl.throttled());
    }

    #[test]
    fn throttle_releases_when_protected_class_drains() {
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            scaling: false,
            pacing: false,
            ..cfg()
        });
        ctl.on_tick(&snap(0.0, 10, 0.5, 0.5));
        assert!(ctl.throttled());
        // Protected class leaves the window: release so deferred
        // traffic cannot starve.
        let empty = TelemetrySnapshot {
            classes: vec![],
            ..snap(1.0, 0, 0.0, 0.0)
        };
        let a = ctl.on_tick(&empty);
        assert!(matches!(a[..], [ControlAction::ThrottleOff]));
    }

    #[test]
    fn pacing_tracks_ttft_band() {
        let mut ctl = ClosedLoopController::new(ClosedLoopConfig {
            scaling: false,
            throttling: false,
            ..cfg()
        });
        // p99 at 0.8 × 1.0 s target > 0.5 engage fraction: pace on.
        let a = ctl.on_tick(&snap(0.0, 10, 0.8, 1.0));
        assert!(
            matches!(
                a[..],
                [ControlAction::PaceOn {
                    chunk_tokens: 128,
                    ..
                }]
            ),
            "{a:?}"
        );
        assert!(ctl.pacing());
        // In the hysteresis band (release 0.4 < p99 <= engage 0.5):
        // stays paced.
        assert!(ctl.on_tick(&snap(1.0, 10, 0.45, 1.0)).is_empty());
        assert!(ctl.pacing());
        // Below the release fraction: pace off.
        let a = ctl.on_tick(&snap(2.0, 10, 0.3, 1.0));
        assert!(matches!(a[..], [ControlAction::PaceOff]));
        assert!(!ctl.pacing());
    }

    #[test]
    fn same_snapshots_same_actions() {
        // Pure-function check: two automata fed the same snapshot
        // sequence emit identical action sequences.
        let seq: Vec<TelemetrySnapshot> = (0..30)
            .map(|t| {
                let p99 = if (10..20).contains(&t) { 2.5 } else { 0.3 };
                let att = if (10..20).contains(&t) { 0.6 } else { 1.0 };
                snap(t as f64, 12, p99, att)
            })
            .collect();
        let mut a = ClosedLoopController::new(cfg());
        let mut b = ClosedLoopController::new(cfg());
        let run_a: Vec<Vec<ControlAction>> = seq.iter().map(|s| a.on_tick(s)).collect();
        let run_b: Vec<Vec<ControlAction>> = seq.iter().map(|s| b.on_tick(s)).collect();
        assert_eq!(run_a, run_b);
        assert!(run_a.iter().any(|v| !v.is_empty()), "storm must actuate");
    }
}
