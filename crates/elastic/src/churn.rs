//! Seeded cluster-churn generation: spot preemptions, failures, joins,
//! and slowdowns with per-device-class rates.
//!
//! Real heterogeneous fleets mix reliability classes — consumer GPUs
//! throttle and drop out far more often than datacenter parts, and spot
//! capacity is revoked in storms. [`ChurnProcess`] turns per-`GpuType`
//! rates into a deterministic, time-sorted schedule of
//! [`ClusterEvent`]s; the same `(cluster, seed, horizon)` triple always
//! yields the same schedule, keeping every churn scenario reproducible
//! bit-for-bit.

use hetis_cluster::{Cluster, DeviceId, GpuType};
use hetis_engine::{ClusterEvent, ClusterEventKind};
use hetis_sim::SplitMix64;

/// Per-device-class churn rates (events per device-hour) and shapes.
#[derive(Debug, Clone, Copy)]
pub struct ClassRates {
    /// Spot-preemption notices per device-hour.
    pub preempt_per_hour: f64,
    /// Hard failures per device-hour.
    pub fail_per_hour: f64,
    /// Thermal/noisy-neighbor slowdowns per device-hour.
    pub slowdown_per_hour: f64,
    /// Seconds between a preemption notice and revocation.
    pub notice_s: f64,
    /// Slowdown factor range (uniform; both ≥ 1).
    pub slowdown_factor: (f64, f64),
    /// Seconds a slowdown lasts.
    pub slowdown_duration_s: f64,
    /// Seconds after a death until the device rejoins (`None` = never).
    pub rejoin_after_s: Option<f64>,
}

impl ClassRates {
    /// A perfectly reliable class.
    pub const STABLE: ClassRates = ClassRates {
        preempt_per_hour: 0.0,
        fail_per_hour: 0.0,
        slowdown_per_hour: 0.0,
        notice_s: 30.0,
        slowdown_factor: (1.5, 2.5),
        slowdown_duration_s: 60.0,
        rejoin_after_s: None,
    };

    /// A spot-market-like class: frequent preemption with notice,
    /// capacity returns after a while.
    pub fn spot(preempt_per_hour: f64, notice_s: f64, rejoin_after_s: f64) -> ClassRates {
        ClassRates {
            preempt_per_hour,
            notice_s,
            rejoin_after_s: Some(rejoin_after_s),
            ..ClassRates::STABLE
        }
    }
}

/// Deterministic churn-schedule generator.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    seed: u64,
    rates: Vec<(GpuType, ClassRates)>,
    default_rates: ClassRates,
}

impl ChurnProcess {
    /// A process with no churn for any class (add classes with
    /// [`ChurnProcess::class`]).
    pub fn new(seed: u64) -> Self {
        ChurnProcess {
            seed,
            rates: Vec::new(),
            default_rates: ClassRates::STABLE,
        }
    }

    /// Sets the rates of one GPU class.
    pub fn class(mut self, gpu: GpuType, rates: ClassRates) -> Self {
        self.rates.retain(|(g, _)| *g != gpu);
        self.rates.push((gpu, rates));
        self
    }

    /// Sets the rates of every class not configured explicitly.
    pub fn default_rates(mut self, rates: ClassRates) -> Self {
        self.default_rates = rates;
        self
    }

    fn rates_of(&self, gpu: GpuType) -> ClassRates {
        self.rates
            .iter()
            .find(|(g, _)| *g == gpu)
            .map(|(_, r)| *r)
            .unwrap_or(self.default_rates)
    }

    /// Generates the deterministic schedule over `[0, horizon)` seconds.
    pub fn generate(&self, cluster: &Cluster, horizon: f64) -> Vec<ClusterEvent> {
        let mut events: Vec<ClusterEvent> = Vec::new();
        for d in cluster.devices() {
            let rates = self.rates_of(d.spec.gpu);
            // Independent per-device stream: same cluster+seed ⇒ same
            // schedule regardless of which other classes churn.
            let mut rng =
                SplitMix64::new(self.seed ^ (d.id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            device_timeline(d.id, rates, horizon, &mut rng, &mut events);
        }
        sort_events(&mut events);
        events
    }

    /// A preemption storm: every device of `gpu` receives a preemption
    /// notice inside `[start, start + spread)`, with per-device jitter.
    /// Capacity rejoins `rejoin_after_s` later when given.
    pub fn preemption_storm(
        cluster: &Cluster,
        gpu: GpuType,
        seed: u64,
        start: f64,
        spread: f64,
        notice_s: f64,
        rejoin_after_s: Option<f64>,
    ) -> Vec<ClusterEvent> {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::new();
        for dev in cluster.devices_of_type(gpu) {
            let at = start + rng.uniform(0.0, spread.max(1e-9));
            events.push(ClusterEvent {
                time: at,
                device: dev,
                kind: ClusterEventKind::PreemptNotice { notice: notice_s },
            });
            if let Some(back) = rejoin_after_s {
                events.push(ClusterEvent {
                    time: at + notice_s + back,
                    device: dev,
                    kind: ClusterEventKind::Join,
                });
            }
        }
        sort_events(&mut events);
        events
    }
}

/// Walks one device's alive/dead/slowed timeline, emitting its events.
fn device_timeline(
    dev: DeviceId,
    rates: ClassRates,
    horizon: f64,
    rng: &mut SplitMix64,
    out: &mut Vec<ClusterEvent>,
) {
    let mut t = 0.0f64;
    // Cap the emitted events per device: a degenerate config (huge rates,
    // instant rejoin) must not hang the generator.
    for _ in 0..10_000 {
        let dt_preempt = exp_sample(rates.preempt_per_hour / 3600.0, rng);
        let dt_fail = exp_sample(rates.fail_per_hour / 3600.0, rng);
        let dt_slow = exp_sample(rates.slowdown_per_hour / 3600.0, rng);
        let dt = dt_preempt.min(dt_fail).min(dt_slow);
        if !dt.is_finite() || t + dt >= horizon {
            return;
        }
        t += dt;
        if dt == dt_slow {
            let (lo, hi) = rates.slowdown_factor;
            let factor = rng.uniform(lo.max(1.0), hi.max(lo.max(1.0) + 1e-9));
            out.push(ClusterEvent {
                time: t,
                device: dev,
                kind: ClusterEventKind::Slowdown { factor },
            });
            let end = t + rates.slowdown_duration_s;
            if end < horizon {
                out.push(ClusterEvent {
                    time: end,
                    device: dev,
                    kind: ClusterEventKind::Restore,
                });
            }
            t = end.min(horizon);
            continue;
        }
        // Death: preemption notice (graceful) or failure (abrupt).
        let death_at = if dt == dt_preempt {
            out.push(ClusterEvent {
                time: t,
                device: dev,
                kind: ClusterEventKind::PreemptNotice {
                    notice: rates.notice_s,
                },
            });
            t + rates.notice_s
        } else {
            out.push(ClusterEvent {
                time: t,
                device: dev,
                kind: ClusterEventKind::Fail,
            });
            t
        };
        match rates.rejoin_after_s {
            Some(back) => {
                let rejoin = death_at + back;
                if rejoin >= horizon {
                    return;
                }
                out.push(ClusterEvent {
                    time: rejoin,
                    device: dev,
                    kind: ClusterEventKind::Join,
                });
                t = rejoin;
            }
            None => return,
        }
    }
}

/// Exponential inter-arrival sample; +inf at rate 0.
fn exp_sample(rate_per_s: f64, rng: &mut SplitMix64) -> f64 {
    if rate_per_s <= 0.0 {
        return f64::INFINITY;
    }
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    -u.ln() / rate_per_s
}

/// Stable deterministic order: time, then device, then kind rank.
fn sort_events(events: &mut [ClusterEvent]) {
    events.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .expect("finite event times")
            .then(a.device.cmp(&b.device))
            .then(kind_rank(&a.kind).cmp(&kind_rank(&b.kind)))
    });
}

fn kind_rank(k: &ClusterEventKind) -> u8 {
    match k {
        ClusterEventKind::Fail => 0,
        ClusterEventKind::PreemptNotice { .. } => 1,
        ClusterEventKind::Join => 2,
        ClusterEventKind::Slowdown { .. } => 3,
        ClusterEventKind::Restore => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;

    #[test]
    fn deterministic_given_seed() {
        let c = paper_cluster();
        let p = ChurnProcess::new(7)
            .class(GpuType::P100, ClassRates::spot(40.0, 20.0, 60.0))
            .class(
                GpuType::Rtx3090,
                ClassRates {
                    slowdown_per_hour: 60.0,
                    ..ClassRates::STABLE
                },
            );
        let a = p.generate(&c, 600.0);
        let b = p.generate(&c, 600.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "expected churn at these rates");
    }

    #[test]
    fn events_sorted_and_scoped() {
        let c = paper_cluster();
        let p = ChurnProcess::new(3).class(GpuType::P100, ClassRates::spot(60.0, 10.0, 30.0));
        let evs = p.generate(&c, 900.0);
        for w in evs.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        let p100s = c.devices_of_type(GpuType::P100);
        for e in &evs {
            assert!(e.time < 900.0);
            assert!(p100s.contains(&e.device), "only P100s churn here");
        }
    }

    #[test]
    fn stable_class_emits_nothing() {
        let c = paper_cluster();
        let evs = ChurnProcess::new(1).generate(&c, 3600.0);
        assert!(evs.is_empty());
    }

    #[test]
    fn storm_hits_every_device_of_class() {
        let c = paper_cluster();
        let evs =
            ChurnProcess::preemption_storm(&c, GpuType::Rtx3090, 11, 10.0, 5.0, 15.0, Some(120.0));
        let devs = c.devices_of_type(GpuType::Rtx3090);
        let notices: Vec<&ClusterEvent> = evs
            .iter()
            .filter(|e| matches!(e.kind, ClusterEventKind::PreemptNotice { .. }))
            .collect();
        assert_eq!(notices.len(), devs.len());
        for n in &notices {
            assert!((10.0..15.0).contains(&n.time));
        }
        let joins = evs
            .iter()
            .filter(|e| e.kind == ClusterEventKind::Join)
            .count();
        assert_eq!(joins, devs.len());
    }
}
