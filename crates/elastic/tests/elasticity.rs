//! End-to-end elasticity properties: bit-for-bit determinism under a
//! seeded churn scenario, no lost requests across preemptions, and KV
//! draining on preemption notices.

use hetis_cluster::cluster::{ablation_cluster, paper_cluster};
use hetis_cluster::GpuType;
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_elastic::{elastic_hetis, ChurnScenario, ElasticController, ElasticPolicy};
use hetis_engine::{
    ClusterEvent, ClusterEventKind, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology,
};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_workload::DatasetKind;

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        drain_timeout: 300.0,
        ..EngineConfig::default()
    }
}

/// A100 primary with two 3090 attention workers (the Fig. 14 layout) on
/// the ablation cluster — guarantees worker-resident KV.
fn worker_heavy_policy(profile: WorkloadProfile) -> ElasticPolicy<HetisPolicy> {
    let cluster = ablation_cluster();
    let a100 = cluster.devices_of_type(GpuType::A100)[0];
    let workers = cluster.devices_of_type(GpuType::Rtx3090);
    let mut stage = StageTopo::plain(StageConfig {
        devices: vec![a100],
        layers: 40,
    });
    stage.attention_workers = workers;
    let topo = Topology {
        instances: vec![InstanceTopo {
            stages: vec![stage],
            role: InstanceRole::Both,
        }],
    };
    let cfg = HetisConfig::default();
    ElasticPolicy::with_controller(
        HetisPolicy::new(cfg.clone(), profile).with_fixed_topology(topo),
        ElasticController::new(cfg, profile),
    )
}

#[test]
fn storm_scenario_is_bit_for_bit_deterministic() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 48);
    let scenario = ChurnScenario::preemption_storm(
        &cluster,
        DatasetKind::ShareGpt,
        21,
        2.0,
        40.0,
        GpuType::P100,
        10.0,
        5.0,
        8.0,
        Some(12.0),
        2.0,
    );
    let run = || {
        scenario.run(
            elastic_hetis(HetisConfig::default(), profile),
            &cluster,
            &model,
            engine_cfg(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.digest(), b.digest(), "same seed must reproduce the run");
    assert_eq!(a.completed.len(), b.completed.len());
    assert_eq!(a.replans.len(), b.replans.len());
    assert!(!a.replans.is_empty(), "the storm must actually fire");
}

#[test]
fn preemption_mid_decode_never_loses_a_request() {
    let cluster = ablation_cluster();
    let model = llama_13b();
    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 24);
    // Abrupt failure of one 3090 worker mid-run: every request whose KV
    // touched it must recompute and still complete.
    let victim = cluster.devices_of_type(GpuType::Rtx3090)[0];
    let events = vec![ClusterEvent {
        time: 8.0,
        device: victim,
        kind: ClusterEventKind::Fail,
    }];
    let scenario = ChurnScenario::custom(
        DatasetKind::ShareGpt,
        17,
        &hetis_workload::Poisson::new(2.0),
        20.0,
        events,
    );
    let report = scenario.run(worker_heavy_policy(profile), &cluster, &model, engine_cfg());
    assert_eq!(
        report.completed.len() + report.unfinished,
        scenario.trace.len()
    );
    assert_eq!(
        report.unfinished, 0,
        "every request must complete after the re-plan"
    );
    assert!(
        report.churn_evictions > 0,
        "the failure must have hit resident KV (churn_evictions = 0)"
    );
    assert!(report.lost_tokens > 0);
}

#[test]
fn preemption_notice_drains_kv_ahead_of_revocation() {
    let cluster = ablation_cluster();
    let model = llama_13b();
    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 24);
    let victim = cluster.devices_of_type(GpuType::Rtx3090)[1];
    // Generous notice: the controller should move KV off the device
    // incrementally before revocation.
    let events = vec![ClusterEvent {
        time: 8.0,
        device: victim,
        kind: ClusterEventKind::PreemptNotice { notice: 6.0 },
    }];
    let scenario = ChurnScenario::custom(
        DatasetKind::ShareGpt,
        19,
        &hetis_workload::Poisson::new(2.0),
        20.0,
        events,
    );
    let with_drain = scenario.run(worker_heavy_policy(profile), &cluster, &model, engine_cfg());
    assert_eq!(with_drain.unfinished, 0);
    assert!(with_drain.replans[0].event.starts_with("preempt("));
    assert!(with_drain.replans[0].replan_latency > 0.0);
    // Revocation is recorded as a separate forced event.
    assert!(with_drain
        .replans
        .iter()
        .any(|r| r.event.starts_with("revoke(")));

    // Ablation: the identical scenario without draining must lose
    // strictly more work at revocation.
    let cfg = HetisConfig::default();
    let no_drain_policy = ElasticPolicy::with_controller(
        worker_heavy_policy(profile).into_inner(),
        ElasticController::new(cfg, profile).with_config(hetis_elastic::ElasticConfig {
            drain_on_notice: false,
            ..Default::default()
        }),
    );
    let without = scenario.run(no_drain_policy, &cluster, &model, engine_cfg());
    assert_eq!(without.unfinished, 0);
    assert!(
        with_drain.lost_tokens < without.lost_tokens,
        "draining must save work: with={} without={}",
        with_drain.lost_tokens,
        without.lost_tokens
    );
}

#[test]
fn down_instance_requests_reroute_to_survivors() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 48);
    // Kill one A100 mid-run. If the search went data-parallel, one
    // instance goes Down and its requests must finish elsewhere; if there
    // is a single instance, nothing can complete after the failure and
    // the run must still terminate cleanly.
    let victim = cluster.devices_of_type(GpuType::A100)[0];
    let events = vec![ClusterEvent {
        time: 10.0,
        device: victim,
        kind: ClusterEventKind::Fail,
    }];
    let scenario = ChurnScenario::custom(
        DatasetKind::ShareGpt,
        23,
        &hetis_workload::Poisson::new(2.0),
        25.0,
        events,
    );
    let report = scenario.run(
        elastic_hetis(HetisConfig::default(), profile),
        &cluster,
        &model,
        engine_cfg(),
    );
    assert!(!report.replans.is_empty());
    assert_eq!(
        report.completed.len() + report.unfinished,
        scenario.trace.len()
    );
}
