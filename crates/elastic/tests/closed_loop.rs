//! End-to-end closed-loop properties, engine level: the actuation
//! sequence is a pure function of `(seed, trace, config)` and folds into
//! the behavior digest; the open loop (`closed_loop: None`) is
//! bit-identical to a run without telemetry at all; and a closed loop
//! over calm traffic takes zero actions and reproduces the open-loop
//! digest bit-for-bit. The automaton-level hysteresis properties
//! (breach-for-N necessary and sufficient, cooldown bounds, throttle and
//! pacing bands) live in `src/closed_loop.rs` unit tests; this file
//! checks the same contract through the whole engine.

use hetis_cluster::cluster::paper_cluster;
use hetis_core::{HetisConfig, WorkloadProfile};
use hetis_elastic::elastic_hetis;
use hetis_engine::{run, AdmissionPolicy, ClosedLoopConfig, EngineConfig, RunReport};
use hetis_model::llama_13b;
use hetis_telemetry::TelemetryConfig;
use hetis_workload::{multi_tenant_trace, DatasetKind, SloClass, TenantId, TenantSpec, Trace};

/// The PR 5 burst-storm trace: an interactive chat tenant tripling its
/// rate inside a 10 s burst over a long-prompt batch tenant — the
/// workload whose transient overload gives the controller something to
/// react to.
fn storm_trace() -> Trace {
    let specs = [
        TenantSpec::steady(
            TenantId(0),
            DatasetKind::ShareGpt,
            SloClass::Interactive,
            6.0,
        )
        .with_burst(20.0, 10.0, 3.0),
        TenantSpec::steady(TenantId(1), DatasetKind::LongBench, SloClass::Batch, 2.0),
    ];
    multi_tenant_trace(&specs, 4242, 60.0)
}

/// A gentle trace the cluster absorbs without queueing: every window
/// stays inside target, so a correct controller must stay silent.
fn calm_trace() -> Trace {
    let specs = [TenantSpec::steady(
        TenantId(0),
        DatasetKind::ShareGpt,
        SloClass::Interactive,
        1.0,
    )];
    multi_tenant_trace(&specs, 777, 40.0)
}

/// Fused+priority engine config (the PR 5 fusion system) with the
/// telemetry bus windowed tight enough for feedback.
fn fused_cfg() -> EngineConfig {
    let mut cfg = EngineConfig {
        drain_timeout: 180.0,
        ..EngineConfig::default()
    };
    cfg.prefill_chunk_tokens = Some(512);
    cfg.admission = AdmissionPolicy::SloSlack;
    cfg.fused_microbatches = true;
    cfg
}

fn with_bus(mut cfg: EngineConfig) -> EngineConfig {
    cfg.telemetry = Some(TelemetryConfig {
        window_secs: 15.0,
        ..TelemetryConfig::default()
    });
    cfg
}

fn run_storm(cfg: EngineConfig) -> RunReport {
    let cluster = paper_cluster();
    let model = llama_13b();
    let profile = WorkloadProfile::for_cluster(DatasetKind::ShareGpt, &cluster, &model, 0.3);
    run(
        elastic_hetis(HetisConfig::default(), profile),
        &cluster,
        &model,
        cfg,
        &storm_trace(),
    )
}

fn run_calm(cfg: EngineConfig) -> RunReport {
    let cluster = paper_cluster();
    let model = llama_13b();
    let profile = WorkloadProfile::for_cluster(DatasetKind::ShareGpt, &cluster, &model, 0.3);
    run(
        elastic_hetis(HetisConfig::default(), profile),
        &cluster,
        &model,
        cfg,
        &calm_trace(),
    )
}

#[test]
fn same_seed_same_actuation_sequence_same_digest() {
    let closed = || {
        let mut cfg = with_bus(fused_cfg());
        cfg.closed_loop = Some(ClosedLoopConfig::default());
        run_storm(cfg)
    };
    let a = closed();
    let b = closed();
    assert!(
        !a.control_log.is_empty(),
        "the burst storm must actually engage the controller"
    );
    assert_eq!(
        a.control_log, b.control_log,
        "same seed must replay the identical actuation sequence"
    );
    assert_eq!(
        a.digest(),
        b.digest(),
        "identical actuation sequences must pin to identical digests"
    );
    // The digest covers the control log: a run that took actions cannot
    // collide with the open-loop run of the same trace.
    let open = run_storm(with_bus(fused_cfg()));
    assert!(open.control_log.is_empty());
    assert_ne!(
        a.digest(),
        open.digest(),
        "an actuating run must digest differently from the open loop"
    );
}

#[test]
fn open_loop_is_bit_identical_to_no_telemetry() {
    // `closed_loop: None` with the bus attached must reproduce the
    // bus-less digest bit-for-bit — the zero-cost gating contract that
    // keeps every pre-existing pinned digest valid.
    let without_bus = run_storm(fused_cfg());
    let with_bus_open = run_storm(with_bus(fused_cfg()));
    assert_eq!(
        without_bus.digest(),
        with_bus_open.digest(),
        "telemetry + open loop must be digest-neutral"
    );
    assert!(with_bus_open.control_log.is_empty());
}

#[test]
fn calm_traffic_takes_zero_actions_and_matches_open_loop() {
    let open = run_calm(with_bus(fused_cfg()));
    let closed = {
        let mut cfg = with_bus(fused_cfg());
        cfg.closed_loop = Some(ClosedLoopConfig::default());
        run_calm(cfg)
    };
    assert!(
        closed.control_log.is_empty(),
        "calm traffic must not trip the controller: {:?}",
        closed.control_log
    );
    assert_eq!(
        open.digest(),
        closed.digest(),
        "a silent closed loop must be bit-identical to the open loop"
    );
}

#[test]
fn control_counters_match_the_log() {
    let mut cfg = with_bus(fused_cfg());
    cfg.closed_loop = Some(ClosedLoopConfig::default());
    let report = run_storm(cfg);
    let by_kind: usize = [
        "scale-out",
        "scale-in",
        "throttle-on",
        "throttle-off",
        "pace-on",
        "pace-off",
    ]
    .iter()
    .map(|k| report.control_actions_of_kind(k))
    .sum();
    assert_eq!(by_kind, report.control_log.len());
    // Scale-ins never outnumber scale-outs: the loop only returns
    // capacity it added.
    assert!(report.scale_in_proposals() <= report.scale_out_proposals());
    // Engagement/release pairing: releases never outnumber engagements.
    assert!(report.control_actions_of_kind("throttle-off") <= report.throttle_engagements());
    assert!(report.control_actions_of_kind("pace-off") <= report.pace_engagements());
}
