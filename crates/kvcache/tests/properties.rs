//! Property tests: block conservation and placement/migration invariants.

use hetis_kvcache::{
    plan_migration, BlockConfig, GroupId, HeadwiseAllocator, PagedAllocator, Placement, SeqId,
};
use proptest::prelude::*;

proptest! {
    /// Paged allocator conserves blocks across an arbitrary workload of
    /// allocate / append / grow / free operations.
    #[test]
    fn paged_block_conservation(ops in proptest::collection::vec((0u8..4, 0u64..8, 1u32..80), 1..200)) {
        let cfg = BlockConfig { block_size: 16, num_blocks: 64 };
        let mut a = PagedAllocator::new(cfg);
        let mut live: Vec<u64> = Vec::new();
        for (kind, seq, tokens) in ops {
            match kind {
                0 => {
                    if !live.contains(&seq) && a.allocate_seq(SeqId(seq), tokens).is_ok() {
                        live.push(seq);
                    }
                }
                1 => {
                    if live.contains(&seq) {
                        let _ = a.append_token(SeqId(seq));
                    }
                }
                2 => {
                    if live.contains(&seq) {
                        let _ = a.grow_tokens(SeqId(seq), tokens);
                    }
                }
                _ => {
                    a.free_seq(SeqId(seq));
                    live.retain(|&s| s != seq);
                }
            }
            // Invariant: used + free == total.
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), cfg.num_blocks);
            // Invariant: used blocks exactly cover the live sequences.
            let expect: u32 = live.iter()
                .map(|&s| cfg.blocks_for(a.tokens_of(SeqId(s)).unwrap()))
                .sum();
            prop_assert_eq!(a.used_blocks(), expect);
        }
    }

    /// Headwise allocator conserves blocks under group-level churn.
    #[test]
    fn headwise_block_conservation(
        ops in proptest::collection::vec((0u8..5, 0u64..6, 0u16..8, 1u32..60), 1..150)
    ) {
        let cfg = BlockConfig { block_size: 16, num_blocks: 256 };
        let mut a = HeadwiseAllocator::new(cfg);
        for (kind, seq, group, tokens) in ops {
            match kind {
                0 => {
                    if a.tokens_of(SeqId(seq), GroupId(group)).is_none() {
                        let _ = a.allocate_groups(SeqId(seq), &[GroupId(group)], tokens);
                    }
                }
                1 => {
                    if !a.groups_of(SeqId(seq)).is_empty() {
                        let _ = a.append_token_all_groups(SeqId(seq));
                    }
                }
                2 => {
                    if !a.groups_of(SeqId(seq)).is_empty() {
                        let _ = a.grow_tokens_all_groups(SeqId(seq), tokens);
                    }
                }
                3 => {
                    let _ = a.free_group(SeqId(seq), GroupId(group));
                }
                _ => {
                    let _ = a.free_seq(SeqId(seq));
                }
            }
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), cfg.num_blocks);
        }
        // Free everything → pool returns to pristine.
        let seqs: Vec<SeqId> = a.sequences().collect();
        for s in seqs {
            a.free_seq(s);
        }
        prop_assert_eq!(a.free_blocks(), cfg.num_blocks);
    }

    /// Chunk-by-chunk growth telescopes: growing a sequence through an
    /// arbitrary chunk schedule lands on exactly the block count (and
    /// token count) of a single up-front allocation of the total — the
    /// incremental-KV path never over- or under-reserves.
    #[test]
    fn chunked_growth_telescopes_to_atomic(
        chunks in proptest::collection::vec(1u32..600, 1..12),
    ) {
        let total: u32 = chunks.iter().sum();
        let cfg = BlockConfig { block_size: 16, num_blocks: 4096 };
        // Paged: allocate the first chunk, grow by each subsequent chunk.
        let mut grown = PagedAllocator::new(cfg);
        grown.allocate_seq(SeqId(1), chunks[0]).unwrap();
        let mut so_far = chunks[0];
        for &c in &chunks[1..] {
            so_far += c;
            grown.grow_tokens(SeqId(1), so_far).unwrap();
        }
        let mut atomic = PagedAllocator::new(cfg);
        atomic.allocate_seq(SeqId(1), total).unwrap();
        prop_assert_eq!(grown.used_blocks(), atomic.used_blocks());
        prop_assert_eq!(grown.tokens_of(SeqId(1)), Some(total));

        // Headwise: same schedule over several resident groups.
        let gs = [GroupId(0), GroupId(3), GroupId(7)];
        let mut hg = HeadwiseAllocator::new(cfg);
        hg.allocate_groups(SeqId(1), &gs, chunks[0]).unwrap();
        let mut so_far = chunks[0];
        for &c in &chunks[1..] {
            so_far += c;
            hg.grow_tokens_all_groups(SeqId(1), so_far).unwrap();
        }
        let mut ha = HeadwiseAllocator::new(cfg);
        ha.allocate_groups(SeqId(1), &gs, total).unwrap();
        prop_assert_eq!(hg.used_blocks(), ha.used_blocks());
        for g in gs {
            prop_assert_eq!(hg.tokens_of(SeqId(1), g), Some(total));
        }
    }

    /// Migration plans are exact: applying moves+frees to the old placement
    /// reproduces the new placement restricted to surviving groups, and no
    /// group is both moved and freed.
    #[test]
    fn migration_plan_exactness(
        old_counts in proptest::collection::vec(0u32..6, 1..5),
        new_counts in proptest::collection::vec(0u32..6, 1..5),
    ) {
        let old = Placement::from_counts(&old_counts);
        let new = Placement::from_counts(&new_counts);
        let (moves, frees) = plan_migration(&old, &new);

        // Disjointness.
        for m in &moves {
            prop_assert!(!frees.iter().any(|&(g, _)| g == m.group));
        }
        // Moves land where `new` says.
        for m in &moves {
            prop_assert_eq!(new.device_of(m.group), Some(m.dst));
            prop_assert_eq!(old.device_of(m.group), Some(m.src));
            prop_assert_ne!(m.src, m.dst);
        }
        // Every group of `old` is accounted for: moved, freed, or unchanged.
        for (g, d) in old.iter() {
            let moved = moves.iter().any(|m| m.group == g);
            let freed = frees.iter().any(|&(fg, _)| fg == g);
            let stays = new.device_of(g) == Some(d);
            prop_assert!(moved ^ freed ^ stays, "group {g:?} inconsistently planned");
        }
        // Overlap is never moved: identical placements yield no ops.
        let (self_moves, self_frees) = plan_migration(&old, &old);
        prop_assert!(self_moves.is_empty() && self_frees.is_empty());
    }
}
