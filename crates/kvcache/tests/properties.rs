//! Property tests: block conservation, CoW refcount conservation, and
//! placement/migration invariants.

use hetis_kvcache::{
    plan_migration, BlockConfig, BlockId, GroupId, HeadwiseAllocator, PagedAllocator, Placement,
    PrefixIndex, SeqId,
};
use proptest::prelude::*;

proptest! {
    /// Paged allocator conserves blocks across an arbitrary workload of
    /// allocate / append / grow / free operations.
    #[test]
    fn paged_block_conservation(ops in proptest::collection::vec((0u8..4, 0u64..8, 1u32..80), 1..200)) {
        let cfg = BlockConfig { block_size: 16, num_blocks: 64 };
        let mut a = PagedAllocator::new(cfg);
        let mut live: Vec<u64> = Vec::new();
        for (kind, seq, tokens) in ops {
            match kind {
                0 => {
                    if !live.contains(&seq) && a.allocate_seq(SeqId(seq), tokens).is_ok() {
                        live.push(seq);
                    }
                }
                1 => {
                    if live.contains(&seq) {
                        let _ = a.append_token(SeqId(seq));
                    }
                }
                2 => {
                    if live.contains(&seq) {
                        let _ = a.grow_tokens(SeqId(seq), tokens);
                    }
                }
                _ => {
                    a.free_seq(SeqId(seq));
                    live.retain(|&s| s != seq);
                }
            }
            // Invariant: used + free == total.
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), cfg.num_blocks);
            // Invariant: used blocks exactly cover the live sequences.
            let expect: u32 = live.iter()
                .map(|&s| cfg.blocks_for(a.tokens_of(SeqId(s)).unwrap()))
                .sum();
            prop_assert_eq!(a.used_blocks(), expect);
        }
    }

    /// Headwise allocator conserves blocks under group-level churn.
    #[test]
    fn headwise_block_conservation(
        ops in proptest::collection::vec((0u8..5, 0u64..6, 0u16..8, 1u32..60), 1..150)
    ) {
        let cfg = BlockConfig { block_size: 16, num_blocks: 256 };
        let mut a = HeadwiseAllocator::new(cfg);
        for (kind, seq, group, tokens) in ops {
            match kind {
                0 => {
                    if a.tokens_of(SeqId(seq), GroupId(group)).is_none() {
                        let _ = a.allocate_groups(SeqId(seq), &[GroupId(group)], tokens);
                    }
                }
                1 => {
                    if !a.groups_of(SeqId(seq)).is_empty() {
                        let _ = a.append_token_all_groups(SeqId(seq));
                    }
                }
                2 => {
                    if !a.groups_of(SeqId(seq)).is_empty() {
                        let _ = a.grow_tokens_all_groups(SeqId(seq), tokens);
                    }
                }
                3 => {
                    let _ = a.free_group(SeqId(seq), GroupId(group));
                }
                _ => {
                    let _ = a.free_seq(SeqId(seq));
                }
            }
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), cfg.num_blocks);
        }
        // Free everything → pool returns to pristine.
        let seqs: Vec<SeqId> = a.sequences().collect();
        for s in seqs {
            a.free_seq(s);
        }
        prop_assert_eq!(a.free_blocks(), cfg.num_blocks);
    }

    /// Chunk-by-chunk growth telescopes: growing a sequence through an
    /// arbitrary chunk schedule lands on exactly the block count (and
    /// token count) of a single up-front allocation of the total — the
    /// incremental-KV path never over- or under-reserves.
    #[test]
    fn chunked_growth_telescopes_to_atomic(
        chunks in proptest::collection::vec(1u32..600, 1..12),
    ) {
        let total: u32 = chunks.iter().sum();
        let cfg = BlockConfig { block_size: 16, num_blocks: 4096 };
        // Paged: allocate the first chunk, grow by each subsequent chunk.
        let mut grown = PagedAllocator::new(cfg);
        grown.allocate_seq(SeqId(1), chunks[0]).unwrap();
        let mut so_far = chunks[0];
        for &c in &chunks[1..] {
            so_far += c;
            grown.grow_tokens(SeqId(1), so_far).unwrap();
        }
        let mut atomic = PagedAllocator::new(cfg);
        atomic.allocate_seq(SeqId(1), total).unwrap();
        prop_assert_eq!(grown.used_blocks(), atomic.used_blocks());
        prop_assert_eq!(grown.tokens_of(SeqId(1)), Some(total));

        // Headwise: same schedule over several resident groups.
        let gs = [GroupId(0), GroupId(3), GroupId(7)];
        let mut hg = HeadwiseAllocator::new(cfg);
        hg.allocate_groups(SeqId(1), &gs, chunks[0]).unwrap();
        let mut so_far = chunks[0];
        for &c in &chunks[1..] {
            so_far += c;
            hg.grow_tokens_all_groups(SeqId(1), so_far).unwrap();
        }
        let mut ha = HeadwiseAllocator::new(cfg);
        ha.allocate_groups(SeqId(1), &gs, total).unwrap();
        prop_assert_eq!(hg.used_blocks(), ha.used_blocks());
        for g in gs {
            prop_assert_eq!(hg.tokens_of(SeqId(1), g), Some(total));
        }
    }

    /// CoW sharing conserves refcounts: across arbitrary interleavings of
    /// allocate / share / CoW-write / append / grow / free, every block's
    /// refcount equals the number of block-table references to it, no
    /// block is simultaneously free and referenced (double-free), and
    /// none is unreferenced yet unavailable (leak).
    #[test]
    fn paged_cow_refcount_conservation(
        ops in proptest::collection::vec((0u8..6, 0u64..8, 1u32..80), 1..150)
    ) {
        let cfg = BlockConfig { block_size: 16, num_blocks: 96 };
        let mut a = PagedAllocator::new(cfg);
        let mut live: Vec<u64> = Vec::new();
        for (kind, seq, tokens) in ops {
            match kind {
                0 => {
                    if !live.contains(&seq) && a.allocate_seq(SeqId(seq), tokens).is_ok() {
                        live.push(seq);
                    }
                }
                1 => {
                    // Share the longest common full-block prefix of the
                    // oldest live sequence.
                    if !live.contains(&seq) {
                        if let Some(&donor) = live.first() {
                            let dt = a.tokens_of(SeqId(donor)).unwrap();
                            let full = ((dt / cfg.block_size).min(tokens / cfg.block_size)) as usize;
                            let shared: Vec<BlockId> =
                                a.blocks_of(SeqId(donor)).unwrap()[..full].to_vec();
                            if a.allocate_seq_shared(SeqId(seq), tokens, &shared).is_ok() {
                                live.push(seq);
                            }
                        }
                    }
                }
                2 => {
                    if live.contains(&seq) {
                        let _ = a.append_token(SeqId(seq));
                    }
                }
                3 => {
                    if live.contains(&seq) {
                        let _ = a.grow_tokens(SeqId(seq), tokens);
                    }
                }
                4 => {
                    // CoW write into a pseudo-random block of the table.
                    if live.contains(&seq) {
                        let n = a.blocks_of(SeqId(seq)).unwrap().len();
                        if n > 0 {
                            let _ = a.write_block(SeqId(seq), tokens as usize % n);
                        }
                    }
                }
                _ => {
                    a.free_seq(SeqId(seq));
                    live.retain(|&s| s != seq);
                }
            }
            // Refcounts equal table references; used = referenced blocks.
            let mut counted = vec![0u32; cfg.num_blocks as usize];
            let seqs: Vec<SeqId> = a.sequences().collect();
            for s in &seqs {
                for b in a.blocks_of(*s).unwrap() {
                    counted[b.0 as usize] += 1;
                }
            }
            let mut used = 0;
            for (i, &c) in counted.iter().enumerate() {
                prop_assert_eq!(a.ref_count(BlockId(i as u32)), c);
                if c > 0 { used += 1; }
            }
            prop_assert_eq!(a.used_blocks(), used);
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), cfg.num_blocks);
        }
        // Terminal zero: freeing all sharers returns the whole pool.
        for s in live {
            a.free_seq(SeqId(s));
        }
        prop_assert_eq!(a.free_blocks(), cfg.num_blocks);
    }

    /// Headwise CoW refcount conservation under per-group sharing churn.
    #[test]
    fn headwise_cow_refcount_conservation(
        ops in proptest::collection::vec((0u8..6, 0u64..6, 0u16..4, 1u32..60), 1..120)
    ) {
        let cfg = BlockConfig { block_size: 16, num_blocks: 192 };
        let mut a = HeadwiseAllocator::new(cfg);
        for (kind, seq, group, tokens) in ops {
            match kind {
                0 => {
                    if a.tokens_of(SeqId(seq), GroupId(group)).is_none() {
                        let _ = a.allocate_groups(SeqId(seq), &[GroupId(group)], tokens);
                    }
                }
                1 => {
                    // Share a full-block prefix of the lowest other
                    // sequence holding the same head group here.
                    if a.tokens_of(SeqId(seq), GroupId(group)).is_none() {
                        let donor = a
                            .sequences()
                            .filter(|s| s.0 != seq && a.tokens_of(*s, GroupId(group)).is_some())
                            .min_by_key(|s| s.0);
                        if let Some(d) = donor {
                            let dt = a.tokens_of(d, GroupId(group)).unwrap();
                            let full = ((dt / cfg.block_size).min(tokens / cfg.block_size)) as usize;
                            let shared: Vec<BlockId> =
                                a.blocks_of(d, GroupId(group)).unwrap()[..full].to_vec();
                            let _ = a.allocate_groups_shared(
                                SeqId(seq), &[GroupId(group)], tokens, &[&shared],
                            );
                        }
                    }
                }
                2 => {
                    if !a.groups_of(SeqId(seq)).is_empty() {
                        let _ = a.append_token_all_groups(SeqId(seq));
                    }
                }
                3 => {
                    if !a.groups_of(SeqId(seq)).is_empty() {
                        let _ = a.grow_tokens_all_groups(SeqId(seq), tokens);
                    }
                }
                4 => {
                    if let Some(blocks) = a.blocks_of(SeqId(seq), GroupId(group)) {
                        let n = blocks.len();
                        if n > 0 {
                            let _ = a.write_block(SeqId(seq), GroupId(group), tokens as usize % n);
                        }
                    }
                }
                _ => {
                    if tokens % 2 == 0 {
                        let _ = a.free_group(SeqId(seq), GroupId(group));
                    } else {
                        let _ = a.free_seq(SeqId(seq));
                    }
                }
            }
            let mut counted = vec![0u32; cfg.num_blocks as usize];
            let seqs: Vec<SeqId> = a.sequences().collect();
            for s in &seqs {
                for g in a.groups_of(*s).to_vec() {
                    for b in a.blocks_of(*s, g).unwrap() {
                        counted[b.0 as usize] += 1;
                    }
                }
            }
            let mut used = 0;
            for (i, &c) in counted.iter().enumerate() {
                prop_assert_eq!(a.ref_count(BlockId(i as u32)), c);
                if c > 0 { used += 1; }
            }
            prop_assert_eq!(a.used_blocks(), used);
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), cfg.num_blocks);
        }
        let seqs: Vec<SeqId> = a.sequences().collect();
        for s in seqs {
            a.free_seq(s);
        }
        prop_assert_eq!(a.free_blocks(), cfg.num_blocks);
    }

    /// Hit → evict → re-register → re-hit is deterministic: running the
    /// identical admit/share/evict/re-admit cycle twice from fresh state
    /// produces identical probe results, and within a cycle the rehit
    /// matches the re-registered table exactly.
    #[test]
    fn hit_evict_rehit_deterministic(prompt_blocks in 1u32..8, tail in 0u32..16) {
        let cfg = BlockConfig { block_size: 16, num_blocks: 64 };
        let len = prompt_blocks * 16 + tail;
        let tokens: Vec<u32> = (0..len).map(|t| t * 7 + 3).collect();
        let cycle = || -> (Vec<BlockId>, Vec<BlockId>) {
            let mut a = PagedAllocator::new(cfg);
            let mut idx = PrefixIndex::new(16);
            a.allocate_seq(SeqId(1), len).unwrap();
            idx.insert(&tokens, a.blocks_of(SeqId(1)).unwrap());
            let hit = idx.probe(&tokens);
            assert_eq!(hit.len() as u32, prompt_blocks);
            // A sharer admitted through the index bumps every hit block.
            a.allocate_seq_shared(SeqId(2), len, &hit).unwrap();
            for &b in &hit {
                assert_eq!(a.ref_count(b), 2);
            }
            // Evict both; index entries die with their blocks.
            a.free_seq(SeqId(1));
            a.free_seq(SeqId(2));
            for &b in &hit {
                idx.invalidate_block(b);
            }
            assert!(idx.probe(&tokens).is_empty());
            assert_eq!(a.free_blocks(), cfg.num_blocks);
            // Re-admit the same prompt and re-register.
            a.allocate_seq(SeqId(3), len).unwrap();
            idx.insert(&tokens, a.blocks_of(SeqId(3)).unwrap());
            let rehit = idx.probe(&tokens);
            assert_eq!(
                &rehit[..],
                &a.blocks_of(SeqId(3)).unwrap()[..prompt_blocks as usize],
                "rehit must map to the re-registered table"
            );
            (hit, rehit)
        };
        prop_assert_eq!(cycle(), cycle());
    }

    /// Migration plans are exact: applying moves+frees to the old placement
    /// reproduces the new placement restricted to surviving groups, and no
    /// group is both moved and freed.
    #[test]
    fn migration_plan_exactness(
        old_counts in proptest::collection::vec(0u32..6, 1..5),
        new_counts in proptest::collection::vec(0u32..6, 1..5),
    ) {
        let old = Placement::from_counts(&old_counts);
        let new = Placement::from_counts(&new_counts);
        let (moves, frees) = plan_migration(&old, &new);

        // Disjointness.
        for m in &moves {
            prop_assert!(!frees.iter().any(|&(g, _)| g == m.group));
        }
        // Moves land where `new` says.
        for m in &moves {
            prop_assert_eq!(new.device_of(m.group), Some(m.dst));
            prop_assert_eq!(old.device_of(m.group), Some(m.src));
            prop_assert_ne!(m.src, m.dst);
        }
        // Every group of `old` is accounted for: moved, freed, or unchanged.
        for (g, d) in old.iter() {
            let moved = moves.iter().any(|m| m.group == g);
            let freed = frees.iter().any(|&(fg, _)| fg == g);
            let stays = new.device_of(g) == Some(d);
            prop_assert!(moved ^ freed ^ stays, "group {g:?} inconsistently planned");
        }
        // Overlap is never moved: identical placements yield no ops.
        let (self_moves, self_frees) = plan_migration(&old, &old);
        prop_assert!(self_moves.is_empty() && self_frees.is_empty());
    }
}
