//! Block-index assembly for the decode step.
//!
//! Each decode iteration, the attention kernel needs, for every (sequence,
//! head group) it will process, the flat list of physical cache slots of
//! that group's tokens: `slot = block_id × block_size + offset`. vLLM
//! builds this per sequence; Hetis must build it per (sequence, group),
//! which is more work — so the paper parallelizes it across CPU cores
//! (§6), winning 26% on fetch time despite 13% more storage ops
//! (Fig. 15b). Both paths below do the *real* computation over real block
//! tables, so criterion can measure the same trade-off.

use crate::block::{BlockConfig, SeqId};
use crate::headwise::{GroupId, HeadwiseAllocator};
use crate::paged::PagedAllocator;
use rayon::prelude::*;

/// A fetch plan: per work item, the flat physical slot ids of its tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchIndex {
    /// One entry per (sequence[, group]) in iteration order; each is the
    /// ordered physical slots of that item's context tokens.
    pub slots: Vec<Vec<u32>>,
}

impl FetchIndex {
    /// Total slots across all items.
    pub fn total_slots(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum()
    }
}

fn slots_for(blocks: &[crate::block::BlockId], tokens: u32, cfg: BlockConfig) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens as usize);
    for pos in 0..tokens {
        let b = blocks[(pos / cfg.block_size) as usize];
        out.push(b.0 * cfg.block_size + pos % cfg.block_size);
    }
    out
}

/// Builds the fetch index for a token-granular pool (vLLM baseline):
/// one item per sequence.
pub fn build_fetch_index_serial(alloc: &PagedAllocator, seqs: &[SeqId]) -> FetchIndex {
    let cfg = alloc.config();
    let slots = seqs
        .iter()
        .map(|&s| {
            let blocks = alloc.blocks_of(s).expect("sequence resident");
            let tokens = alloc.tokens_of(s).expect("sequence resident");
            slots_for(blocks, tokens, cfg)
        })
        .collect();
    FetchIndex { slots }
}

/// Builds the fetch index for a head-granular pool, serially: one item per
/// (sequence, group) pair.
pub fn build_headwise_index_serial(
    alloc: &HeadwiseAllocator,
    items: &[(SeqId, GroupId)],
) -> FetchIndex {
    let cfg = alloc.config();
    let slots = items
        .iter()
        .map(|&(s, g)| {
            let blocks = alloc.blocks_of(s, g).expect("group resident");
            let tokens = alloc.tokens_of(s, g).expect("group resident");
            slots_for(blocks, tokens, cfg)
        })
        .collect();
    FetchIndex { slots }
}

/// Builds the head-granular fetch index in parallel across CPU cores —
/// the paper's multi-core acceleration of block indexing (§6).
pub fn build_fetch_index_parallel(
    alloc: &HeadwiseAllocator,
    items: &[(SeqId, GroupId)],
) -> FetchIndex {
    let cfg = alloc.config();
    let slots = items
        .par_iter()
        .map(|&(s, g)| {
            let blocks = alloc.blocks_of(s, g).expect("group resident");
            let tokens = alloc.tokens_of(s, g).expect("group resident");
            slots_for(blocks, tokens, cfg)
        })
        .collect();
    FetchIndex { slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockConfig;

    fn head_pool() -> (HeadwiseAllocator, Vec<(SeqId, GroupId)>) {
        let mut a = HeadwiseAllocator::new(BlockConfig {
            block_size: 16,
            num_blocks: 10_000,
        });
        let groups: Vec<GroupId> = (0..8).map(GroupId).collect();
        let mut items = Vec::new();
        for s in 0..50u64 {
            a.allocate_groups(SeqId(s), &groups, 50 + (s as u32 % 64))
                .unwrap();
            for &g in &groups {
                items.push((SeqId(s), g));
            }
        }
        (a, items)
    }

    #[test]
    fn parallel_equals_serial() {
        let (a, items) = head_pool();
        let serial = build_headwise_index_serial(&a, &items);
        let parallel = build_fetch_index_parallel(&a, &items);
        assert_eq!(serial, parallel);
        assert_eq!(serial.slots.len(), items.len());
    }

    #[test]
    fn slots_are_consistent_with_tables() {
        let (a, items) = head_pool();
        let idx = build_headwise_index_serial(&a, &items);
        for (k, &(s, g)) in items.iter().enumerate() {
            let tokens = a.tokens_of(s, g).unwrap() as usize;
            assert_eq!(idx.slots[k].len(), tokens);
            // Slots within one block are consecutive.
            for w in idx.slots[k].windows(2) {
                let same_block = w[0] / 16 == w[1] / 16;
                if same_block {
                    assert_eq!(w[1], w[0] + 1);
                }
            }
        }
    }

    #[test]
    fn paged_index_counts() {
        let mut p = PagedAllocator::new(BlockConfig {
            block_size: 16,
            num_blocks: 1000,
        });
        let seqs: Vec<SeqId> = (0..10u64).map(SeqId).collect();
        for &s in &seqs {
            p.allocate_seq(s, 33).unwrap();
        }
        let idx = build_fetch_index_serial(&p, &seqs);
        assert_eq!(idx.total_slots(), 10 * 33);
        // No two sequences share a physical slot.
        let mut all: Vec<u32> = idx.slots.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 330);
    }

    #[test]
    fn headwise_slots_disjoint_across_groups() {
        let (a, items) = head_pool();
        let idx = build_headwise_index_serial(&a, &items);
        let mut all: Vec<u32> = idx.slots.iter().flatten().copied().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "physical slots must never alias");
    }
}
