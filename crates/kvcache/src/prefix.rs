//! Radix-keyed prefix index: block-granular token-id prefixes → resident
//! blocks.
//!
//! The index is the lookup half of automatic prefix caching (vLLM's APC,
//! SGLang's RadixAttention): every *full* block of a registered sequence
//! is keyed by the chain hash of all token ids up to and including that
//! block, so two sequences that share a prefix hash to the same keys and
//! can share the underlying blocks. Chain hashing collapses the radix
//! tree walk to one `HashMap` lookup per block — a probe is O(prefix
//! blocks), an insert is O(sequence blocks), and divergence anywhere
//! inside a block changes that block's key and every key after it.
//!
//! The index holds no refcounts itself: block lifetime lives in the
//! allocators ([`crate::paged::PagedAllocator`],
//! [`crate::headwise::HeadwiseAllocator`]), which count sharers and only
//! reclaim a block at refcount zero. When an allocator does reclaim an
//! indexed block the owner must call [`PrefixIndex::invalidate_block`];
//! a probe stops at the first missing key, so invalidating a mid-chain
//! entry safely truncates every longer prefix through it.

use crate::block::BlockId;
use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Maps chain-hashed block-granular token-id prefixes to resident blocks.
#[derive(Debug, Clone)]
pub struct PrefixIndex {
    block_size: u32,
    /// chain key → the block caching that prefix's last `block_size` tokens.
    nodes: HashMap<u64, BlockId>,
    /// Reverse map for O(1) invalidation when a block is reclaimed.
    owners: HashMap<BlockId, u64>,
}

impl PrefixIndex {
    /// An empty index over blocks of `block_size` tokens.
    pub fn new(block_size: u32) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        PrefixIndex {
            block_size,
            nodes: HashMap::new(),
            owners: HashMap::new(),
        }
    }

    /// Tokens per block key.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Indexed block entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Chain keys of every full-block prefix of `tokens`, in order.
    pub fn keys_of(&self, tokens: &[u32]) -> Vec<u64> {
        let bs = self.block_size as usize;
        let mut keys = Vec::with_capacity(tokens.len() / bs);
        let mut h = FNV_OFFSET;
        for chunk in tokens.chunks_exact(bs) {
            for &t in chunk {
                h = fold(h, t as u64);
            }
            keys.push(h);
        }
        keys
    }

    /// Longest indexed prefix of `tokens`: the resident blocks covering
    /// its leading full blocks, stopping at the first miss. The trailing
    /// partial block is never matched (its key would change as it fills).
    pub fn probe(&self, tokens: &[u32]) -> Vec<BlockId> {
        let mut hit = Vec::new();
        for key in self.keys_of(tokens) {
            match self.nodes.get(&key) {
                Some(&b) => hit.push(b),
                None => break,
            }
        }
        hit
    }

    /// Registers every full-block prefix of `tokens`, backed by the
    /// sequence's `blocks` (block `i` caches tokens
    /// `[i·block_size, (i+1)·block_size)`). Keys already present keep
    /// their existing block — first registration wins, so sharers all
    /// converge on one physical copy. Returns entries newly added.
    pub fn insert(&mut self, tokens: &[u32], blocks: &[BlockId]) -> usize {
        let mut added = 0;
        for (i, key) in self.keys_of(tokens).into_iter().enumerate() {
            let Some(&block) = blocks.get(i) else { break };
            if self.nodes.contains_key(&key) {
                continue;
            }
            self.nodes.insert(key, block);
            self.owners.insert(block, key);
            added += 1;
        }
        added
    }

    /// Drops the entry backed by `block` (the allocator reclaimed it, or
    /// CoW retired the shared copy). Probes through the dropped prefix
    /// now stop there. Returns whether an entry existed.
    pub fn invalidate_block(&mut self, block: BlockId) -> bool {
        match self.owners.remove(&block) {
            Some(key) => {
                self.nodes.remove(&key);
                true
            }
            None => false,
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.owners.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    fn blocks(ids: &[u32]) -> Vec<BlockId> {
        ids.iter().map(|&i| BlockId(i)).collect()
    }

    #[test]
    fn probe_matches_longest_full_block_prefix() {
        let mut idx = PrefixIndex::new(4);
        // 10 tokens → 2 full blocks indexed; the partial third is not.
        idx.insert(&toks(10), &blocks(&[7, 8, 9]));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.probe(&toks(10)), blocks(&[7, 8]));
        // A longer prompt with the same head matches the same 2 blocks.
        assert_eq!(idx.probe(&toks(64)), blocks(&[7, 8]));
        // Shorter than one block: nothing to match.
        assert_eq!(idx.probe(&toks(3)), Vec::<BlockId>::new());
    }

    #[test]
    fn divergence_inside_a_block_misses_from_there() {
        let mut idx = PrefixIndex::new(4);
        idx.insert(&toks(12), &blocks(&[1, 2, 3]));
        let mut forked = toks(12);
        forked[5] = 999; // inside block 1
        assert_eq!(idx.probe(&forked), blocks(&[1]));
        forked[0] = 999; // inside block 0
        assert_eq!(idx.probe(&forked), Vec::<BlockId>::new());
    }

    #[test]
    fn first_registration_wins() {
        let mut idx = PrefixIndex::new(4);
        assert_eq!(idx.insert(&toks(8), &blocks(&[1, 2])), 2);
        // A second sequence with the same tokens but different blocks
        // does not displace the canonical copy.
        assert_eq!(idx.insert(&toks(8), &blocks(&[5, 6])), 0);
        assert_eq!(idx.probe(&toks(8)), blocks(&[1, 2]));
    }

    #[test]
    fn invalidate_truncates_longer_prefixes() {
        let mut idx = PrefixIndex::new(4);
        idx.insert(&toks(16), &blocks(&[1, 2, 3, 4]));
        assert!(idx.invalidate_block(BlockId(2)));
        assert!(!idx.invalidate_block(BlockId(2)));
        // Probe stops at the hole even though blocks 3, 4 are indexed.
        assert_eq!(idx.probe(&toks(16)), blocks(&[1]));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn evict_then_reinsert_is_deterministic() {
        let mut idx = PrefixIndex::new(4);
        idx.insert(&toks(8), &blocks(&[1, 2]));
        let before = idx.probe(&toks(8));
        idx.invalidate_block(BlockId(1));
        idx.invalidate_block(BlockId(2));
        assert!(idx.probe(&toks(8)).is_empty());
        // Re-registering after eviction restores the exact mapping.
        idx.insert(&toks(8), &blocks(&[1, 2]));
        assert_eq!(idx.probe(&toks(8)), before);
    }

    #[test]
    fn insert_truncated_by_short_block_list() {
        let mut idx = PrefixIndex::new(4);
        // Only one block supplied for two full blocks of tokens.
        assert_eq!(idx.insert(&toks(8), &blocks(&[9])), 1);
        assert_eq!(idx.probe(&toks(8)), blocks(&[9]));
    }
}
