//! vLLM-style token-granular paged allocator: one block table per sequence.
//!
//! Blocks are refcounted so sequences admitted through the
//! [`crate::prefix::PrefixIndex`] can share their common prefix blocks
//! ([`PagedAllocator::allocate_seq_shared`]); the first write into a
//! shared block copies it ([`PagedAllocator::write_block`]), and a block
//! only returns to the free list when its last sharer frees it.

use crate::block::{BlockConfig, BlockId, SeqId};
use std::collections::HashMap;

/// Allocation failure: the pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Blocks requested by the failing call.
    pub requested: u32,
    /// Blocks that were free.
    pub free: u32,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KV pool exhausted: requested {} blocks, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for AllocError {}

/// Per-sequence block table.
#[derive(Debug, Clone, Default)]
struct BlockTable {
    blocks: Vec<BlockId>,
    tokens: u32,
}

/// Token-granular paged KV allocator (the vLLM baseline design).
///
/// A block covers `block_size` tokens of *all* KV heads for the layers the
/// pool represents. Blocks are recycled LIFO, which mirrors vLLM's free
/// list and keeps allocation O(1).
#[derive(Debug, Clone)]
pub struct PagedAllocator {
    config: BlockConfig,
    free: Vec<BlockId>,
    tables: HashMap<SeqId, BlockTable>,
    /// Sharer count per block; 0 = free. A block is reclaimed only when
    /// its count returns to zero.
    refs: Vec<u32>,
    /// Cumulative count of block-table write operations (storage ops in
    /// Fig. 15b's terms).
    store_ops: u64,
}

impl PagedAllocator {
    /// A fresh pool.
    pub fn new(config: BlockConfig) -> Self {
        // LIFO free list: highest ids pop first; deterministic.
        let free = (0..config.num_blocks).rev().map(BlockId).collect();
        PagedAllocator {
            config,
            free,
            tables: HashMap::new(),
            refs: vec![0; config.num_blocks as usize],
            store_ops: 0,
        }
    }

    /// Pops a free block with refcount 1, counting the table write.
    fn take_free(&mut self) -> BlockId {
        let b = self.free.pop().expect("free list checked by caller");
        debug_assert_eq!(self.refs[b.0 as usize], 0);
        self.refs[b.0 as usize] = 1;
        self.store_ops += 1;
        b
    }

    /// Drops one sharer; the block returns to the pool at refcount zero.
    fn release(&mut self, b: BlockId) {
        let r = &mut self.refs[b.0 as usize];
        debug_assert!(*r > 0, "releasing free block {b:?}");
        *r -= 1;
        if *r == 0 {
            self.free.push(b);
        }
    }

    /// Pool geometry.
    pub fn config(&self) -> BlockConfig {
        self.config
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Blocks in use.
    pub fn used_blocks(&self) -> u32 {
        self.config.num_blocks - self.free_blocks()
    }

    /// Pool utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.config.num_blocks == 0 {
            0.0
        } else {
            self.used_blocks() as f64 / self.config.num_blocks as f64
        }
    }

    /// Whether `tokens` more tokens could be allocated right now for a new
    /// sequence.
    pub fn can_allocate(&self, tokens: u32) -> bool {
        self.config.blocks_for(tokens) <= self.free_blocks()
    }

    /// Registers a new sequence holding `tokens` tokens (its prompt).
    pub fn allocate_seq(&mut self, seq: SeqId, tokens: u32) -> Result<(), AllocError> {
        assert!(
            !self.tables.contains_key(&seq),
            "sequence {seq:?} already allocated"
        );
        let need = self.config.blocks_for(tokens);
        if need > self.free_blocks() {
            return Err(AllocError {
                requested: need,
                free: self.free_blocks(),
            });
        }
        let mut blocks = Vec::with_capacity(need as usize);
        for _ in 0..need {
            blocks.push(self.take_free());
        }
        self.tables.insert(seq, BlockTable { blocks, tokens });
        Ok(())
    }

    /// Registers a new sequence of `tokens` tokens whose leading blocks
    /// are `shared` — resident blocks (e.g. from a
    /// [`crate::prefix::PrefixIndex`] probe) whose refcounts grow by one.
    /// Only the cold tail costs free blocks. All-or-nothing on failure.
    pub fn allocate_seq_shared(
        &mut self,
        seq: SeqId,
        tokens: u32,
        shared: &[BlockId],
    ) -> Result<(), AllocError> {
        assert!(
            !self.tables.contains_key(&seq),
            "sequence {seq:?} already allocated"
        );
        let total = self.config.blocks_for(tokens);
        assert!(
            shared.len() as u32 <= total,
            "shared prefix of {} blocks exceeds the {total} the sequence needs",
            shared.len()
        );
        let need = total - shared.len() as u32;
        if need > self.free_blocks() {
            return Err(AllocError {
                requested: need,
                free: self.free_blocks(),
            });
        }
        let mut blocks = Vec::with_capacity(total as usize);
        for &b in shared {
            assert!(self.refs[b.0 as usize] > 0, "sharing free block {b:?}");
            self.refs[b.0 as usize] += 1;
            blocks.push(b);
        }
        for _ in 0..need {
            blocks.push(self.take_free());
        }
        self.tables.insert(seq, BlockTable { blocks, tokens });
        Ok(())
    }

    /// Copy-on-write: makes block `idx` of `seq`'s table exclusively
    /// owned before a write. A shared block (refcount > 1) is replaced by
    /// a fresh private copy; an exclusive one is returned unchanged. The
    /// retired shared copy stays resident for its other sharers.
    pub fn write_block(&mut self, seq: SeqId, idx: usize) -> Result<BlockId, AllocError> {
        let b = self.tables.get(&seq).expect("unknown sequence").blocks[idx];
        if self.refs[b.0 as usize] <= 1 {
            return Ok(b);
        }
        if self.free_blocks() == 0 {
            return Err(AllocError {
                requested: 1,
                free: 0,
            });
        }
        let fresh = self.take_free();
        self.refs[b.0 as usize] -= 1;
        self.tables.get_mut(&seq).expect("present").blocks[idx] = fresh;
        Ok(fresh)
    }

    /// Sharers of a block (0 = free).
    pub fn ref_count(&self, b: BlockId) -> u32 {
        self.refs[b.0 as usize]
    }

    /// Appends one generated token; may consume one new block. A shared
    /// tail block is copied first (the token writes into it).
    pub fn append_token(&mut self, seq: SeqId) -> Result<(), AllocError> {
        let table = self.tables.get(&seq).expect("unknown sequence");
        let need_block =
            table.tokens.is_multiple_of(self.config.block_size) && self.config.block_size > 0;
        // A full table (tokens exactly filling blocks) needs a new block
        // for the next token; a fresh empty table too.
        let need_block = need_block || table.blocks.is_empty();
        if need_block {
            if self.free_blocks() == 0 {
                return Err(AllocError {
                    requested: 1,
                    free: 0,
                });
            }
            let b = self.take_free();
            self.tables.get_mut(&seq).expect("present").blocks.push(b);
        } else {
            let idx = table.blocks.len() - 1;
            self.write_block(seq, idx)?;
        }
        self.tables.get_mut(&seq).expect("present").tokens += 1;
        Ok(())
    }

    /// Grows a sequence's table to hold `new_total` tokens (chunked
    /// prefill: each completed chunk extends the reservation by the next
    /// chunk instead of paying the whole prompt at admission).
    /// All-or-nothing: on failure the pool and table are unchanged.
    /// A `new_total` at or below the current count is a no-op.
    pub fn grow_tokens(&mut self, seq: SeqId, new_total: u32) -> Result<(), AllocError> {
        let free_now = self.free_blocks();
        let table = self.tables.get(&seq).expect("unknown sequence");
        if new_total <= table.tokens {
            return Ok(());
        }
        let have = table.blocks.len() as u32;
        let mut need = self.config.blocks_for(new_total).saturating_sub(have);
        // Growth writes into the partial tail block: CoW if shared (the
        // retired copy stays with its other sharers, so it costs a free
        // block too).
        let tail_cow = !table.tokens.is_multiple_of(self.config.block_size)
            && table
                .blocks
                .last()
                .is_some_and(|&b| self.refs[b.0 as usize] > 1);
        if tail_cow {
            need += 1;
        }
        if need > free_now {
            return Err(AllocError {
                requested: need,
                free: free_now,
            });
        }
        if tail_cow {
            let idx = table.blocks.len() - 1;
            self.write_block(seq, idx)?;
        }
        let fresh = self.config.blocks_for(new_total).saturating_sub(have);
        for _ in 0..fresh {
            let b = self.take_free();
            self.tables.get_mut(&seq).expect("present").blocks.push(b);
        }
        self.tables.get_mut(&seq).expect("present").tokens = new_total;
        Ok(())
    }

    /// Releases the sequence's hold on all its blocks (completion or
    /// preemption); a block returns to the pool only when its last
    /// sharer releases it.
    pub fn free_seq(&mut self, seq: SeqId) {
        if let Some(table) = self.tables.remove(&seq) {
            for b in table.blocks {
                self.release(b);
            }
        }
    }

    /// Tokens currently cached for a sequence (None if unknown).
    pub fn tokens_of(&self, seq: SeqId) -> Option<u32> {
        self.tables.get(&seq).map(|t| t.tokens)
    }

    /// The block list of a sequence, for index building.
    pub fn blocks_of(&self, seq: SeqId) -> Option<&[BlockId]> {
        self.tables.get(&seq).map(|t| t.blocks.as_slice())
    }

    /// Sequences currently resident.
    pub fn sequences(&self) -> impl Iterator<Item = SeqId> + '_ {
        self.tables.keys().copied()
    }

    /// Cumulative block-table write operations.
    pub fn store_ops(&self) -> u64 {
        self.store_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(num_blocks: u32) -> PagedAllocator {
        PagedAllocator::new(BlockConfig {
            block_size: 16,
            num_blocks,
        })
    }

    #[test]
    fn allocate_and_free_roundtrip() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 40).unwrap(); // 3 blocks
        assert_eq!(a.used_blocks(), 3);
        assert_eq!(a.tokens_of(SeqId(1)), Some(40));
        a.free_seq(SeqId(1));
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.free_blocks(), 10);
    }

    #[test]
    fn append_allocates_on_boundary() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 16).unwrap(); // exactly 1 block, full
        assert_eq!(a.used_blocks(), 1);
        a.append_token(SeqId(1)).unwrap(); // 17th token → new block
        assert_eq!(a.used_blocks(), 2);
        for _ in 0..15 {
            a.append_token(SeqId(1)).unwrap(); // fills block 2
        }
        assert_eq!(a.used_blocks(), 2);
        a.append_token(SeqId(1)).unwrap(); // 33rd token → block 3
        assert_eq!(a.used_blocks(), 3);
        assert_eq!(a.tokens_of(SeqId(1)), Some(33));
    }

    #[test]
    fn grow_tokens_extends_in_chunks() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 16).unwrap(); // chunk 1: 1 block
        assert_eq!(a.used_blocks(), 1);
        a.grow_tokens(SeqId(1), 48).unwrap(); // chunks 2-3: +2 blocks
        assert_eq!(a.used_blocks(), 3);
        assert_eq!(a.tokens_of(SeqId(1)), Some(48));
        // Shrinking targets and same-size targets are no-ops.
        a.grow_tokens(SeqId(1), 48).unwrap();
        a.grow_tokens(SeqId(1), 10).unwrap();
        assert_eq!(a.used_blocks(), 3);
        assert_eq!(a.tokens_of(SeqId(1)), Some(48));
        // Growth composes with appends at the new boundary.
        a.append_token(SeqId(1)).unwrap(); // 49th token → block 4
        assert_eq!(a.used_blocks(), 4);
    }

    #[test]
    fn grow_tokens_all_or_nothing_on_exhaustion() {
        let mut a = alloc(3);
        a.allocate_seq(SeqId(1), 16).unwrap();
        let err = a.grow_tokens(SeqId(1), 100).unwrap_err();
        assert_eq!(err.requested, 6);
        assert_eq!(err.free, 2);
        // Failed growth leaves the table and pool untouched.
        assert_eq!(a.tokens_of(SeqId(1)), Some(16));
        assert_eq!(a.free_blocks(), 2);
        // A fitting growth still succeeds afterwards.
        a.grow_tokens(SeqId(1), 48).unwrap();
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = alloc(2);
        let err = a.allocate_seq(SeqId(1), 100).unwrap_err();
        assert_eq!(err.requested, 7);
        assert_eq!(err.free, 2);
        // Failed allocation leaves the pool untouched.
        assert_eq!(a.free_blocks(), 2);
        // Fill completely, then the append fails.
        a.allocate_seq(SeqId(2), 32).unwrap();
        assert!(a.append_token(SeqId(2)).is_err());
    }

    #[test]
    fn can_allocate_is_accurate() {
        let mut a = alloc(4);
        assert!(a.can_allocate(64));
        assert!(!a.can_allocate(65));
        a.allocate_seq(SeqId(9), 33).unwrap(); // 3 blocks
        assert!(a.can_allocate(16));
        assert!(!a.can_allocate(17));
    }

    #[test]
    fn store_ops_count_block_writes() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 32).unwrap(); // 2 writes
        a.append_token(SeqId(1)).unwrap(); // boundary → 1 write
        a.append_token(SeqId(1)).unwrap(); // no write
        assert_eq!(a.store_ops(), 3);
    }

    #[test]
    #[should_panic]
    fn double_allocate_panics() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 1).unwrap();
        let _ = a.allocate_seq(SeqId(1), 1);
    }

    #[test]
    fn utilization() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 80).unwrap();
        assert!((a.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_prefix_refcounts_and_free() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 48).unwrap(); // 3 blocks
        let shared: Vec<BlockId> = a.blocks_of(SeqId(1)).unwrap()[..2].to_vec();
        a.allocate_seq_shared(SeqId(2), 40, &shared).unwrap(); // 2 shared + 1 fresh
        assert_eq!(a.used_blocks(), 4, "shared blocks counted once");
        assert_eq!(a.ref_count(shared[0]), 2);
        a.free_seq(SeqId(1));
        // Shared blocks survive their first owner.
        assert_eq!(a.ref_count(shared[0]), 1);
        assert_eq!(a.used_blocks(), 3);
        a.free_seq(SeqId(2));
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.free_blocks(), 10);
    }

    #[test]
    fn shared_alloc_charges_only_cold_tail() {
        let mut a = alloc(3);
        a.allocate_seq(SeqId(1), 48).unwrap(); // all 3 blocks
        let shared: Vec<BlockId> = a.blocks_of(SeqId(1)).unwrap()[..2].to_vec();
        // 5 blocks total, 2 shared → 3 cold > 0 free.
        let err = a.allocate_seq_shared(SeqId(2), 80, &shared).unwrap_err();
        assert_eq!(err.requested, 3);
        assert_eq!(err.free, 0);
        // Failure left refcounts untouched.
        assert_eq!(a.ref_count(shared[0]), 1);
        // A fully-shared sequence costs nothing.
        a.allocate_seq_shared(SeqId(2), 32, &shared).unwrap();
        assert_eq!(a.used_blocks(), 3);
    }

    #[test]
    fn cow_on_write_into_shared_block() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 32).unwrap(); // 2 full blocks
        let shared = a.blocks_of(SeqId(1)).unwrap().to_vec();
        a.allocate_seq_shared(SeqId(2), 32, &shared).unwrap();
        assert_eq!(a.used_blocks(), 2);
        let fresh = a.write_block(SeqId(2), 1).unwrap();
        assert_ne!(fresh, shared[1]);
        assert_eq!(a.ref_count(shared[1]), 1);
        assert_eq!(a.ref_count(fresh), 1);
        assert_eq!(a.used_blocks(), 3);
        // Exclusive block: no copy, same id back.
        assert_eq!(a.write_block(SeqId(2), 1).unwrap(), fresh);
        assert_eq!(a.used_blocks(), 3);
        // The original owner's table is untouched.
        assert_eq!(a.blocks_of(SeqId(1)).unwrap(), &shared[..]);
    }

    #[test]
    fn append_copies_shared_tail() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 24).unwrap(); // 2 blocks, partial tail
        let shared = a.blocks_of(SeqId(1)).unwrap().to_vec();
        a.allocate_seq_shared(SeqId(2), 24, &shared).unwrap();
        assert_eq!(a.used_blocks(), 2);
        a.append_token(SeqId(2)).unwrap(); // writes into shared tail → CoW
        assert_eq!(a.used_blocks(), 3);
        assert_ne!(a.blocks_of(SeqId(2)).unwrap()[1], shared[1]);
        assert_eq!(a.blocks_of(SeqId(1)).unwrap()[1], shared[1]);
        assert_eq!(a.tokens_of(SeqId(2)), Some(25));
        assert_eq!(a.tokens_of(SeqId(1)), Some(24));
    }

    #[test]
    fn grow_copies_shared_partial_tail() {
        let mut a = alloc(10);
        a.allocate_seq(SeqId(1), 24).unwrap();
        let shared = a.blocks_of(SeqId(1)).unwrap().to_vec();
        a.allocate_seq_shared(SeqId(2), 24, &shared).unwrap();
        a.grow_tokens(SeqId(2), 48).unwrap(); // CoW tail + 1 fresh block
        assert_eq!(a.used_blocks(), 4);
        assert_eq!(a.blocks_of(SeqId(1)).unwrap(), &shared[..]);
        assert_eq!(a.ref_count(shared[1]), 1);
        assert_eq!(a.tokens_of(SeqId(2)), Some(48));
        assert_eq!(a.tokens_of(SeqId(1)), Some(24));
    }

    #[test]
    fn zero_token_sequence() {
        let mut a = alloc(4);
        a.allocate_seq(SeqId(5), 0).unwrap();
        assert_eq!(a.used_blocks(), 0);
        // First append on an empty table allocates its first block.
        a.append_token(SeqId(5)).unwrap();
        assert_eq!(a.used_blocks(), 1);
        assert_eq!(a.tokens_of(SeqId(5)), Some(1));
    }
}
