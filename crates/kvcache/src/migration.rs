//! Migration planning with overlap reuse (§5.3).
//!
//! When the Dispatcher re-dispatches a request, the new head placement
//! usually overlaps the old one; Hetis transfers only the groups that
//! actually moved ("partial cache transmission"). This module computes
//! the minimal move set between two placements.

use crate::headwise::GroupId;
use std::collections::HashMap;

/// Where each head group of one request lives: `group → device index`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Placement {
    map: HashMap<GroupId, u32>,
}

impl Placement {
    /// Empty placement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(group, device)` pairs.
    pub fn from_pairs(pairs: &[(GroupId, u32)]) -> Self {
        Placement {
            map: pairs.iter().copied().collect(),
        }
    }

    /// Builds a placement that assigns `counts[d]` consecutive groups to
    /// each device `d`, starting from group 0 — the canonical layout the
    /// Dispatcher produces from per-device group counts.
    pub fn from_counts(counts: &[u32]) -> Self {
        let mut map = HashMap::new();
        let mut g = 0u16;
        for (dev, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                map.insert(GroupId(g), dev as u32);
                g += 1;
            }
        }
        Placement { map }
    }

    /// Assigns one group.
    pub fn assign(&mut self, group: GroupId, device: u32) {
        self.map.insert(group, device);
    }

    /// Device of a group.
    pub fn device_of(&self, group: GroupId) -> Option<u32> {
        self.map.get(&group).copied()
    }

    /// Number of placed groups.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Groups on a given device, sorted (deterministic).
    pub fn groups_on(&self, device: u32) -> Vec<GroupId> {
        let mut v: Vec<GroupId> = self
            .map
            .iter()
            .filter(|&(_, &d)| d == device)
            .map(|(&g, _)| g)
            .collect();
        v.sort();
        v
    }

    /// Per-device group counts as a map.
    pub fn counts(&self) -> HashMap<u32, u32> {
        let mut out = HashMap::new();
        for &d in self.map.values() {
            *out.entry(d).or_insert(0) += 1;
        }
        out
    }

    /// Iterates `(group, device)`.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, u32)> + '_ {
        self.map.iter().map(|(&g, &d)| (g, d))
    }
}

/// One group's cache moving between devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveOp {
    /// Which head group moves.
    pub group: GroupId,
    /// Source device.
    pub src: u32,
    /// Destination device.
    pub dst: u32,
}

/// Computes the moves turning `old` into `new`. Groups placed identically
/// in both are reused in place (the paper's overlap reuse); groups present
/// only in `new` need no migration (they will be written fresh); groups
/// present only in `old` are frees, returned separately.
///
/// Returns `(moves, frees)` with `frees` as `(group, device)` pairs. Both
/// outputs are sorted by group for determinism.
pub fn plan_migration(old: &Placement, new: &Placement) -> (Vec<MoveOp>, Vec<(GroupId, u32)>) {
    let mut moves = Vec::new();
    let mut frees = Vec::new();
    for (g, src) in old.iter() {
        match new.device_of(g) {
            Some(dst) if dst != src => moves.push(MoveOp { group: g, src, dst }),
            Some(_) => {} // overlap: stays put
            None => frees.push((g, src)),
        }
    }
    moves.sort_by_key(|m| m.group);
    frees.sort_by_key(|&(g, _)| g);
    (moves, frees)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u16) -> GroupId {
        GroupId(i)
    }

    #[test]
    fn identical_placements_need_nothing() {
        let p = Placement::from_counts(&[4, 4]);
        let (moves, frees) = plan_migration(&p, &p);
        assert!(moves.is_empty());
        assert!(frees.is_empty());
    }

    #[test]
    fn overlap_is_reused() {
        // 8 groups: old = [6 on dev0, 2 on dev1]; new = [4, 4].
        let old = Placement::from_counts(&[6, 2]);
        let new = Placement::from_counts(&[4, 4]);
        let (moves, frees) = plan_migration(&old, &new);
        // Groups 0..4 stay on dev0; 4,5 move 0→1; 6,7 stay on dev1.
        assert_eq!(frees.len(), 0);
        assert_eq!(moves.len(), 2);
        assert!(moves.iter().all(|m| m.src == 0 && m.dst == 1));
        assert_eq!(moves[0].group, g(4));
        assert_eq!(moves[1].group, g(5));
    }

    #[test]
    fn dropped_groups_become_frees() {
        let old = Placement::from_counts(&[8]);
        let mut new = Placement::new();
        for i in 0..4 {
            new.assign(g(i), 0);
        }
        let (moves, frees) = plan_migration(&old, &new);
        assert!(moves.is_empty());
        assert_eq!(frees.len(), 4);
        assert!(frees.iter().all(|&(_, d)| d == 0));
    }

    #[test]
    fn counts_roundtrip() {
        let p = Placement::from_counts(&[3, 0, 5]);
        let c = p.counts();
        assert_eq!(c.get(&0), Some(&3));
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&5));
        assert_eq!(p.len(), 8);
        assert_eq!(p.groups_on(2).len(), 5);
    }

    #[test]
    fn moves_deterministic_order() {
        let old = Placement::from_pairs(&[(g(3), 0), (g(1), 0), (g(2), 0)]);
        let new = Placement::from_pairs(&[(g(3), 1), (g(1), 1), (g(2), 1)]);
        let (moves, _) = plan_migration(&old, &new);
        let order: Vec<u16> = moves.iter().map(|m| m.group.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
