//! Paged and head-granular KV cache management.
//!
//! Two allocators over fixed-size token blocks:
//!
//! * [`paged::PagedAllocator`] — vLLM-style: one block table per sequence,
//!   a block spans *all* KV heads of the layers it covers.
//! * [`headwise::HeadwiseAllocator`] — Hetis-style (§6 "KV cache
//!   management"): block tables are keyed by *(sequence, KV-head group)*,
//!   so different head groups of the same request can live on different
//!   devices, be migrated independently, and be freed partially.
//!
//! [`index`] implements the block-index assembly that the paper
//! accelerates with "multi-core parallelization on the CPU": building the
//! flat (sequence, position, head-group) → physical-slot arrays consumed
//! by the paged-attention kernel each decode step. Both a serial and a
//! rayon-parallel version exist; Fig. 15b is reproduced by timing them.
//!
//! [`migration`] plans partial cache moves between placements, reusing the
//! overlap between old and new head distributions (§5.3's "opportunistic
//! cache reuse").
//!
//! [`prefix`] is the radix-keyed prefix index for automatic prefix
//! caching: block-granular token-id prefixes map to resident blocks, and
//! both allocators refcount shared blocks with copy-on-write on first
//! write — a block only returns to the pool at refcount zero.

pub mod block;
pub mod headwise;
pub mod index;
pub mod migration;
pub mod paged;
pub mod prefix;

pub use block::{BlockConfig, BlockId, SeqId};
pub use headwise::{GroupId, HeadwiseAllocator};
pub use index::{build_fetch_index_parallel, build_fetch_index_serial, FetchIndex};
pub use migration::{plan_migration, MoveOp, Placement};
pub use paged::{AllocError, PagedAllocator};
pub use prefix::PrefixIndex;
