//! Hetis head-granular allocator: block tables keyed by
//! *(sequence, KV-head group)* (§6 "KV cache management").
//!
//! Splitting cache blocks on the head dimension is what lets the
//! Dispatcher place different head groups of one request on different
//! devices, migrate groups independently, and free partially. The price is
//! more block-table entries per token — the paper measures a 13% storage
//! overhead (Fig. 15b), which the `store_ops` counters here and in the
//! paged allocator let us reproduce.

use crate::block::{BlockConfig, BlockId, SeqId};
use crate::paged::AllocError;
use std::collections::HashMap;

/// KV-head-group index within a layer (one KV head + its `r` query heads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u16);

#[derive(Debug, Clone, Default)]
struct GroupTable {
    blocks: Vec<BlockId>,
    tokens: u32,
}

/// Head-granular paged KV allocator for one device.
///
/// A block covers `block_size` tokens of *one* head group. The pool's
/// `num_blocks` should be sized so that
/// `num_blocks × block_bytes(one group)` equals the device's KV pool.
#[derive(Debug, Clone)]
pub struct HeadwiseAllocator {
    config: BlockConfig,
    free: Vec<BlockId>,
    tables: HashMap<(SeqId, GroupId), GroupTable>,
    /// Groups resident per sequence (maintained for O(groups) per-seq ops).
    groups: HashMap<SeqId, Vec<GroupId>>,
    /// Sharer count per block; 0 = free. A block is reclaimed only when
    /// its count returns to zero. Because blocks are per-group, sharing
    /// pins the sharer's head groups to this device — the shared block
    /// only caches *one* group's heads, so a hit is only a hit for a
    /// request whose matching group lands here.
    refs: Vec<u32>,
    store_ops: u64,
}

impl HeadwiseAllocator {
    /// A fresh pool.
    pub fn new(config: BlockConfig) -> Self {
        HeadwiseAllocator {
            config,
            free: (0..config.num_blocks).rev().map(BlockId).collect(),
            tables: HashMap::new(),
            groups: HashMap::new(),
            refs: vec![0; config.num_blocks as usize],
            store_ops: 0,
        }
    }

    /// Pops a free block with refcount 1, counting the table write.
    fn take_free(&mut self) -> BlockId {
        let b = self.free.pop().expect("free list checked by caller");
        debug_assert_eq!(self.refs[b.0 as usize], 0);
        self.refs[b.0 as usize] = 1;
        self.store_ops += 1;
        b
    }

    /// Drops one sharer; the block returns to the pool at refcount zero.
    /// Returns whether the block was reclaimed.
    fn release(&mut self, b: BlockId) -> bool {
        let r = &mut self.refs[b.0 as usize];
        debug_assert!(*r > 0, "releasing free block {b:?}");
        *r -= 1;
        if *r == 0 {
            self.free.push(b);
            true
        } else {
            false
        }
    }

    /// Pool geometry.
    pub fn config(&self) -> BlockConfig {
        self.config
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Blocks in use.
    pub fn used_blocks(&self) -> u32 {
        self.config.num_blocks - self.free_blocks()
    }

    /// Pool utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.config.num_blocks == 0 {
            0.0
        } else {
            self.used_blocks() as f64 / self.config.num_blocks as f64
        }
    }

    /// Whether `groups` head groups of `tokens` tokens each fit right now.
    pub fn can_allocate(&self, groups: u32, tokens: u32) -> bool {
        groups
            .checked_mul(self.config.blocks_for(tokens))
            .map(|need| need <= self.free_blocks())
            .unwrap_or(false)
    }

    /// Registers head groups of a sequence, each holding `tokens` tokens.
    /// All-or-nothing: on failure the pool is unchanged.
    pub fn allocate_groups(
        &mut self,
        seq: SeqId,
        groups: &[GroupId],
        tokens: u32,
    ) -> Result<(), AllocError> {
        let per_group = self.config.blocks_for(tokens);
        let need = per_group * groups.len() as u32;
        if need > self.free_blocks() {
            return Err(AllocError {
                requested: need,
                free: self.free_blocks(),
            });
        }
        for &g in groups {
            assert!(
                !self.tables.contains_key(&(seq, g)),
                "group {g:?} of {seq:?} already allocated"
            );
        }
        for &g in groups {
            let mut blocks = Vec::with_capacity(per_group as usize);
            for _ in 0..per_group {
                blocks.push(self.take_free());
            }
            self.tables.insert((seq, g), GroupTable { blocks, tokens });
            self.groups.entry(seq).or_default().push(g);
        }
        Ok(())
    }

    /// Registers head groups of a sequence whose leading blocks come from
    /// resident shared prefixes: `shared[i]` is the (possibly empty)
    /// shared-block list for `groups[i]`, its refcounts grow by one, and
    /// only cold tails cost free blocks. Because a shared block caches
    /// one specific head group's KV, a sequence admitted this way has
    /// those groups *pinned* to this device — the dispatcher must place
    /// them here to realize the hit. All-or-nothing on failure.
    pub fn allocate_groups_shared(
        &mut self,
        seq: SeqId,
        groups: &[GroupId],
        tokens: u32,
        shared: &[&[BlockId]],
    ) -> Result<(), AllocError> {
        assert_eq!(groups.len(), shared.len(), "one shared list per group");
        let per_group = self.config.blocks_for(tokens);
        let mut need = 0u32;
        for s in shared {
            assert!(
                s.len() as u32 <= per_group,
                "shared prefix of {} blocks exceeds the {per_group} a group needs",
                s.len()
            );
            need += per_group - s.len() as u32;
        }
        if need > self.free_blocks() {
            return Err(AllocError {
                requested: need,
                free: self.free_blocks(),
            });
        }
        for &g in groups {
            assert!(
                !self.tables.contains_key(&(seq, g)),
                "group {g:?} of {seq:?} already allocated"
            );
        }
        for (&g, s) in groups.iter().zip(shared) {
            let mut blocks = Vec::with_capacity(per_group as usize);
            for &b in *s {
                assert!(self.refs[b.0 as usize] > 0, "sharing free block {b:?}");
                self.refs[b.0 as usize] += 1;
                blocks.push(b);
            }
            for _ in 0..(per_group - s.len() as u32) {
                blocks.push(self.take_free());
            }
            self.tables.insert((seq, g), GroupTable { blocks, tokens });
            self.groups.entry(seq).or_default().push(g);
        }
        Ok(())
    }

    /// Copy-on-write: makes block `idx` of `(seq, group)` exclusively
    /// owned before a write. A shared block (refcount > 1) is replaced by
    /// a fresh private copy; an exclusive one is returned unchanged.
    pub fn write_block(
        &mut self,
        seq: SeqId,
        group: GroupId,
        idx: usize,
    ) -> Result<BlockId, AllocError> {
        let b = self
            .tables
            .get(&(seq, group))
            .expect("unknown group")
            .blocks[idx];
        if self.refs[b.0 as usize] <= 1 {
            return Ok(b);
        }
        if self.free_blocks() == 0 {
            return Err(AllocError {
                requested: 1,
                free: 0,
            });
        }
        let fresh = self.take_free();
        self.refs[b.0 as usize] -= 1;
        self.tables.get_mut(&(seq, group)).expect("present").blocks[idx] = fresh;
        Ok(fresh)
    }

    /// Sharers of a block (0 = free).
    pub fn ref_count(&self, b: BlockId) -> u32 {
        self.refs[b.0 as usize]
    }

    /// Appends one token to *every* resident group of `seq` (each decode
    /// step extends all groups of the request that live on this device).
    /// All-or-nothing per call.
    pub fn append_token_all_groups(&mut self, seq: SeqId) -> Result<(), AllocError> {
        let groups = self
            .groups
            .get(&seq)
            .cloned()
            .expect("unknown sequence on this device");
        // First pass: count needed blocks — a boundary crossing takes a
        // fresh block, and a shared tail needs a CoW copy (conservative
        // when groups alias the same tail block).
        let mut need = 0u32;
        for &g in &groups {
            let t = &self.tables[&(seq, g)];
            if t.tokens.is_multiple_of(self.config.block_size)
                || t.blocks.is_empty()
                || t.blocks
                    .last()
                    .is_some_and(|&b| self.refs[b.0 as usize] > 1)
            {
                need += 1;
            }
        }
        if need > self.free_blocks() {
            return Err(AllocError {
                requested: need,
                free: self.free_blocks(),
            });
        }
        for &g in &groups {
            let t = &self.tables[&(seq, g)];
            if t.tokens.is_multiple_of(self.config.block_size) || t.blocks.is_empty() {
                let b = self.take_free();
                self.tables
                    .get_mut(&(seq, g))
                    .expect("present")
                    .blocks
                    .push(b);
            } else {
                let idx = t.blocks.len() - 1;
                self.write_block(seq, g, idx)?;
            }
            self.tables.get_mut(&(seq, g)).expect("present").tokens += 1;
        }
        Ok(())
    }

    /// Grows *every* resident group of `seq` to hold `new_total` tokens
    /// (chunked prefill: the reservation follows completed chunks instead
    /// of paying the whole prompt at admission). All-or-nothing: on
    /// failure no group advanced and the pool is unchanged. Groups
    /// already at or past `new_total` are left alone.
    pub fn grow_tokens_all_groups(&mut self, seq: SeqId, new_total: u32) -> Result<(), AllocError> {
        let groups = self
            .groups
            .get(&seq)
            .cloned()
            .expect("unknown sequence on this device");
        let target_blocks = self.config.blocks_for(new_total);
        // First pass: count needed blocks across all groups — fresh tail
        // extensions plus CoW copies for growing groups whose partial
        // tail block is shared.
        let mut need = 0u32;
        for &g in &groups {
            let t = &self.tables[&(seq, g)];
            need += target_blocks.saturating_sub(t.blocks.len() as u32);
            if t.tokens < new_total
                && !t.tokens.is_multiple_of(self.config.block_size)
                && t.blocks
                    .last()
                    .is_some_and(|&b| self.refs[b.0 as usize] > 1)
            {
                need += 1;
            }
        }
        if need > self.free_blocks() {
            return Err(AllocError {
                requested: need,
                free: self.free_blocks(),
            });
        }
        for &g in &groups {
            let t = &self.tables[&(seq, g)];
            if t.tokens < new_total && !t.tokens.is_multiple_of(self.config.block_size) {
                let idx = t.blocks.len() - 1;
                self.write_block(seq, g, idx)?;
            }
            let add = target_blocks.saturating_sub(self.tables[&(seq, g)].blocks.len() as u32);
            for _ in 0..add {
                let b = self.take_free();
                self.tables
                    .get_mut(&(seq, g))
                    .expect("present")
                    .blocks
                    .push(b);
            }
            let t = self.tables.get_mut(&(seq, g)).expect("present");
            t.tokens = t.tokens.max(new_total);
        }
        Ok(())
    }

    /// Frees one head group of a sequence (e.g. after migrating it away).
    /// Returns the number of blocks reclaimed to the pool — shared blocks
    /// whose other sharers remain are released but not reclaimed.
    pub fn free_group(&mut self, seq: SeqId, group: GroupId) -> u32 {
        let Some(table) = self.tables.remove(&(seq, group)) else {
            return 0;
        };
        let mut n = 0;
        for b in table.blocks {
            if self.release(b) {
                n += 1;
            }
        }
        if let Some(gs) = self.groups.get_mut(&seq) {
            gs.retain(|&g| g != group);
            if gs.is_empty() {
                self.groups.remove(&seq);
            }
        }
        n
    }

    /// Frees every group of a sequence; returns blocks reclaimed to the
    /// pool (shared blocks with surviving sharers are not counted).
    pub fn free_seq(&mut self, seq: SeqId) -> u32 {
        let Some(groups) = self.groups.remove(&seq) else {
            return 0;
        };
        let mut released = 0;
        for g in groups {
            if let Some(table) = self.tables.remove(&(seq, g)) {
                for b in table.blocks {
                    if self.release(b) {
                        released += 1;
                    }
                }
            }
        }
        released
    }

    /// Groups of `seq` resident on this device (empty slice if none).
    pub fn groups_of(&self, seq: SeqId) -> &[GroupId] {
        self.groups.get(&seq).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Tokens cached for one group.
    pub fn tokens_of(&self, seq: SeqId, group: GroupId) -> Option<u32> {
        self.tables.get(&(seq, group)).map(|t| t.tokens)
    }

    /// Block list of one group, for index building.
    pub fn blocks_of(&self, seq: SeqId, group: GroupId) -> Option<&[BlockId]> {
        self.tables.get(&(seq, group)).map(|t| t.blocks.as_slice())
    }

    /// Sequences with at least one group here.
    pub fn sequences(&self) -> impl Iterator<Item = SeqId> + '_ {
        self.groups.keys().copied()
    }

    /// Cumulative block-table write operations.
    pub fn store_ops(&self) -> u64 {
        self.store_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(num_blocks: u32) -> HeadwiseAllocator {
        HeadwiseAllocator::new(BlockConfig {
            block_size: 16,
            num_blocks,
        })
    }

    fn groups(ids: &[u16]) -> Vec<GroupId> {
        ids.iter().map(|&i| GroupId(i)).collect()
    }

    #[test]
    fn partial_residency() {
        let mut a = alloc(100);
        // Request 1 keeps groups 0..4 here; groups 4..8 live elsewhere.
        a.allocate_groups(SeqId(1), &groups(&[0, 1, 2, 3]), 40)
            .unwrap();
        assert_eq!(a.used_blocks(), 4 * 3);
        assert_eq!(a.groups_of(SeqId(1)).len(), 4);
        assert_eq!(a.tokens_of(SeqId(1), GroupId(0)), Some(40));
        assert_eq!(a.tokens_of(SeqId(1), GroupId(7)), None);
    }

    #[test]
    fn append_extends_all_resident_groups() {
        let mut a = alloc(100);
        a.allocate_groups(SeqId(1), &groups(&[0, 1]), 16).unwrap();
        assert_eq!(a.used_blocks(), 2);
        a.append_token_all_groups(SeqId(1)).unwrap();
        // Both groups crossed the boundary → 2 new blocks.
        assert_eq!(a.used_blocks(), 4);
        assert_eq!(a.tokens_of(SeqId(1), GroupId(0)), Some(17));
        assert_eq!(a.tokens_of(SeqId(1), GroupId(1)), Some(17));
    }

    #[test]
    fn append_all_or_nothing_on_exhaustion() {
        let mut a = alloc(3);
        a.allocate_groups(SeqId(1), &groups(&[0, 1, 2]), 16)
            .unwrap();
        assert_eq!(a.free_blocks(), 0);
        let err = a.append_token_all_groups(SeqId(1)).unwrap_err();
        assert_eq!(err.requested, 3);
        // No group advanced.
        for g in 0..3 {
            assert_eq!(a.tokens_of(SeqId(1), GroupId(g)), Some(16));
        }
    }

    #[test]
    fn grow_tokens_extends_every_group() {
        let mut a = alloc(100);
        a.allocate_groups(SeqId(1), &groups(&[0, 1]), 16).unwrap();
        assert_eq!(a.used_blocks(), 2);
        a.grow_tokens_all_groups(SeqId(1), 40).unwrap(); // 3 blocks/group
        assert_eq!(a.used_blocks(), 6);
        assert_eq!(a.tokens_of(SeqId(1), GroupId(0)), Some(40));
        assert_eq!(a.tokens_of(SeqId(1), GroupId(1)), Some(40));
        // No-op growth.
        a.grow_tokens_all_groups(SeqId(1), 30).unwrap();
        assert_eq!(a.used_blocks(), 6);
        assert_eq!(a.tokens_of(SeqId(1), GroupId(0)), Some(40));
    }

    #[test]
    fn grow_tokens_all_or_nothing_on_exhaustion() {
        let mut a = alloc(4);
        a.allocate_groups(SeqId(1), &groups(&[0, 1]), 16).unwrap();
        let err = a.grow_tokens_all_groups(SeqId(1), 48).unwrap_err();
        assert_eq!(err.requested, 4);
        assert_eq!(err.free, 2);
        // No group advanced, the pool is unchanged.
        assert_eq!(a.tokens_of(SeqId(1), GroupId(0)), Some(16));
        assert_eq!(a.tokens_of(SeqId(1), GroupId(1)), Some(16));
        assert_eq!(a.free_blocks(), 2);
        a.grow_tokens_all_groups(SeqId(1), 32).unwrap();
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn free_group_releases_only_that_group() {
        let mut a = alloc(100);
        a.allocate_groups(SeqId(1), &groups(&[0, 1, 2]), 32)
            .unwrap();
        let released = a.free_group(SeqId(1), GroupId(1));
        assert_eq!(released, 2);
        assert_eq!(a.used_blocks(), 4);
        assert_eq!(a.groups_of(SeqId(1)), &[GroupId(0), GroupId(2)]);
        // Freeing the rest removes the sequence entirely.
        assert_eq!(a.free_seq(SeqId(1)), 4);
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.sequences().count(), 0);
    }

    #[test]
    fn allocation_atomic_on_failure() {
        let mut a = alloc(5);
        let err = a
            .allocate_groups(SeqId(1), &groups(&[0, 1, 2]), 32)
            .unwrap_err();
        assert_eq!(err.requested, 6);
        assert_eq!(a.free_blocks(), 5);
        assert!(a.groups_of(SeqId(1)).is_empty());
    }

    #[test]
    fn storage_overhead_vs_paged() {
        // The Fig. 15b storage effect: head-wise tables perform more block
        // writes than token-wise tables for the same logical cache.
        use crate::paged::PagedAllocator;
        let cfg_paged = BlockConfig {
            block_size: 16,
            num_blocks: 1000,
        };
        // Head-wise pool: 8 groups → blocks are 1/8 the bytes; same bytes
        // = 8x the blocks.
        let cfg_head = BlockConfig {
            block_size: 16,
            num_blocks: 8000,
        };
        let mut p = PagedAllocator::new(cfg_paged);
        let mut h = HeadwiseAllocator::new(cfg_head);
        let all_groups = groups(&[0, 1, 2, 3, 4, 5, 6, 7]);
        for s in 0..20u64 {
            p.allocate_seq(SeqId(s), 100).unwrap();
            h.allocate_groups(SeqId(s), &all_groups, 100).unwrap();
            for _ in 0..30 {
                p.append_token(SeqId(s)).unwrap();
                h.append_token_all_groups(SeqId(s)).unwrap();
            }
        }
        assert!(h.store_ops() > p.store_ops());
    }

    #[test]
    fn shared_groups_refcount_and_reclaim_at_zero() {
        let mut a = alloc(100);
        a.allocate_groups(SeqId(1), &groups(&[0, 1]), 32).unwrap(); // 2 blocks/group
        let g0: Vec<BlockId> = a.blocks_of(SeqId(1), GroupId(0)).unwrap().to_vec();
        let g1: Vec<BlockId> = a.blocks_of(SeqId(1), GroupId(1)).unwrap().to_vec();
        a.allocate_groups_shared(SeqId(2), &groups(&[0, 1]), 48, &[&g0, &g1])
            .unwrap();
        // 4 shared blocks counted once + 1 fresh tail per group.
        assert_eq!(a.used_blocks(), 6);
        assert_eq!(a.ref_count(g0[0]), 2);
        assert_eq!(a.ref_count(g1[1]), 2);
        // Freeing the first owner reclaims nothing: all blocks shared.
        assert_eq!(a.free_seq(SeqId(1)), 0);
        assert_eq!(a.used_blocks(), 6);
        assert_eq!(a.ref_count(g0[0]), 1);
        // The last sharer returns everything.
        assert_eq!(a.free_seq(SeqId(2)), 6);
        assert_eq!(a.used_blocks(), 0);
    }

    #[test]
    fn shared_alloc_charges_only_cold_tails() {
        let mut a = alloc(4);
        a.allocate_groups(SeqId(1), &groups(&[0]), 64).unwrap(); // all 4 blocks
        let g0: Vec<BlockId> = a.blocks_of(SeqId(1), GroupId(0)).unwrap().to_vec();
        // 6 blocks needed, 4 shared → 2 cold > 0 free.
        let err = a
            .allocate_groups_shared(SeqId(2), &groups(&[0]), 96, &[&g0])
            .unwrap_err();
        assert_eq!(err.requested, 2);
        assert_eq!(err.free, 0);
        assert_eq!(a.ref_count(g0[0]), 1);
        // Fully shared: free.
        a.allocate_groups_shared(SeqId(2), &groups(&[0]), 64, &[&g0])
            .unwrap();
        assert_eq!(a.used_blocks(), 4);
    }

    #[test]
    fn cow_isolates_writer_per_group() {
        let mut a = alloc(100);
        a.allocate_groups(SeqId(1), &groups(&[0]), 32).unwrap();
        let g0: Vec<BlockId> = a.blocks_of(SeqId(1), GroupId(0)).unwrap().to_vec();
        a.allocate_groups_shared(SeqId(2), &groups(&[0]), 32, &[&g0])
            .unwrap();
        let fresh = a.write_block(SeqId(2), GroupId(0), 1).unwrap();
        assert_ne!(fresh, g0[1]);
        assert_eq!(a.ref_count(g0[1]), 1);
        assert_eq!(a.blocks_of(SeqId(1), GroupId(0)).unwrap(), &g0[..]);
        // Idempotent once exclusive.
        assert_eq!(a.write_block(SeqId(2), GroupId(0), 1).unwrap(), fresh);
    }

    #[test]
    fn append_and_grow_copy_shared_tails() {
        let mut a = alloc(100);
        a.allocate_groups(SeqId(1), &groups(&[0, 1]), 24).unwrap(); // partial tails
        let g0: Vec<BlockId> = a.blocks_of(SeqId(1), GroupId(0)).unwrap().to_vec();
        let g1: Vec<BlockId> = a.blocks_of(SeqId(1), GroupId(1)).unwrap().to_vec();
        a.allocate_groups_shared(SeqId(2), &groups(&[0, 1]), 24, &[&g0, &g1])
            .unwrap();
        assert_eq!(a.used_blocks(), 4);
        a.append_token_all_groups(SeqId(2)).unwrap(); // CoW both tails
        assert_eq!(a.used_blocks(), 6);
        assert_ne!(a.blocks_of(SeqId(2), GroupId(0)).unwrap()[1], g0[1]);
        assert_eq!(a.tokens_of(SeqId(1), GroupId(0)), Some(24));
        assert_eq!(a.tokens_of(SeqId(2), GroupId(0)), Some(25));
        // Grow through a shared tail on a third sharer.
        a.allocate_groups_shared(SeqId(3), &groups(&[0]), 24, &[&g0])
            .unwrap();
        a.grow_tokens_all_groups(SeqId(3), 48).unwrap();
        assert_ne!(a.blocks_of(SeqId(3), GroupId(0)).unwrap()[1], g0[1]);
        assert_eq!(a.blocks_of(SeqId(1), GroupId(0)).unwrap(), &g0[..]);
        assert_eq!(a.tokens_of(SeqId(3), GroupId(0)), Some(48));
    }

    #[test]
    fn can_allocate_overflow_safe() {
        let a = alloc(10);
        assert!(!a.can_allocate(u32::MAX, u32::MAX));
    }
}
