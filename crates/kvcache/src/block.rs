//! Block primitives shared by both allocators.

/// Physical block id within one device's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Sequence (request) identifier as the cache layer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqId(pub u64);

/// Pool geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockConfig {
    /// Tokens per block (vLLM default 16; the paper keeps it).
    pub block_size: u32,
    /// Total blocks in the pool.
    pub num_blocks: u32,
}

impl BlockConfig {
    /// Blocks needed to hold `tokens` tokens.
    #[inline]
    pub fn blocks_for(&self, tokens: u32) -> u32 {
        tokens.div_ceil(self.block_size)
    }

    /// Capacity in tokens of the whole pool.
    #[inline]
    pub fn token_capacity(&self) -> u64 {
        self.block_size as u64 * self.num_blocks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_for_rounds_up() {
        let c = BlockConfig {
            block_size: 16,
            num_blocks: 100,
        };
        assert_eq!(c.blocks_for(0), 0);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(16), 1);
        assert_eq!(c.blocks_for(17), 2);
        assert_eq!(c.token_capacity(), 1600);
    }
}
