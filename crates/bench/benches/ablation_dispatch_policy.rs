//! Ablation A3: the dispatch LP vs naive head-placement policies.
//!
//! Compares, on one stage with mixed primaries and attention workers:
//! * the Eq. 7 LP (Hetis),
//! * proportional-to-speed greedy placement,
//! * static even split across all devices,
//!
//! scored by the ground-truth attention phase time each placement yields.

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::{attn_decode_time, AttnWork, GpuType};
use hetis_core::{Dispatcher, HetisConfig, Profiler};
use hetis_engine::{KvState, KvView, StageTopo};
use hetis_model::{llama_70b, KvFootprint};
use hetis_parallel::StageConfig;
use std::collections::HashMap;

fn main() {
    let cluster = paper_cluster();
    let model = llama_70b();
    let kvf = KvFootprint::new(&model);
    let mut kv = KvState::new(&cluster, &model, 16, &HashMap::new()).unwrap();
    let mut stage = StageTopo::plain(StageConfig {
        devices: cluster.devices_of_type(GpuType::A100),
        layers: 80,
    });
    stage.attention_workers = cluster.devices_of_type(GpuType::P100);
    let devices = stage.attention_devices();
    let dispatcher = Dispatcher::new(
        Profiler::profile(&cluster, 8, 0.0, 9),
        HetisConfig::default(),
    );

    // Background load on the primaries so the decision is non-trivial.
    for (k, &dev) in stage.primary.devices.iter().enumerate() {
        for q in 0..30u64 {
            kv.device_mut(dev)
                .allocate(
                    hetis_workload::RequestId(900 + k as u64 * 50 + q),
                    0,
                    8,
                    2500,
                    80,
                )
                .unwrap();
        }
    }

    let new_ctx = 2000u32;
    let n = devices.len();

    // Candidate placements for one new request (64 heads).
    let lp = dispatcher
        .dispatch(&cluster, &model, KvView::single(&kv), &stage, 0, &[new_ctx])
        .unwrap()
        .heads[0]
        .clone();
    let speeds: Vec<f64> = devices.iter().map(|&d| cluster.spec(d).attn_bw).collect();
    let speed_sum: f64 = speeds.iter().sum();
    let prop: Vec<u32> = {
        let frac: Vec<f64> = speeds.iter().map(|s| 64.0 * s / speed_sum).collect();
        hetis_lp::round_to_groups(&frac, 8, 64, &vec![64; n]).unwrap()
    };
    let even: Vec<u32> = {
        let frac = vec![64.0 / n as f64; n];
        hetis_lp::round_to_groups(&frac, 8, 64, &vec![64; n]).unwrap()
    };

    // Ground-truth attention phase under each placement (resident + new).
    let phase = |alloc: &[u32]| -> f64 {
        devices
            .iter()
            .zip(alloc)
            .map(|(&d, &heads)| {
                let resident_h = kv.device(d).stage_query_heads(0, 8) as f64;
                let resident_g = kv.device(d).stage_kv_bytes_per_layer(0);
                let new_g = (heads as u64 / 8) as f64
                    * new_ctx as f64
                    * kvf.bytes_per_token_per_layer_per_group() as f64;
                attn_decode_time(
                    cluster.spec(d),
                    AttnWork {
                        query_heads: resident_h + heads as f64,
                        kv_bytes: resident_g + new_g,
                    },
                )
            })
            .fold(0.0, f64::max)
    };

    println!("# A3: attention phase time (us/layer) by dispatch policy");
    println!("policy\tplacement\tphase_us");
    for (name, alloc) in [("lp", &lp), ("proportional", &prop), ("even", &even)] {
        println!("{name}\t{alloc:?}\t{:.2}", phase(alloc) * 1e6);
    }
}
