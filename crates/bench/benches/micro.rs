//! Criterion micro-benchmarks of the hot scheduling paths: the dispatch
//! LP, the ideal-time LP, head rounding, fetch-index assembly and
//! migration planning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_core::{Dispatcher, HetisConfig, Profiler};
use hetis_engine::{KvState, StageTopo};
use hetis_kvcache::index::build_headwise_index_serial;
use hetis_kvcache::{
    build_fetch_index_parallel, plan_migration, BlockConfig, GroupId, HeadwiseAllocator, Placement,
    SeqId,
};
use hetis_lp::{round_to_groups, AffineExpr, ConstraintOp, MinMaxBuilder};
use hetis_model::llama_70b;
use hetis_parallel::StageConfig;
use std::collections::HashMap;

fn bench_lp(c: &mut Criterion) {
    c.bench_function("lp_minmax_6dev_4req", |b| {
        b.iter(|| {
            let n = 6;
            let j = 4;
            let nv = n * j;
            let mut builder = MinMaxBuilder::new(nv);
            for i in 0..n {
                let speed = 1.0 + i as f64 * 0.5;
                let mut coeffs = vec![0.0; nv];
                for jj in 0..j {
                    coeffs[jj * n + i] = speed * (1.0 + jj as f64 * 0.1);
                }
                builder.add_max_term(AffineExpr {
                    constant: 0.01 * i as f64,
                    coeffs,
                });
                let mut cap = vec![0.0; nv];
                for jj in 0..j {
                    cap[jj * n + i] = 1.0;
                }
                builder.add_constraint(cap, ConstraintOp::Le, 100.0);
            }
            for jj in 0..j {
                let mut row = vec![0.0; nv];
                for i in 0..n {
                    row[jj * n + i] = 1.0;
                }
                builder.add_constraint(row, ConstraintOp::Eq, 64.0);
            }
            builder.solve().unwrap()
        })
    });

    c.bench_function("round_to_groups_8dev", |b| {
        let x = vec![10.3, 7.7, 12.1, 5.9, 8.0, 6.4, 9.6, 4.0];
        let cap = vec![64u32; 8];
        b.iter(|| round_to_groups(&x, 8, 64, &cap).unwrap())
    });
}

fn bench_dispatch(c: &mut Criterion) {
    let cluster = paper_cluster();
    let model = llama_70b();
    let mut kv = KvState::new(&cluster, &model, 16, &HashMap::new()).unwrap();
    let mut stage = StageTopo::plain(StageConfig {
        devices: cluster.devices_of_type(GpuType::A100),
        layers: 80,
    });
    stage.attention_workers = cluster.devices_of_type(GpuType::P100);
    for (k, &dev) in stage.primary.devices.iter().enumerate() {
        for q in 0..25u64 {
            kv.device_mut(dev)
                .allocate(
                    hetis_workload::RequestId(k as u64 * 100 + q),
                    0,
                    8,
                    2000,
                    80,
                )
                .unwrap();
        }
    }
    let dispatcher = Dispatcher::new(
        Profiler::profile(&cluster, 8, 0.0, 3),
        HetisConfig::default(),
    );

    c.bench_function("dispatch_eq7_batch4", |b| {
        b.iter(|| {
            dispatcher
                .dispatch(&cluster, &model, &kv, &stage, 0, &[512, 1024, 2048, 300])
                .unwrap()
        })
    });
    c.bench_function("ideal_attention_time", |b| {
        b.iter(|| {
            dispatcher
                .ideal_attention_time(&cluster, &model, &kv, &stage, 0)
                .unwrap()
        })
    });
}

fn bench_kvcache(c: &mut Criterion) {
    let cfg = BlockConfig {
        block_size: 16,
        num_blocks: 200_000,
    };
    let mut alloc = HeadwiseAllocator::new(cfg);
    let groups: Vec<GroupId> = (0..8).map(GroupId).collect();
    let mut items = Vec::new();
    for s in 0..256u64 {
        alloc.allocate_groups(SeqId(s), &groups, 600).unwrap();
        for &g in &groups {
            items.push((SeqId(s), g));
        }
    }
    c.bench_function("fetch_index_serial_2048items", |b| {
        b.iter(|| build_headwise_index_serial(&alloc, &items).total_slots())
    });
    c.bench_function("fetch_index_parallel_2048items", |b| {
        b.iter(|| build_fetch_index_parallel(&alloc, &items).total_slots())
    });

    c.bench_function("plan_migration_64groups", |b| {
        b.iter_batched(
            || {
                (
                    Placement::from_counts(&[40, 24]),
                    Placement::from_counts(&[24, 24, 16]),
                )
            },
            |(old, new)| plan_migration(&old, &new),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_lp, bench_dispatch, bench_kvcache);
criterion_main!(benches);
