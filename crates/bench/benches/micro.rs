//! Criterion micro-benchmarks of the hot scheduling paths: the dispatch
//! solvers (water-fill fast path vs the simplex oracle, at the paper's
//! 6-device × 4-request shape and a 12×16 stress shape), the ideal-time
//! relaxation, head rounding, fetch-index assembly and migration
//! planning.
//!
//! `BENCH_4.json` at the repository root records the old-vs-new numbers
//! for the dispatch pairs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_core::{DispatchSolver, Dispatcher, HetisConfig, Profiler};
use hetis_engine::{KvState, KvView, StageTopo};
use hetis_kvcache::index::build_headwise_index_serial;
use hetis_kvcache::{
    build_fetch_index_parallel, plan_migration, BlockConfig, GroupId, HeadwiseAllocator, Placement,
    SeqId,
};
use hetis_lp::{
    round_to_groups, AffineExpr, ConstraintOp, MinMaxBuilder, WaterFill, WfDemand, WfDevice,
    WfOutcome,
};
use hetis_model::llama_70b;
use hetis_parallel::StageConfig;
use std::collections::HashMap;

/// Builds the shared Eq.-(7)-shaped instance (`n` devices × `j`
/// requests) as the generic epigraph LP. `cap` keeps the 6×4 shape
/// bit-identical to the historical `lp_minmax_6dev_4req` instance while
/// staying non-binding on the stress shape.
fn minmax_instance(n: usize, j: usize, cap_rhs: f64) -> MinMaxBuilder {
    let nv = n * j;
    let mut builder = MinMaxBuilder::new(nv);
    for i in 0..n {
        let speed = 1.0 + i as f64 * 0.5;
        let mut coeffs = vec![0.0; nv];
        for jj in 0..j {
            coeffs[jj * n + i] = speed * (1.0 + jj as f64 * 0.1);
        }
        builder.add_max_term(AffineExpr {
            constant: 0.01 * i as f64,
            coeffs,
        });
        let mut cap = vec![0.0; nv];
        for jj in 0..j {
            cap[jj * n + i] = 1.0;
        }
        builder.add_constraint(cap, ConstraintOp::Le, cap_rhs);
    }
    for jj in 0..j {
        let mut row = vec![0.0; nv];
        for i in 0..n {
            row[jj * n + i] = 1.0;
        }
        builder.add_constraint(row, ConstraintOp::Eq, 64.0);
    }
    builder
}

/// The same instance posed structurally for the water-fill solver.
fn waterfill_instance(wf: &mut WaterFill, n: usize, j: usize, cap_rhs: f64) {
    wf.clear();
    for i in 0..n {
        let speed = 1.0 + i as f64 * 0.5;
        wf.push_device(WfDevice {
            constant: 0.01 * i as f64,
            alpha: speed,
            beta: speed,
            capacity: cap_rhs,
        });
    }
    for jj in 0..j {
        // speed·(1 + 0.1·jj) = α·p + β·q with p + q = 1 + 0.1·jj.
        wf.push_demand(WfDemand {
            amount: 64.0,
            p: 1.0,
            q: 0.1 * jj as f64,
            u: 1.0,
        });
    }
}

fn bench_lp(c: &mut Criterion) {
    for (n, j, cap_rhs, old_id, new_id) in [
        (6, 4, 100.0, "lp_minmax_6dev_4req", "lp_waterfill_6dev_4req"),
        (
            12,
            16,
            1600.0,
            "lp_minmax_12dev_16req",
            "lp_waterfill_12dev_16req",
        ),
    ] {
        c.bench_function(old_id, |b| {
            b.iter(|| minmax_instance(n, j, cap_rhs).solve().unwrap())
        });
        let mut wf = WaterFill::new();
        // The two solvers must agree before the timings mean anything.
        waterfill_instance(&mut wf, n, j, cap_rhs);
        let WfOutcome::Solved(s) = wf.solve() else {
            panic!("{new_id}: fast path must engage on the bench shape");
        };
        let lp = minmax_instance(n, j, cap_rhs).solve().unwrap();
        assert!(
            (s.max_value - lp.max_value).abs() <= 1e-6 * lp.max_value.abs().max(1.0),
            "{new_id}: solvers disagree: {} vs {}",
            s.max_value,
            lp.max_value
        );
        c.bench_function(new_id, |b| {
            b.iter(|| {
                waterfill_instance(&mut wf, n, j, cap_rhs);
                match wf.solve() {
                    WfOutcome::Solved(s) => s.max_value,
                    other => panic!("fast path lost: {other:?}"),
                }
            })
        });
    }

    c.bench_function("round_to_groups_8dev", |b| {
        let x = vec![10.3, 7.7, 12.1, 5.9, 8.0, 6.4, 9.6, 4.0];
        let cap = vec![64u32; 8];
        b.iter(|| round_to_groups(&x, 8, 64, &cap).unwrap())
    });
}

fn bench_dispatch(c: &mut Criterion) {
    let cluster = paper_cluster();
    let model = llama_70b();
    let mut kv = KvState::new(&cluster, &model, 16, &HashMap::new()).unwrap();
    let mut stage = StageTopo::plain(StageConfig {
        devices: cluster.devices_of_type(GpuType::A100),
        layers: 80,
    });
    stage.attention_workers = cluster.devices_of_type(GpuType::P100);
    for (k, &dev) in stage.primary.devices.iter().enumerate() {
        for q in 0..25u64 {
            kv.device_mut(dev)
                .allocate(
                    hetis_workload::RequestId(k as u64 * 100 + q),
                    0,
                    8,
                    2000,
                    80,
                )
                .unwrap();
        }
    }
    let simplex_cfg = HetisConfig {
        solver: DispatchSolver::Simplex,
        ..HetisConfig::default()
    };
    let simplex = Dispatcher::new(Profiler::profile(&cluster, 8, 0.0, 3), simplex_cfg);
    // HetisConfig::default() selects the water-fill fast path.
    let waterfill = Dispatcher::new(
        Profiler::profile(&cluster, 8, 0.0, 3),
        HetisConfig::default(),
    );

    // Dispatcher-level old-vs-new on the identical stage and batch.
    c.bench_function("dispatch_eq7_batch4", |b| {
        b.iter(|| {
            simplex
                .dispatch(
                    &cluster,
                    &model,
                    KvView::single(&kv),
                    &stage,
                    0,
                    &[512, 1024, 2048, 300],
                )
                .unwrap()
        })
    });
    c.bench_function("dispatch_waterfill_6dev_4req", |b| {
        b.iter(|| {
            waterfill
                .dispatch(
                    &cluster,
                    &model,
                    KvView::single(&kv),
                    &stage,
                    0,
                    &[512, 1024, 2048, 300],
                )
                .unwrap()
        });
        // Smoke assertion for CI quick mode: the fast path must actually
        // have run (zero fallbacks would silently re-time the simplex).
        let (fast, slow) = waterfill.solver_counts();
        assert!(
            fast > 0 && slow == 0,
            "water-fill fast path did not engage: fast={fast} slow={slow}"
        );
    });
    c.bench_function("ideal_attention_time", |b| {
        b.iter(|| {
            waterfill
                .ideal_attention_time(&cluster, &model, KvView::single(&kv), &stage, 0)
                .unwrap()
        })
    });
    c.bench_function("ideal_attention_time_simplex", |b| {
        b.iter(|| {
            simplex
                .ideal_attention_time(&cluster, &model, KvView::single(&kv), &stage, 0)
                .unwrap()
        })
    });
}

fn bench_kvcache(c: &mut Criterion) {
    let cfg = BlockConfig {
        block_size: 16,
        num_blocks: 200_000,
    };
    let mut alloc = HeadwiseAllocator::new(cfg);
    let groups: Vec<GroupId> = (0..8).map(GroupId).collect();
    let mut items = Vec::new();
    for s in 0..256u64 {
        alloc.allocate_groups(SeqId(s), &groups, 600).unwrap();
        for &g in &groups {
            items.push((SeqId(s), g));
        }
    }
    c.bench_function("fetch_index_serial_2048items", |b| {
        b.iter(|| build_headwise_index_serial(&alloc, &items).total_slots())
    });
    c.bench_function("fetch_index_parallel_2048items", |b| {
        b.iter(|| build_fetch_index_parallel(&alloc, &items).total_slots())
    });

    c.bench_function("plan_migration_64groups", |b| {
        b.iter_batched(
            || {
                (
                    Placement::from_counts(&[40, 24]),
                    Placement::from_counts(&[24, 24, 16]),
                )
            },
            |(old, new)| plan_migration(&old, &new),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_lp, bench_dispatch, bench_kvcache);
criterion_main!(benches);
