//! Table 1: memory capacity and whole-model iteration time per GPU type.
//!
//! Paper reference (OPT-2.7B, prefill batch 3, decode batch 25):
//! A100 80 GB 0.060 s / 0.0097 s; 3090 24 GB 0.147 s / 0.0143 s;
//! P100 12 GB 1.47 s / 0.077 s.

use hetis_cluster::calib::table1;
use hetis_cluster::{
    attn_decode_time, attn_prefill_time, dense_decode_time, dense_prefill_time, AttnWork,
    DenseWork, DeviceSpec, GpuType,
};
use hetis_model::{opt_2_7b, ModuleCosts};

fn whole_model_times(spec: &DeviceSpec) -> (f64, f64) {
    let m = opt_2_7b();
    let costs = ModuleCosts::new(&m);
    let lm_bytes = (m.vocab_size * m.hidden_size * m.dtype.bytes()) as f64;

    let pf_tokens = table1::PREFILL_REQUESTS * table1::SEQ_LEN;
    let pf_dense = DenseWork {
        flops: costs.dense_flops_total(pf_tokens),
        weight_bytes: m.weight_bytes_per_layer() as f64,
    };
    let pf_attn = table1::PREFILL_REQUESTS as f64 * costs.attn_prefill_flops(table1::SEQ_LEN);
    let prefill = (dense_prefill_time(spec, pf_dense, 3) + attn_prefill_time(spec, pf_attn))
        * m.num_layers as f64
        + lm_bytes / spec.decode_stream_bw;

    let n = table1::DECODE_REQUESTS;
    let dc_dense = DenseWork {
        flops: costs.dense_flops_total(n),
        weight_bytes: m.weight_bytes_per_layer() as f64,
    };
    let dc_attn = AttnWork {
        query_heads: (n * m.num_heads as u64) as f64,
        kv_bytes: n as f64 * costs.attn_decode_kv_bytes(m.num_heads as u64, table1::SEQ_LEN),
    };
    let decode = (dense_decode_time(spec, dc_dense, 3) + attn_decode_time(spec, dc_attn))
        * m.num_layers as f64
        + lm_bytes / spec.decode_stream_bw;
    (prefill, decode)
}

fn main() {
    println!("# Table 1: memory and iteration time across GPUs (OPT-2.7B)");
    println!("device\tmemory_gb\tprefill_s\tdecode_s\tpaper_prefill_s\tpaper_decode_s");
    let rows = [
        (GpuType::A100, table1::A100),
        (GpuType::Rtx3090, table1::R3090),
        (GpuType::P100, table1::P100),
    ];
    let mut measured = Vec::new();
    for (gpu, (ref_pf, ref_dc)) in rows {
        let spec = DeviceSpec::of(gpu);
        let (pf, dc) = whole_model_times(&spec);
        measured.push((pf, dc));
        println!(
            "{gpu}\t{}\t{pf:.4}\t{dc:.5}\t{ref_pf}\t{ref_dc}",
            spec.mem_bytes / 1_000_000_000
        );
    }
    let (a_pf, a_dc) = measured[0];
    println!("\n# ratios vs A100 (paper: prefill 1 / 2.45 / 24.5, decode 1 / 1.47 / 7.93)");
    println!("device\tprefill_ratio\tdecode_ratio");
    for ((gpu, _), (pf, dc)) in rows.iter().zip(&measured) {
        println!("{gpu}\t{:.2}\t{:.2}", pf / a_pf, dc / a_dc);
    }
}
