//! Ablation A1: attention-split granularity — head-wise vs sequence-wise
//! vs request-wise (extends Fig. 5 with the batch-dimension option §4.2
//! rejects).
//!
//! Reports per-layer steady-state communication plus the rebalancing
//! migration cost each granularity pays when one request must move.

use hetis_cluster::{AlphaBeta, LinkKind};
use hetis_core::split::{
    headwise_overhead, requestwise_migration_bytes, requestwise_overhead, seqwise_overhead,
};
use hetis_model::{llama_13b, llama_70b, opt_30b};

fn main() {
    let lan = AlphaBeta::of(LinkKind::InterHost);
    let batch = 128u64;

    println!("# A1: per-layer comm overhead (ms) by split granularity, 50% offload, 2 workers");
    println!("model\theadwise\tseqwise\trequestwise");
    for m in [llama_13b(), opt_30b(), llama_70b()] {
        println!(
            "{}\t{:.4}\t{:.4}\t{:.4}",
            m.name,
            headwise_overhead(&m, lan, batch, 0.5, 2) * 1e3,
            seqwise_overhead(&m, lan, batch, 0.5, 2) * 1e3,
            requestwise_overhead(&m, lan, batch, 0.5, 2) * 1e3,
        );
    }

    println!("\n# A1: rebalancing cost — bytes moved when one request shifts 25% of its load");
    println!("model\tcontext\theadwise_mb\trequestwise_mb");
    for m in [llama_13b(), llama_70b()] {
        for &ctx in &[1000u64, 4000] {
            // Head-wise moves 1/4 of the head groups' KV; request-wise
            // must move the whole cache.
            let full = requestwise_migration_bytes(&m, ctx);
            println!(
                "{}\t{ctx}\t{:.1}\t{:.1}",
                m.name,
                full * 0.25 / 1e6,
                full / 1e6
            );
        }
    }
    println!("\n# Takeaway: head-wise pays the least steady-state traffic at partial offload");
    println!("# and supports partial (cheap) rebalancing; request-wise has low steady traffic");
    println!("# but catastrophic migration cost; seq-wise replicates q everywhere.");
}
