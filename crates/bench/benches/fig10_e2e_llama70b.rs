//! Fig. 10: end-to-end normalized latency vs request rate, Llama-70B
//! (the GQA model).

use hetis_bench::run_e2e_figure;
use hetis_model::llama_70b;
use hetis_workload::DatasetKind;

fn main() {
    let model = llama_70b();
    run_e2e_figure(
        "fig10",
        &model,
        &[
            (DatasetKind::ShareGpt, &[1.0, 2.0, 3.0]),
            (DatasetKind::HumanEval, &[3.0, 6.0, 9.0, 12.0]),
            (DatasetKind::LongBench, &[0.4, 0.8, 1.2, 1.6]),
        ],
    );
}
