//! Ablation A4: victim policy under memory exhaustion — Hetis's
//! memory-aware re-dispatching vs plain LIFO vs device-local LRU.

use hetis_bench::Scale;
use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_core::redispatch::VictimMode;
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::{run, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_sim::percentile;
use hetis_workload::{DatasetKind, Poisson, TraceBuilder};

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_13b();
    // Memory-tight layout: one A100 primary, two 3090 workers.
    let a100 = cluster.devices_of_type(GpuType::A100)[0];
    let r3090 = cluster.devices_of_type(GpuType::Rtx3090);
    let mut stage = StageTopo::plain(StageConfig {
        devices: vec![a100],
        layers: model.num_layers,
    });
    stage.attention_workers = vec![r3090[0], r3090[2]];
    let topo = Topology {
        instances: vec![InstanceTopo {
            stages: vec![stage],
            role: InstanceRole::Both,
        }],
    };
    let horizon = match scale {
        Scale::Quick => 40.0,
        Scale::Full => 120.0,
    };
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 177).build(&Poisson::new(10.0), horizon);
    let cfg = EngineConfig {
        drain_timeout: 300.0,
        ..EngineConfig::default()
    };

    println!("# A4: victim policy comparison (ShareGPT rate 10, tight memory)");
    println!("victim_policy\tmean_norm\tp95_norm\tpreemptions\tmigrations\tcompleted");
    for (label, mode) in [
        ("hetis-redispatch", VictimMode::Hetis),
        ("plain-lifo", VictimMode::PlainLifo),
        ("lru-on-device", VictimMode::LruOnDevice),
    ] {
        let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 64);
        let policy = HetisPolicy::new(HetisConfig::default(), profile)
            .with_fixed_topology(topo.clone())
            .with_victim_mode(mode);
        let report = run(policy, &cluster, &model, cfg.clone(), &trace);
        let lat = report.normalized_latencies();
        println!(
            "{label}\t{:.4}\t{:.4}\t{}\t{}\t{}",
            report.mean_normalized_latency(),
            percentile(&lat, 95.0).unwrap_or(f64::INFINITY),
            report.preemptions,
            report.migrations,
            report.completed.len()
        );
    }
}
