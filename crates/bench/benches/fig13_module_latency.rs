//! Fig. 13: P95 per-module latency contribution (max stage time × stage
//! count) for MLP and Attention during decoding, Llama-70B, at the Fig. 12
//! rates.
//!
//! Paper shape: Hetis cuts MLP latency up to 1.29× (biggest on HumanEval,
//! the decode-heaviest workload) and Attention latency up to 1.49×.

use hetis_bench::{bench_trace, run_system, Scale, System};
use hetis_cluster::cluster::paper_cluster;
use hetis_model::llama_70b;
use hetis_workload::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_70b();
    println!("# Fig. 13: P95 decode module latency contributions (ms), Llama-70B");
    println!("dataset\trate\tsystem\tp95_mlp_ms\tp95_attn_ms");
    for (dataset, rate) in [
        (DatasetKind::ShareGpt, 1.5),
        (DatasetKind::HumanEval, 6.0),
        (DatasetKind::LongBench, 0.8),
    ] {
        let trace = bench_trace(dataset, rate, scale.horizon());
        for system in System::ALL {
            let report = run_system(system, &cluster, &model, dataset, &trace);
            println!(
                "{}\t{rate}\t{}\t{:.3}\t{:.3}",
                dataset.abbrev(),
                system.name(),
                report.p95_mlp() * 1e3,
                report.p95_attn() * 1e3
            );
        }
    }
}
