//! Fig. 9: end-to-end normalized latency vs request rate, OPT-30B.

use hetis_bench::run_e2e_figure;
use hetis_model::opt_30b;
use hetis_workload::DatasetKind;

fn main() {
    let model = opt_30b();
    run_e2e_figure(
        "fig9",
        &model,
        &[
            (DatasetKind::ShareGpt, &[3.0, 6.0, 9.0, 12.0]),
            (DatasetKind::HumanEval, &[15.0, 30.0, 45.0]),
            (DatasetKind::LongBench, &[2.0, 4.0, 6.0]),
        ],
    );
}
