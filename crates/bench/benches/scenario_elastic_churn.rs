//! Elastic churn scenario: a seeded preemption storm revokes every
//! attention-class GPU while the request rate spikes, then the capacity
//! rejoins. Compares Hetis with live re-planning (`hetis+elastic`)
//! against the no-replan ablation (`hetis+frozen`) and the static
//! baselines, including Helix's max-flow-planned routing.
//!
//! Prints one TSV row per system plus a determinism check (same seed run
//! twice ⇒ identical `RunReport` digest). Exits non-zero if the elastic
//! controller does not sustain a strictly lower p99 normalized latency
//! than the frozen baseline.

use hetis_baselines::{HelixPolicy, HexgenPolicy, SplitwisePolicy};
use hetis_bench::{
    bench_engine_config, bench_hetis_config, bench_profile_for, f, tsv_header, Scale,
};
use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_elastic::{elastic_hetis, frozen_hetis, ChurnScenario};
use hetis_engine::RunReport;
use hetis_model::llama_70b;
use hetis_workload::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_70b();
    let dataset = DatasetKind::ShareGpt;
    let profile = bench_profile_for(dataset, &cluster, &model);
    let horizon = match scale {
        Scale::Quick => 60.0,
        Scale::Full => 180.0,
    };
    let storm_start = horizon / 3.0;

    // Every P100 (the attention-worker class for Llama-70B) receives a
    // preemption notice inside a 5 s window; capacity rejoins 20 s after
    // revocation; the arrival rate spikes 2× during the storm.
    let scenario = ChurnScenario::preemption_storm(
        &cluster,
        dataset,
        4242,
        2.0,
        horizon,
        GpuType::P100,
        storm_start,
        5.0,
        10.0,
        Some(20.0),
        2.0,
    );

    let cfg = bench_engine_config();
    let run_named = |which: &str| -> RunReport {
        match which {
            "hetis+elastic" => scenario.run(
                elastic_hetis(bench_hetis_config(), profile),
                &cluster,
                &model,
                cfg.clone(),
            ),
            "hetis+frozen" => scenario.run(
                frozen_hetis(bench_hetis_config(), profile),
                &cluster,
                &model,
                cfg.clone(),
            ),
            "hexgen" => scenario.run(HexgenPolicy::new(), &cluster, &model, cfg.clone()),
            "splitwise" => scenario.run(SplitwisePolicy::new(), &cluster, &model, cfg.clone()),
            "helix" => scenario.run(HelixPolicy::new(), &cluster, &model, cfg.clone()),
            _ => unreachable!(),
        }
    };

    tsv_header(&[
        "scenario",
        "system",
        "completed",
        "unfinished",
        "mean_norm_lat",
        "p99_norm_lat",
        "p95_ttft_s",
        "preempts",
        "churn_evicts",
        "lost_tokens",
        "replans",
        "replan_lat_s",
        "migrated_gb",
    ]);

    let mut p99_elastic = f64::INFINITY;
    let mut p99_frozen = f64::INFINITY;
    for which in [
        "hetis+elastic",
        "hetis+frozen",
        "hexgen",
        "splitwise",
        "helix",
    ] {
        let wall_start = std::time::Instant::now();
        let report = run_named(which);
        let wall = wall_start.elapsed().as_secs_f64();
        // Engine-speed line (machine-dependent; digests pin behavior).
        println!(
            "elastic_storm\tsim-throughput\t{which}\tsim_s={}\twall_s={}\tsim_per_wall={}\tevents={}\tevents_per_s={}",
            f(report.duration),
            f(wall),
            f(report.duration / wall),
            report.events_processed,
            f(report.events_processed as f64 / wall),
        );
        // Behavior digest per system — the CI gate pins all of these
        // under both HETIS_DISPATCH_SOLVER modes.
        println!(
            "elastic_storm\tbehavior-digest\t{which}\t{:016x}",
            report.digest()
        );
        let p99 = report.p99_normalized_latency();
        match which {
            "hetis+elastic" => p99_elastic = p99,
            "hetis+frozen" => p99_frozen = p99,
            _ => {}
        }
        println!(
            "elastic_storm\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            report.policy,
            report.completed.len(),
            report.unfinished,
            f(report.mean_normalized_latency()),
            f(p99),
            f(report.p95_ttft()),
            report.preemptions,
            report.churn_evictions,
            report.lost_tokens,
            report.replans.len(),
            f(report.total_replan_latency()),
            f(report.migrated_bytes / 1e9),
        );
    }

    // Determinism: the same seed reproduces the full report bit-for-bit.
    let a = run_named("hetis+elastic");
    let b = run_named("hetis+elastic");
    let deterministic = a.digest() == b.digest();
    println!(
        "elastic_storm\tdeterminism\tdigest_a={:016x}\tdigest_b={:016x}\t{}",
        a.digest(),
        b.digest(),
        if deterministic {
            "IDENTICAL"
        } else {
            "DIVERGED"
        }
    );

    assert!(deterministic, "same seed must reproduce the run");
    assert!(
        p99_elastic < p99_frozen,
        "elastic re-planning must beat the frozen baseline under the storm: \
         p99 elastic {p99_elastic} vs frozen {p99_frozen}"
    );
}
