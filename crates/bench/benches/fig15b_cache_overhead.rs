//! Fig. 15b: overhead of head-wise cache management vs vLLM-style
//! token-wise management — real data structures, real wall time.
//!
//! Paper shape: storage operations increase by ~13% (more block-table
//! writes at head granularity), while fetch-index construction *drops*
//! ~26% thanks to multi-core block indexing.

use hetis_kvcache::index::build_headwise_index_serial;
use hetis_kvcache::{
    build_fetch_index_parallel, build_fetch_index_serial, BlockConfig, GroupId, HeadwiseAllocator,
    PagedAllocator, SeqId,
};
use std::time::Instant;

const SEQS: u64 = 512;
const GROUPS: u16 = 8;
const TOKENS: u32 = 700;
const DECODE_STEPS: u32 = 100;
const REPS: usize = 30;

fn main() {
    // Same logical cache in both layouts: head-wise blocks are 1/GROUPS
    // the bytes, so the pool has GROUPS× the block count.
    let paged_cfg = BlockConfig {
        block_size: 16,
        num_blocks: 64_000,
    };
    let head_cfg = BlockConfig {
        block_size: 16,
        num_blocks: 64_000 * GROUPS as u32,
    };

    let mut paged = PagedAllocator::new(paged_cfg);
    let mut head = HeadwiseAllocator::new(head_cfg);
    let group_ids: Vec<GroupId> = (0..GROUPS).map(GroupId).collect();
    for s in 0..SEQS {
        paged.allocate_seq(SeqId(s), TOKENS).unwrap();
        head.allocate_groups(SeqId(s), &group_ids, TOKENS).unwrap();
    }
    for _ in 0..DECODE_STEPS {
        for s in 0..SEQS {
            paged.append_token(SeqId(s)).unwrap();
            head.append_token_all_groups(SeqId(s)).unwrap();
        }
    }

    println!("# Fig. 15b: head-wise vs token-wise cache management");
    println!(
        "storage_ops\tpaged={}\theadwise={}\tratio={:.2}",
        paged.store_ops(),
        head.store_ops(),
        head.store_ops() as f64 / paged.store_ops() as f64
    );

    // Fetch-index build: vLLM serial vs Hetis parallel (and Hetis serial
    // as the no-multicore ablation).
    let seqs: Vec<SeqId> = (0..SEQS).map(SeqId).collect();
    let items: Vec<(SeqId, GroupId)> = (0..SEQS)
        .flat_map(|s| (0..GROUPS).map(move |g| (SeqId(s), GroupId(g))))
        .collect();

    let timed = |f: &mut dyn FnMut() -> usize| {
        let t0 = Instant::now();
        let mut total = 0;
        for _ in 0..REPS {
            total += f();
        }
        (t0.elapsed().as_secs_f64() / REPS as f64, total)
    };

    let (t_paged, _) = timed(&mut || build_fetch_index_serial(&paged, &seqs).total_slots());
    let (t_head_serial, _) =
        timed(&mut || build_headwise_index_serial(&head, &items).total_slots());
    let (t_head_par, _) = timed(&mut || build_fetch_index_parallel(&head, &items).total_slots());

    println!(
        "fetch_index_build_ms\tvllm_serial={:.3}\theadwise_serial={:.3}\theadwise_parallel={:.3}",
        t_paged * 1e3,
        t_head_serial * 1e3,
        t_head_par * 1e3
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "fetch_ratio_vs_vllm\t{:.2} (paper: 0.74 on a many-core server)\tparallel_speedup\t{:.2} on {cores} cores",
        t_head_par / t_paged,
        t_head_serial / t_head_par
    );
    println!(
        "# note: head-wise indexing does {}x the per-token table work; the paper's 0.74x",
        GROUPS
    );
    println!("# fetch time relies on multi-core parallelization (>=8 cores) to overcome it.");
}
