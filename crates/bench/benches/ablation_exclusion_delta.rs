//! Ablation A2: the exclusion threshold Δ — sweep from 0 (keep every GPU
//! as primary, HexGen-like) to large (aggressively shed low-end GPUs into
//! the attention pool) and measure end-to-end latency.
//!
//! The paper fixes Δ = 0.05; this ablation shows the basin around it.

use hetis_bench::{bench_trace, Scale};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::{search_topology, HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::{run, EngineConfig};
use hetis_model::llama_70b;
use hetis_workload::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_70b();
    let dataset = DatasetKind::ShareGpt;
    let trace = bench_trace(dataset, 2.0, scale.horizon());
    let ecfg = EngineConfig {
        drain_timeout: 240.0,
        ..EngineConfig::default()
    };

    println!("# A2: exclusion threshold sweep (Llama-70B, ShareGPT rate 2)");
    println!("delta\tattention_workers\tnorm_latency\tp95_ttft\tcompleted");
    for &delta in &[0.0, 0.02, 0.05, 0.15, 0.5] {
        let cfg = HetisConfig {
            delta,
            ..HetisConfig::default()
        };
        let profile = WorkloadProfile::from_dataset(dataset, 128);
        let search = search_topology(&cluster, &model, &profile, &cfg);
        let workers = search.attention_workers.len();
        let policy = HetisPolicy::new(cfg, profile);
        let report = run(policy, &cluster, &model, ecfg.clone(), &trace);
        println!(
            "{delta}\t{workers}\t{:.4}\t{:.3}\t{}",
            report.mean_normalized_latency(),
            report.p95_ttft(),
            report.completed.len()
        );
    }
}
