//! Fig. 15a: benefit of memory-aware re-dispatching vs plain LIFO
//! eviction (ShareGPT at rate 10, Llama-13B).
//!
//! Paper shape: mean / P95 normalized output latency improve by 1.06× /
//! 1.14× when re-dispatching replaces LIFO on memory-exhausted devices.
//!
//! To make memory pressure real at rate 5, the run uses the Fig. 14
//! single-A100 + 3090-workers layout (small pooled cache).

use hetis_bench::Scale;
use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_core::redispatch::VictimMode;
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::{run, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_sim::percentile;
use hetis_workload::{DatasetKind, Poisson, TraceBuilder};

fn topo(cluster: &hetis_cluster::Cluster, layers: u32) -> Topology {
    let a100 = cluster.devices_of_type(GpuType::A100)[0];
    let r3090 = cluster.devices_of_type(GpuType::Rtx3090);
    let mut stage = StageTopo::plain(StageConfig {
        devices: vec![a100],
        layers,
    });
    stage.attention_workers = vec![r3090[0], r3090[2]];
    Topology {
        instances: vec![InstanceTopo {
            stages: vec![stage],
            role: InstanceRole::Both,
        }],
    }
}

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_13b();
    let horizon = match scale {
        Scale::Quick => 40.0,
        Scale::Full => 120.0,
    };
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 155).build(&Poisson::new(10.0), horizon);
    let cfg = EngineConfig {
        drain_timeout: 300.0,
        ..EngineConfig::default()
    };

    println!("# Fig. 15a: re-dispatching vs LIFO (ShareGPT rate 10, tight memory)");
    println!("policy\tmean_norm_latency\tp95_norm_latency\tpreemptions\tmigrations\tcompleted");
    for (label, mode) in [
        ("hetis", VictimMode::Hetis),
        ("lifo", VictimMode::PlainLifo),
    ] {
        let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 64);
        let policy = HetisPolicy::new(HetisConfig::default(), profile)
            .with_fixed_topology(topo(&cluster, model.num_layers))
            .with_victim_mode(mode);
        let report = run(policy, &cluster, &model, cfg.clone(), &trace);
        let lat = report.normalized_latencies();
        println!(
            "{label}\t{:.4}\t{:.4}\t{}\t{}\t{}",
            report.mean_normalized_latency(),
            percentile(&lat, 95.0).unwrap_or(f64::INFINITY),
            report.preemptions,
            report.migrations,
            report.completed.len()
        );
    }
}
