//! §7.4 "Modeling accuracy": how well the Profiler's 8×8-grid fits
//! predict computation and transfer times on held-out configurations.
//!
//! Accuracy is measured the way the paper measures it — prediction vs.
//! *measured* time on the (jittery) device, so the run-to-run variance of
//! real kernels bounds the attainable score.
//!
//! Paper reference: computation prediction accuracy up to 93.8%; transfer
//! accuracy 92.4–96.1%.

use hetis_cluster::cluster::paper_cluster;
use hetis_core::Profiler;

/// Run-to-run kernel variance assumed for both profiling and held-out
/// measurements (±8%, typical of real attention kernels under contention).
const MEASUREMENT_NOISE: f64 = 0.08;

fn main() {
    let cluster = paper_cluster();
    let profiler = Profiler::profile(&cluster, 8, MEASUREMENT_NOISE, 2025);
    let attn = profiler.attn_accuracy_measured(&cluster, 6, MEASUREMENT_NOISE, 31);
    let link = profiler.link_accuracy_measured(&cluster, 8, MEASUREMENT_NOISE, 37);

    println!("# Modeling accuracy per device (paper: comp up to 93.8%, transfer 92.4-96.1%)");
    println!("device\tgpu\tattention_acc_pct\ttransfer_acc_pct");
    for (d, (a, l)) in cluster.devices().iter().zip(attn.iter().zip(&link)) {
        println!(
            "{}\t{}\t{:.1}\t{:.1}",
            d.id,
            d.spec.gpu,
            a * 100.0,
            l * 100.0
        );
    }
    let mean_a = attn.iter().sum::<f64>() / attn.len() as f64;
    let mean_l = link.iter().sum::<f64>() / link.len() as f64;
    println!("mean\t-\t{:.1}\t{:.1}", mean_a * 100.0, mean_l * 100.0);
}
