//! Fig. 7: the three empirical properties behind the linear attention
//! model (OPT-30B, one layer on the measured device, as the Profiler
//! sees it):
//!   (a) time is independent of request count at fixed heads + cache,
//!   (b) time grows linearly with cache size,
//!   (c) time grows linearly with head count.
//!
//! We run the simulated attention kernel with profiling-style measurement
//! noise and print the same three series (per-layer microseconds; the
//! paper's absolute axis depends on its TP sharding, the shapes are the
//! reproduction target).

use hetis_cluster::{attn_decode_time, AttnWork, DeviceSpec, GpuType};
use hetis_sim::SplitMix64;

fn main() {
    let spec = DeviceSpec::of(GpuType::A100);
    let mut noise = SplitMix64::new(77);

    // Baseline composition: 25k query heads over 500 MB of per-layer KV.
    let base_heads = 25_000.0;
    let base_cache = 500e6;

    println!("# Fig. 7a: requests vary, total heads+cache fixed (one layer)");
    println!("requests\tattention_us");
    for &n in &[400u64, 500, 600, 700] {
        // The kernel has no request term: composition does not matter.
        let t = attn_decode_time(
            &spec,
            AttnWork {
                query_heads: base_heads,
                kv_bytes: base_cache,
            },
        ) * noise.jitter(0.02);
        println!("{n}\t{:.2}", t * 1e6);
    }

    println!("\n# Fig. 7b: average context length varies (cache scales with it)");
    println!("avg_context\tattention_us");
    for &ctx in &[900u64, 1000, 1100, 1200] {
        let t = attn_decode_time(
            &spec,
            AttnWork {
                query_heads: base_heads,
                kv_bytes: base_cache * ctx as f64 / 1000.0,
            },
        ) * noise.jitter(0.02);
        println!("{ctx}\t{:.2}", t * 1e6);
    }

    println!("\n# Fig. 7c: head count varies, cache fixed");
    println!("heads_k\tattention_us");
    for &heads_k in &[15u64, 25, 35, 45] {
        let t = attn_decode_time(
            &spec,
            AttnWork {
                query_heads: heads_k as f64 * 1000.0,
                kv_bytes: base_cache,
            },
        ) * noise.jitter(0.02);
        println!("{heads_k}\t{:.2}", t * 1e6);
    }
}
