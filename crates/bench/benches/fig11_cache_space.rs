//! Fig. 11: maximum available KV cache space (GB) during inference, by
//! model × dataset × system.
//!
//! Paper shape: Hetis always exposes the largest pooled cache (up to
//! 1.87×); Splitwise wastes memory on replicated parameters; HexGen's
//! asymmetric split strands capacity.

use hetis_bench::{bench_engine_config, bench_trace, run_system, Scale, System};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::run;
use hetis_model::ModelId;
use hetis_workload::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    println!("# Fig. 11: usable KV cache space (GB) by model x dataset x system");
    println!("# (bottleneck-stage-limited capacity; prefill-only pools excluded)");
    println!("model\tdataset\tsystem\tusable_cache_gb\traw_pool_gb");
    // A light probe trace: cache *capacity* depends on placement, not
    // load, so the shortest run suffices.
    let horizon = match scale {
        Scale::Quick => 5.0,
        Scale::Full => 15.0,
    };
    for model_id in ModelId::eval_models() {
        let model = model_id.spec();
        for dataset in DatasetKind::ALL {
            let trace = bench_trace(dataset, 1.0, horizon);
            for system in System::ALL {
                let report = run_system(system, &cluster, &model, dataset, &trace);
                println!(
                    "{model_id}\t{}\t{}\t{:.1}\t{:.1}",
                    dataset.abbrev(),
                    system.name(),
                    report.usable_kv_bytes as f64 / 1e9,
                    report.total_kv_pool_bytes as f64 / 1e9
                );
            }
            // Supplementary: Hetis with a capacity-priority R (60% of
            // best-case pool) — the single-replica layout the paper's
            // Fig. 11 reflects. The default Hetis rows above size R at
            // compute-feasible load and may rationally prefer a
            // lower-latency multi-replica layout on some cells.
            let cap_profile = WorkloadProfile::for_cluster(dataset, &cluster, &model, 0.6);
            let policy = HetisPolicy::new(HetisConfig::default(), cap_profile);
            let report = run(policy, &cluster, &model, bench_engine_config(), &trace);
            println!(
                "{model_id}\t{}\thetis(capacity-R)\t{:.1}\t{:.1}",
                dataset.abbrev(),
                report.usable_kv_bytes as f64 / 1e9,
                report.total_kv_pool_bytes as f64 / 1e9
            );
        }
    }
}
