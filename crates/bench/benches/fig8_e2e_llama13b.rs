//! Fig. 8: end-to-end normalized latency vs request rate, Llama-13B,
//! across ShareGPT / HumanEval / LongBench and all three systems.

use hetis_bench::run_e2e_figure;
use hetis_model::llama_13b;
use hetis_workload::DatasetKind;

fn main() {
    let model = llama_13b();
    run_e2e_figure(
        "fig8",
        &model,
        &[
            (DatasetKind::ShareGpt, &[3.0, 6.0, 9.0, 12.0, 15.0]),
            (DatasetKind::HumanEval, &[15.0, 30.0, 45.0, 60.0, 75.0]),
            (DatasetKind::LongBench, &[3.0, 6.0, 9.0]),
        ],
    );
}
