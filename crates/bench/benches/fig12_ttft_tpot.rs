//! Fig. 12: P95 TTFT and TPOT across datasets, Llama-70B, at the paper's
//! fixed unsaturated rates (SG 1.5, HE 6, LB 0.8 req/s).
//!
//! Paper shape: Hetis improves P95 TTFT by up to 1.22×/1.47× over
//! HexGen/Splitwise and TPOT by up to 1.39×.

use hetis_bench::{bench_trace, run_system, Scale, System};
use hetis_cluster::cluster::paper_cluster;
use hetis_model::llama_70b;
use hetis_workload::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_70b();
    println!("# Fig. 12: P95 TTFT / TPOT (s), Llama-70B");
    println!("dataset\trate\tsystem\tp95_ttft_s\tp95_tpot_s");
    for (dataset, rate) in [
        (DatasetKind::ShareGpt, 1.5),
        (DatasetKind::HumanEval, 6.0),
        (DatasetKind::LongBench, 0.8),
    ] {
        let trace = bench_trace(dataset, rate, scale.horizon());
        for system in System::ALL {
            let report = run_system(system, &cluster, &model, dataset, &trace);
            println!(
                "{}\t{rate}\t{}\t{:.4}\t{:.5}",
                dataset.abbrev(),
                system.name(),
                report.p95_ttft(),
                report.p95_tpot()
            );
        }
    }
}
