//! Fig. 2: decode MLP and Attention time of one Llama-70B layer across
//! GPUs, vs request count (sequence length 1000).
//!
//! Paper shape: the MLP gap P100/A100 grows toward 30–40× with batch;
//! the Attention gap stays in the narrow 2–5× band — opportunity O2.

use hetis_cluster::{
    attn_decode_time, dense_decode_time, AttnWork, DenseWork, DeviceSpec, GpuType,
};
use hetis_model::{llama_70b, DenseOp, ModuleCosts};

fn main() {
    let m = llama_70b();
    let costs = ModuleCosts::new(&m);
    let seq = 1000u64;
    let devices = [GpuType::P100, GpuType::Rtx3090, GpuType::A100];

    println!("# Fig. 2a: decode MLP time of one layer, normalized to A100");
    println!("requests\tP100\t3090\tA100\tP100_norm\t3090_norm");
    for &n in &[20u64, 100, 200, 300, 400] {
        let work = DenseWork {
            flops: costs.dense_flops(DenseOp::Mlp, n),
            weight_bytes: costs.dense_weight_bytes(DenseOp::Mlp) as f64,
        };
        let t: Vec<f64> = devices
            .iter()
            .map(|&g| dense_decode_time(&DeviceSpec::of(g), work, 1))
            .collect();
        println!(
            "{n}\t{:.6}\t{:.6}\t{:.6}\t{:.2}\t{:.2}",
            t[0],
            t[1],
            t[2],
            t[0] / t[2],
            t[1] / t[2]
        );
    }

    println!("\n# Fig. 2b: decode Attention time of one layer, normalized to A100");
    println!("requests\tP100\t3090\tA100\tP100_norm\t3090_norm");
    for &n in &[20u64, 100, 200, 300, 400] {
        let work = AttnWork {
            query_heads: (n * m.num_heads as u64) as f64,
            kv_bytes: n as f64 * costs.attn_decode_kv_bytes(m.num_heads as u64, seq),
        };
        let t: Vec<f64> = devices
            .iter()
            .map(|&g| attn_decode_time(&DeviceSpec::of(g), work))
            .collect();
        println!(
            "{n}\t{:.6}\t{:.6}\t{:.6}\t{:.2}\t{:.2}",
            t[0],
            t[1],
            t[2],
            t[0] / t[2],
            t[1] / t[2]
        );
    }
}
