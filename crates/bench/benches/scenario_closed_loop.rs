//! Closed-loop control scenario: the burst-storm SLO mix from
//! `scenario_slo_mix`, served by the fused-microbatch system, with the
//! telemetry feedback loop closed. Three systems:
//!
//! * `chunked-alternating` — chunked+priority with the alternating
//!   prefill/decode loop (the PR 5 TTFT champion; its digest must equal
//!   the pinned `slo_mix` chunked+priority digest).
//! * `open-loop` — fused+priority behind the elastic wrapper with the
//!   windowed telemetry bus attached but `closed_loop: None`; its digest
//!   must equal the pinned `slo_mix` fused+priority digest (wrapper and
//!   bus are both digest-neutral).
//! * `closed-loop` — the same system with the `ClosedLoopController`
//!   driving scale proposals, best-effort throttling, and chunk pacing
//!   off the windowed percentiles.
//!
//! Exits non-zero unless the closed loop beats the open loop on
//! interactive p99 TTFT at equal-or-better goodput, pacing pulls fused
//! p99 TTFT down to (or under) the alternating loop's while keeping the
//! fused TPOT win, at least one action actually fired, and every digest
//! reproduces bit-for-bit across a same-seed rerun.

use hetis_bench::{bench_engine_config, bench_hetis_config, bench_profile_for, f, tsv_header};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::HetisPolicy;
use hetis_elastic::elastic_hetis;
use hetis_engine::{run, AdmissionPolicy, ClosedLoopConfig, RunReport};
use hetis_model::llama_13b;
use hetis_telemetry::TelemetryConfig;
use hetis_workload::{multi_tenant_trace, DatasetKind, SloClass, TenantId, TenantSpec};

fn main() {
    let cluster = paper_cluster();
    let model = llama_13b();

    // Same two tenants and seed as scenario_slo_mix: chat turns at
    // 6 req/s tripling inside a 10 s burst against 2 req/s long-prompt
    // summarization. The burst is the control problem — windows breach
    // only while demand transiently exceeds capacity.
    let specs = [
        TenantSpec::steady(
            TenantId(0),
            DatasetKind::ShareGpt,
            SloClass::Interactive,
            6.0,
        )
        .with_burst(20.0, 10.0, 3.0),
        TenantSpec::steady(TenantId(1), DatasetKind::LongBench, SloClass::Batch, 2.0),
    ];
    let trace = multi_tenant_trace(&specs, 4242, 60.0);

    let profile = bench_profile_for(DatasetKind::ShareGpt, &cluster, &model);
    let run_named = |which: &str| -> RunReport {
        let mut cfg = bench_engine_config();
        cfg.prefill_chunk_tokens = Some(512);
        cfg.admission = AdmissionPolicy::SloSlack;
        match which {
            "chunked-alternating" => {
                // Plain policy, no bus: must reproduce the slo_mix
                // chunked+priority pin.
                return run(
                    HetisPolicy::new(bench_hetis_config(), profile),
                    &cluster,
                    &model,
                    cfg,
                    &trace,
                );
            }
            "open-loop" => {
                cfg.fused_microbatches = true;
                // 15 s windows, 250 ms control ticks: the feedback loop's
                // reaction time is one tick past the first breaching
                // window, so the tick period bounds how much burst
                // backlog accrues before pacing engages.
                cfg.telemetry = Some(TelemetryConfig {
                    window_secs: 15.0,
                    sample_period: 0.25,
                    ..TelemetryConfig::default()
                });
            }
            "closed-loop" => {
                cfg.fused_microbatches = true;
                cfg.telemetry = Some(TelemetryConfig {
                    window_secs: 15.0,
                    sample_period: 0.25,
                    ..TelemetryConfig::default()
                });
                cfg.closed_loop = Some(ClosedLoopConfig::default());
            }
            _ => unreachable!(),
        }
        run(
            elastic_hetis(bench_hetis_config(), profile),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };

    tsv_header(&[
        "scenario",
        "system",
        "class",
        "completed",
        "slo_met",
        "attainment",
        "p99_ttft_s",
        "p95_ttft_s",
        "p95_tpot_s",
        "goodput_tok_s",
    ]);

    let mut p99_interactive = std::collections::HashMap::new();
    let mut mean_tpot_interactive = std::collections::HashMap::new();
    let mut goodput = std::collections::HashMap::new();
    let mut reports = std::collections::HashMap::new();
    for which in ["chunked-alternating", "open-loop", "closed-loop"] {
        let wall_start = std::time::Instant::now();
        let report = run_named(which);
        let wall = wall_start.elapsed().as_secs_f64();
        println!(
            "closed_loop\tsim-throughput\t{which}\tsim_s={}\twall_s={}\tsim_per_wall={}\tevents={}\tevents_per_s={}",
            f(report.duration),
            f(wall),
            f(report.duration / wall),
            report.events_processed,
            f(report.events_processed as f64 / wall),
        );
        // Control line: the actuation tally — what the loop actually did.
        println!(
            "closed_loop\tcontrol\t{which}\tactions={}\tscale_out={}\tscale_in={}\tthrottle_on={}\tpace_on={}\treplans={}",
            report.control_log.len(),
            report.scale_out_proposals(),
            report.scale_in_proposals(),
            report.throttle_engagements(),
            report.pace_engagements(),
            report.replans.len(),
        );
        for r in &report.control_log {
            println!(
                "closed_loop\taction\t{which}\tt={}\t{}",
                f(r.time),
                r.action.kind()
            );
        }
        println!(
            "closed_loop\tbehavior-digest\t{which}\t{:016x}",
            report.digest()
        );
        let tpots: Vec<f64> = report
            .completed
            .iter()
            .filter(|c| c.class == SloClass::Interactive && c.output_len > 1)
            .map(|c| c.tpot())
            .collect();
        println!(
            "closed_loop\tcadence\t{which}\tmean_interactive_tpot={}",
            f(tpots.iter().sum::<f64>() / tpots.len().max(1) as f64)
        );
        for s in report.class_stats() {
            println!(
                "closed_loop\t{which}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                s.class,
                s.completed,
                s.slo_met,
                f(s.attainment()),
                f(s.p99_ttft),
                f(s.p95_ttft),
                f(s.p95_tpot),
                f(s.goodput_tokens as f64 / report.duration),
            );
        }
        p99_interactive.insert(which, report.p99_ttft_of_class(SloClass::Interactive));
        mean_tpot_interactive.insert(which, tpots.iter().sum::<f64>() / tpots.len().max(1) as f64);
        goodput.insert(which, report.goodput());
        reports.insert(which, report);
    }

    // Determinism: the closed loop's actuation sequence replays
    // bit-for-bit — same digest, same control log.
    let a = &reports["closed-loop"];
    let b = run_named("closed-loop");
    let deterministic = a.digest() == b.digest() && a.control_log == b.control_log;
    println!(
        "closed_loop\tdeterminism\tdigest_a={:016x}\tdigest_b={:016x}\t{}",
        a.digest(),
        b.digest(),
        if deterministic {
            "IDENTICAL"
        } else {
            "DIVERGED"
        }
    );
    assert!(
        deterministic,
        "same seed must replay the actuation sequence"
    );

    // The loop must have closed: at least one action fired, and the
    // open-loop run took none.
    assert!(
        !reports["closed-loop"].control_log.is_empty(),
        "the storm must engage the controller"
    );
    assert!(
        reports["open-loop"].control_log.is_empty(),
        "the open loop must not log control actions"
    );

    // Feedback must pay: better interactive tail latency at
    // equal-or-better in-SLO goodput than the same system open loop.
    assert!(
        p99_interactive["closed-loop"] < p99_interactive["open-loop"],
        "closing the loop must cut interactive p99 TTFT: {} vs {}",
        p99_interactive["closed-loop"],
        p99_interactive["open-loop"]
    );
    assert!(
        goodput["closed-loop"] >= goodput["open-loop"],
        "closing the loop must not cost goodput: {} vs {}",
        goodput["closed-loop"],
        goodput["open-loop"]
    );
    // Pacing closes fusion's TTFT gap: fused p99 TTFT lands at or under
    // the alternating loop's, while fusion's decode-cadence win stands.
    assert!(
        p99_interactive["closed-loop"] <= p99_interactive["chunked-alternating"],
        "paced fusion must match the alternating loop's p99 TTFT: {} vs {}",
        p99_interactive["closed-loop"],
        p99_interactive["chunked-alternating"]
    );
    assert!(
        mean_tpot_interactive["closed-loop"] < mean_tpot_interactive["chunked-alternating"],
        "paced fusion must keep the TPOT win: {} vs {}",
        mean_tpot_interactive["closed-loop"],
        mean_tpot_interactive["chunked-alternating"]
    );
}
