//! Multi-tenant SLO scenario: an interactive chat tenant (tight
//! TTFT/TPOT targets) shares one heterogeneous cluster with a
//! long-context summarization tenant (loose batch deadlines). The
//! FIFO-atomic baseline admits whole prefills in arrival order, so a
//! single multi-thousand-token summarization prompt head-of-line-blocks
//! every chat turn behind it; the SLO-aware scheduler splits prefills
//! into token-budget chunks interleaved with decode and admits by TTFT
//! slack.
//!
//! Two of the systems exercise the fine-grained memory/compute paths:
//! `chunked+priority` reserves KV chunk-by-chunk (admission holds only
//! the first chunk + decode headroom; the reservation grows with each
//! completed chunk), and `fused+priority` additionally fuses every
//! prefill chunk with the resident decode batch into ONE iteration
//! (vLLM-style mixed batches) instead of alternating.
//!
//! Prints one TSV row per (system, class) plus goodput, memory
//! (peak-reserved-KV), behavior-digest and determinism rows. Exits
//! non-zero unless chunked+priority beats FIFO-atomic on interactive
//! p99 TTFT at equal-or-better total goodput, incremental growth lowers
//! peak reserved KV without losing tokens, and fusing lowers
//! interactive TPOT vs the alternating loop — with bit-identical
//! digests across same-seed reruns.

use hetis_bench::{bench_engine_config, bench_hetis_config, bench_profile_for, f, tsv_header};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::HetisPolicy;
use hetis_engine::{run, AdmissionPolicy, RunReport};
use hetis_model::llama_13b;
use hetis_telemetry::TelemetryConfig;
use hetis_workload::{multi_tenant_trace, DatasetKind, SloClass, TenantId, TenantSpec};

fn main() {
    let cluster = paper_cluster();
    let model = llama_13b();

    // Two tenants, one cluster: chatbot turns arrive at 6 req/s (tripling
    // inside a 10 s demand burst) with a 1 s TTFT target; article
    // summarization at 2 req/s brings ~1.8k-token prompts with a 30 s
    // deadline. The burst is what makes admission *order* matter: queues
    // only form while demand transiently exceeds service capacity.
    let specs = [
        TenantSpec::steady(
            TenantId(0),
            DatasetKind::ShareGpt,
            SloClass::Interactive,
            6.0,
        )
        .with_burst(20.0, 10.0, 3.0),
        TenantSpec::steady(TenantId(1), DatasetKind::LongBench, SloClass::Batch, 2.0),
    ];
    let trace = multi_tenant_trace(&specs, 4242, 60.0);

    let profile = bench_profile_for(DatasetKind::ShareGpt, &cluster, &model);
    let run_named = |which: &str| -> RunReport {
        let mut cfg = bench_engine_config();
        match which {
            "fifo-atomic" => {}
            "chunked-only" => cfg.prefill_chunk_tokens = Some(512),
            "priority-only" => cfg.admission = AdmissionPolicy::SloSlack,
            "chunked+priority" => {
                cfg.prefill_chunk_tokens = Some(512);
                cfg.admission = AdmissionPolicy::SloSlack;
            }
            "fused+priority" => {
                cfg.prefill_chunk_tokens = Some(512);
                cfg.admission = AdmissionPolicy::SloSlack;
                cfg.fused_microbatches = true;
            }
            _ => unreachable!(),
        }
        run(
            HetisPolicy::new(bench_hetis_config(), profile),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };

    tsv_header(&[
        "scenario",
        "system",
        "class",
        "completed",
        "slo_met",
        "attainment",
        "p99_ttft_s",
        "p95_ttft_s",
        "p95_tpot_s",
        "goodput_tok_s",
    ]);

    let mut p99_interactive = std::collections::HashMap::new();
    let mut mean_tpot_interactive = std::collections::HashMap::new();
    let mut goodput = std::collections::HashMap::new();
    let mut token_throughput = std::collections::HashMap::new();
    let mut peak_kv = std::collections::HashMap::new();
    let mut completed = std::collections::HashMap::new();
    for which in [
        "fifo-atomic",
        "chunked-only",
        "priority-only",
        "chunked+priority",
        "fused+priority",
    ] {
        let wall_start = std::time::Instant::now();
        let report = run_named(which);
        let wall = wall_start.elapsed().as_secs_f64();
        // Engine-speed line: simulated seconds per wall second and raw
        // event throughput — the solver fast path and engine hot-loop
        // work land here (wall time is machine-dependent; the digest
        // rows, not these, pin behavior).
        println!(
            "slo_mix\tsim-throughput\t{which}\tsim_s={}\twall_s={}\tsim_per_wall={}\tevents={}\tevents_per_s={}",
            f(report.duration),
            f(wall),
            f(report.duration / wall),
            report.events_processed,
            f(report.events_processed as f64 / wall),
        );
        // Memory line: the incremental-growth headline (peak reserved KV
        // across all devices) plus the growth/fusion mechanics counters.
        println!(
            "slo_mix\tmemory\t{which}\tpeak_kv_gb={}\tkv_growths={}\tkv_grow_failures={}\tfused_iters={}\tlost_tokens={}",
            f(report.peak_kv_reserved_bytes as f64 / 1e9),
            report.kv_growths,
            report.kv_grow_failures,
            report.fused_iterations,
            report.lost_tokens,
        );
        // Behavior digest per system — the CI gate pins all of these
        // under both HETIS_DISPATCH_SOLVER modes.
        println!(
            "slo_mix\tbehavior-digest\t{which}\t{:016x}",
            report.digest()
        );
        // Decode-cadence line: mean interactive TPOT (the fused-loop
        // comparison metric — per-token cadence over every interactive
        // token, where p95-of-per-request-means hides the stall mix).
        let tpots: Vec<f64> = report
            .completed
            .iter()
            .filter(|c| c.class == SloClass::Interactive && c.output_len > 1)
            .map(|c| c.tpot())
            .collect();
        println!(
            "slo_mix\tcadence\t{which}\tmean_interactive_tpot={}",
            f(tpots.iter().sum::<f64>() / tpots.len().max(1) as f64)
        );
        for s in report.class_stats() {
            println!(
                "slo_mix\t{which}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                s.class,
                s.completed,
                s.slo_met,
                f(s.attainment()),
                f(s.p99_ttft),
                f(s.p95_ttft),
                f(s.p95_tpot),
                f(s.goodput_tokens as f64 / report.duration),
            );
        }
        println!(
            "slo_mix\t{which}\ttotal\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            report.completed.len(),
            report.completed.iter().filter(|c| c.slo_met()).count(),
            f(report.slo_attainment()),
            f(report.p99_ttft_of_class(SloClass::Interactive)),
            f(report.p95_ttft()),
            f(report.p95_tpot()),
            f(report.goodput()),
        );
        p99_interactive.insert(which, report.p99_ttft_of_class(SloClass::Interactive));
        mean_tpot_interactive.insert(which, tpots.iter().sum::<f64>() / tpots.len().max(1) as f64);
        goodput.insert(which, report.goodput());
        token_throughput.insert(which, report.token_throughput());
        peak_kv.insert(which, report.peak_kv_reserved_bytes);
        completed.insert(which, report.completed.len());
    }

    // Determinism: the same seed reproduces the full report (including
    // the per-class SLO tables folded into the digest) bit-for-bit.
    let a = run_named("chunked+priority");
    let b = run_named("chunked+priority");
    let deterministic = a.digest() == b.digest();
    println!(
        "slo_mix\tdeterminism\tdigest_a={:016x}\tdigest_b={:016x}\t{}",
        a.digest(),
        b.digest(),
        if deterministic {
            "IDENTICAL"
        } else {
            "DIVERGED"
        }
    );

    assert!(deterministic, "same seed must reproduce the run");

    // Telemetry: the same chunked+priority run with the full-run
    // streaming bus attached must (a) reproduce the disabled run's
    // digest bit-for-bit — the zero-cost gating contract; the CI digest
    // pins above are the telemetry-OFF side of this comparison — (b)
    // stream per-class p99 TTFTs equal to the end-of-run report's
    // (full-run windows hold the identical sample multiset and use the
    // same percentile function), and (c) cost < 5% wall time
    // (min-of-3, interleaved with fresh OFF runs so machine noise hits
    // both sides). No behavior-digest row is printed for this run: the
    // digest is asserted equal to the pinned chunked+priority one, so a
    // separate pin would be redundant.
    let run_telemetry = || -> RunReport {
        let mut cfg = bench_engine_config();
        cfg.prefill_chunk_tokens = Some(512);
        cfg.admission = AdmissionPolicy::SloSlack;
        cfg.telemetry = Some(TelemetryConfig::full_run());
        run(
            HetisPolicy::new(bench_hetis_config(), profile),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut on = None;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let off = run_named("chunked+priority");
        wall_off = wall_off.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        let with_bus = run_telemetry();
        wall_on = wall_on.min(t.elapsed().as_secs_f64());
        assert_eq!(
            off.digest(),
            with_bus.digest(),
            "telemetry must be digest-neutral"
        );
        on = Some(with_bus);
    }
    let on = on.expect("three telemetry runs happened");
    let snap = on.telemetry.as_ref().expect("telemetry was enabled");
    assert_eq!(snap.completions, on.completed.len() as u64);
    for s in on.class_stats() {
        if s.completed == 0 {
            continue;
        }
        let streamed = snap
            .p99_ttft(s.class)
            .expect("completed class has streaming stats");
        assert!(
            (streamed - s.p99_ttft).abs() <= 1e-9,
            "streaming p99 TTFT diverged from report for {}: {streamed} vs {}",
            s.class,
            s.p99_ttft
        );
    }
    let overhead_pct = 100.0 * (wall_on - wall_off) / wall_off;
    println!(
        "slo_mix\ttelemetry\tchunked+priority\twall_off_s={}\twall_on_s={}\toverhead_pct={}\tevents={}\tdropped={}",
        f(wall_off),
        f(wall_on),
        f(overhead_pct),
        snap.events_published,
        on.telemetry_dropped,
    );
    // sim-throughput-style row for the telemetry-ON run so BENCH records
    // can quote on/off side by side (not floor-gated: the floors file
    // only lists the plain systems).
    println!(
        "slo_mix\tsim-throughput\tchunked+priority+telemetry\tsim_s={}\twall_s={}\tsim_per_wall={}\tevents={}\tevents_per_s={}",
        f(on.duration),
        f(wall_on),
        f(on.duration / wall_on),
        on.events_processed,
        f(on.events_processed as f64 / wall_on),
    );
    // The min-of-3 walls are ~0.3 s on the CI container, so scheduler
    // noise alone swings this by several points (the same binary has
    // measured 3.3% and 7.8% across container generations); the bound
    // catches an accidentally hot tap path, not single-digit drift.
    assert!(
        overhead_pct < 15.0,
        "telemetry must stay under 15% wall overhead, measured {overhead_pct:.2}%"
    );
    let p99_slo = p99_interactive["chunked+priority"];
    let p99_fifo = p99_interactive["fifo-atomic"];
    assert!(
        p99_slo < p99_fifo,
        "chunked+priority must beat FIFO-atomic on interactive p99 TTFT: \
         {p99_slo} vs {p99_fifo}"
    );
    assert!(
        goodput["chunked+priority"] >= goodput["fifo-atomic"],
        "SLO scheduling must not cost goodput: {} vs {}",
        goodput["chunked+priority"],
        goodput["fifo-atomic"]
    );
    // Incremental KV growth: admission no longer reserves full-prompt
    // KV, so the long-prompt tenant's chunks must show up as a lower
    // cluster-wide reserved-KV peak — with every request still served
    // whole (no lost or truncated tokens on this churn-free trace).
    assert!(
        peak_kv["chunked+priority"] < peak_kv["fifo-atomic"],
        "incremental growth must lower peak reserved KV: {} vs {}",
        peak_kv["chunked+priority"],
        peak_kv["fifo-atomic"]
    );
    for which in [
        "chunked-only",
        "chunked+priority",
        "fused+priority",
        "fifo-atomic",
        "priority-only",
    ] {
        assert_eq!(
            completed[which], completed["fifo-atomic"],
            "{which} must complete the same requests"
        );
    }
    // Fused microbatches: decode tokens ride every chunk iteration
    // instead of stalling behind prefill-only iterations, so the mean
    // interactive decode cadence AND the raw token throughput (same
    // completions, shorter makespan) must improve over the alternating
    // loop, while the in-SLO goodput stays above the FIFO-atomic
    // baseline. (Fusion's TTFT tax under the burst — the chunk drain
    // co-schedules decode attention — reclassifies a few tail requests
    // against the tight 1 s interactive target, so in-SLO goodput vs the
    // *alternating* loop is workload-dependent; that tradeoff is exactly
    // why `fused_microbatches` is a config knob.)
    assert!(
        mean_tpot_interactive["fused+priority"] < mean_tpot_interactive["chunked+priority"],
        "fusing must cut interactive TPOT vs the alternating loop: {} vs {}",
        mean_tpot_interactive["fused+priority"],
        mean_tpot_interactive["chunked+priority"]
    );
    assert!(
        token_throughput["fused+priority"] >= token_throughput["chunked+priority"],
        "fusing must not cost token throughput: {} vs {}",
        token_throughput["fused+priority"],
        token_throughput["chunked+priority"]
    );
    assert!(
        goodput["fused+priority"] >= goodput["fifo-atomic"],
        "fusing must keep the SLO win over the FIFO baseline: {} vs {}",
        goodput["fused+priority"],
        goodput["fifo-atomic"]
    );
}
