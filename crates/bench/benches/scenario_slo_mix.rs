//! Multi-tenant SLO scenario: an interactive chat tenant (tight
//! TTFT/TPOT targets) shares one heterogeneous cluster with a
//! long-context summarization tenant (loose batch deadlines). The
//! FIFO-atomic baseline admits whole prefills in arrival order, so a
//! single multi-thousand-token summarization prompt head-of-line-blocks
//! every chat turn behind it; the SLO-aware scheduler splits prefills
//! into token-budget chunks interleaved with decode and admits by TTFT
//! slack.
//!
//! Prints one TSV row per (system, class) plus goodput and determinism
//! rows. Exits non-zero unless chunked+priority beats FIFO-atomic on
//! interactive p99 TTFT at equal-or-better total goodput, with
//! bit-identical digests across same-seed reruns.

use hetis_bench::{bench_engine_config, bench_hetis_config, bench_profile_for, f, tsv_header};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::HetisPolicy;
use hetis_engine::{run, AdmissionPolicy, RunReport};
use hetis_model::llama_13b;
use hetis_workload::{multi_tenant_trace, DatasetKind, SloClass, TenantId, TenantSpec};

fn main() {
    let cluster = paper_cluster();
    let model = llama_13b();

    // Two tenants, one cluster: chatbot turns arrive at 6 req/s (tripling
    // inside a 10 s demand burst) with a 1 s TTFT target; article
    // summarization at 2 req/s brings ~1.8k-token prompts with a 30 s
    // deadline. The burst is what makes admission *order* matter: queues
    // only form while demand transiently exceeds service capacity.
    let specs = [
        TenantSpec::steady(
            TenantId(0),
            DatasetKind::ShareGpt,
            SloClass::Interactive,
            6.0,
        )
        .with_burst(20.0, 10.0, 3.0),
        TenantSpec::steady(TenantId(1), DatasetKind::LongBench, SloClass::Batch, 2.0),
    ];
    let trace = multi_tenant_trace(&specs, 4242, 60.0);

    let profile = bench_profile_for(DatasetKind::ShareGpt, &cluster, &model);
    let run_named = |which: &str| -> RunReport {
        let mut cfg = bench_engine_config();
        match which {
            "fifo-atomic" => {}
            "chunked-only" => cfg.prefill_chunk_tokens = Some(512),
            "priority-only" => cfg.admission = AdmissionPolicy::SloSlack,
            "chunked+priority" => {
                cfg.prefill_chunk_tokens = Some(512);
                cfg.admission = AdmissionPolicy::SloSlack;
            }
            _ => unreachable!(),
        }
        run(
            HetisPolicy::new(bench_hetis_config(), profile),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };

    tsv_header(&[
        "scenario",
        "system",
        "class",
        "completed",
        "slo_met",
        "attainment",
        "p99_ttft_s",
        "p95_ttft_s",
        "p95_tpot_s",
        "goodput_tok_s",
    ]);

    let mut p99_interactive = std::collections::HashMap::new();
    let mut goodput = std::collections::HashMap::new();
    for which in [
        "fifo-atomic",
        "chunked-only",
        "priority-only",
        "chunked+priority",
    ] {
        let wall_start = std::time::Instant::now();
        let report = run_named(which);
        let wall = wall_start.elapsed().as_secs_f64();
        // Engine-speed line: simulated seconds per wall second and raw
        // event throughput — the solver fast path and engine hot-loop
        // work land here (wall time is machine-dependent; the digest
        // rows, not these, pin behavior).
        println!(
            "slo_mix\tsim-throughput\t{which}\tsim_s={}\twall_s={}\tsim_per_wall={}\tevents={}\tevents_per_s={}",
            f(report.duration),
            f(wall),
            f(report.duration / wall),
            report.events_processed,
            f(report.events_processed as f64 / wall),
        );
        for s in report.class_stats() {
            println!(
                "slo_mix\t{which}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                s.class,
                s.completed,
                s.slo_met,
                f(s.attainment()),
                f(s.p99_ttft),
                f(s.p95_ttft),
                f(s.p95_tpot),
                f(s.goodput_tokens as f64 / report.duration),
            );
        }
        println!(
            "slo_mix\t{which}\ttotal\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            report.completed.len(),
            report.completed.iter().filter(|c| c.slo_met()).count(),
            f(report.slo_attainment()),
            f(report.p99_ttft_of_class(SloClass::Interactive)),
            f(report.p95_ttft()),
            f(report.p95_tpot()),
            f(report.goodput()),
        );
        p99_interactive.insert(which, report.p99_ttft_of_class(SloClass::Interactive));
        goodput.insert(which, report.goodput());
    }

    // Determinism: the same seed reproduces the full report (including
    // the per-class SLO tables folded into the digest) bit-for-bit.
    let a = run_named("chunked+priority");
    let b = run_named("chunked+priority");
    let deterministic = a.digest() == b.digest();
    println!(
        "slo_mix\tdeterminism\tdigest_a={:016x}\tdigest_b={:016x}\t{}",
        a.digest(),
        b.digest(),
        if deterministic {
            "IDENTICAL"
        } else {
            "DIVERGED"
        }
    );

    assert!(deterministic, "same seed must reproduce the run");
    let p99_slo = p99_interactive["chunked+priority"];
    let p99_fifo = p99_interactive["fifo-atomic"];
    assert!(
        p99_slo < p99_fifo,
        "chunked+priority must beat FIFO-atomic on interactive p99 TTFT: \
         {p99_slo} vs {p99_fifo}"
    );
    assert!(
        goodput["chunked+priority"] >= goodput["fifo-atomic"],
        "SLO scheduling must not cost goodput: {} vs {}",
        goodput["chunked+priority"],
        goodput["fifo-atomic"]
    );
}
