//! Prefix/KV reuse scenario: multi-turn chat sessions where every
//! follow-up turn replays the previous turn's full context. Two systems
//! share the trace, the cluster, and the Hetis dispatch policy:
//!
//! * `reuse-off` — the baseline engine; every turn pays the full
//!   quadratic prefill over its replayed context.
//! * `reuse-on` — the engine's session-scoped prefix cache: a finished
//!   turn registers its KV footprint, the next turn of the same session
//!   adopts the warm block-aligned prefix and prefills only the cold
//!   remainder, pinned to the registering instance's head placement.
//!
//! Prints one TSV row per (system, class) plus reuse counters, memory
//! (peak-reserved-KV), sim-throughput, behavior-digest and determinism
//! rows. Exits non-zero unless reuse strictly improves interactive mean
//! AND p99 TTFT, strictly lowers peak reserved KV, loses no tokens, and
//! keeps goodput at least equal — with bit-identical digests across
//! same-seed reruns and across `sim_shards` ∈ {1, 2, 4} (the cache
//! partitions per device-disjoint shard group).

use hetis_bench::{bench_engine_config, bench_hetis_config, bench_profile_for, f, tsv_header};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::HetisPolicy;
use hetis_engine::{run, AdmissionPolicy, RunReport};
use hetis_model::llama_13b;
use hetis_workload::{multi_turn_trace, DatasetKind, SessionWorkload, SloClass};

fn main() {
    let cluster = paper_cluster();
    let model = llama_13b();

    // Sixty 5-turn chat sessions: contexts accumulate to thousands of
    // tokens by the last turn, so ~everything past turn 0 is replayed
    // prefix. Think gaps average 35 s — ShareGPT completions decode for
    // tens of seconds, so this leaves most turns finished (KV registered
    // for reuse) when the follow-up arrives (~75% hit rate), while
    // session overlap keeps the cluster contended.
    let spec = SessionWorkload {
        sessions: 60,
        turns: 5,
        session_rate: 2.0,
        mean_think: 35.0,
        dataset: DatasetKind::ShareGpt,
        class: SloClass::Interactive,
    };
    let trace = multi_turn_trace(&spec, 4242);

    let profile = bench_profile_for(DatasetKind::ShareGpt, &cluster, &model);
    let run_named = |which: &str, shards: usize| -> RunReport {
        let mut cfg = bench_engine_config();
        cfg.prefill_chunk_tokens = Some(512);
        cfg.admission = AdmissionPolicy::SloSlack;
        cfg.sim_shards = shards;
        match which {
            "reuse-off" => {}
            "reuse-on" => cfg.prefix_reuse = true,
            _ => unreachable!(),
        }
        run(
            HetisPolicy::new(bench_hetis_config(), profile),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };

    tsv_header(&[
        "scenario",
        "system",
        "class",
        "completed",
        "slo_met",
        "attainment",
        "p99_ttft_s",
        "p95_ttft_s",
        "p95_tpot_s",
        "goodput_tok_s",
    ]);

    let mut reports = std::collections::HashMap::new();
    for which in ["reuse-off", "reuse-on"] {
        let wall_start = std::time::Instant::now();
        let report = run_named(which, 1);
        let wall = wall_start.elapsed().as_secs_f64();
        println!(
            "prefix_reuse\tsim-throughput\t{which}\tsim_s={}\twall_s={}\tsim_per_wall={}\tevents={}\tevents_per_s={}",
            f(report.duration),
            f(wall),
            f(report.duration / wall),
            report.events_processed,
            f(report.events_processed as f64 / wall),
        );
        // Reuse line: what the cache actually did.
        println!(
            "prefix_reuse\treuse\t{which}\tprobes={}\thits={}\thit_rate={}\thit_tokens={}\tshared_kv_bytes={}\tprefill_tokens={}\tpeak_kv_reserved={}",
            report.prefix_probes,
            report.prefix_hits,
            f(report.prefix_hit_rate()),
            report.prefix_hit_tokens,
            report.shared_kv_bytes,
            report.prefill_tokens,
            report.peak_kv_reserved_bytes,
        );
        println!(
            "prefix_reuse\tbehavior-digest\t{which}\t{:016x}",
            report.digest()
        );
        for s in report.class_stats() {
            println!(
                "prefix_reuse\t{which}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                s.class,
                s.completed,
                s.slo_met,
                f(s.attainment()),
                f(s.p99_ttft),
                f(s.p95_ttft),
                f(s.p95_tpot),
                f(s.goodput_tokens as f64 / report.duration),
            );
        }
        reports.insert(which, report);
    }
    let (off, on) = (&reports["reuse-off"], &reports["reuse-on"]);

    // Determinism: same seed, same digest — for both systems.
    for which in ["reuse-off", "reuse-on"] {
        let again = run_named(which, 1);
        let same = reports[which].digest() == again.digest();
        println!(
            "prefix_reuse\tdeterminism\t{which}\tdigest_a={:016x}\tdigest_b={:016x}\t{}",
            reports[which].digest(),
            again.digest(),
            if same { "IDENTICAL" } else { "DIVERGED" }
        );
        assert!(same, "{which}: same seed must reproduce the digest");
    }

    // Shard invariance: the reuse-on digest is bit-identical for 1, 2
    // and 4 shards (the per-device cache splits along device-disjoint
    // shard groups and every registration replays in simulated order).
    for shards in [2usize, 4] {
        let sharded = run_named("reuse-on", shards);
        let same = on.digest() == sharded.digest();
        println!(
            "prefix_reuse\tshard-invariance\treuse-on\tshards={shards}\tdigest={:016x}\t{}",
            sharded.digest(),
            if same { "IDENTICAL" } else { "DIVERGED" }
        );
        assert!(
            same,
            "sim_shards={shards} diverged from the sequential reuse-on digest"
        );
        assert_eq!(on.prefix_hits, sharded.prefix_hits);
        assert_eq!(on.shared_kv_bytes, sharded.shared_kv_bytes);
    }

    // The cache must actually serve warm prefixes on this trace.
    assert!(
        on.prefix_hits > 0 && on.prefix_hit_tokens > 0,
        "session trace must produce prefix hits"
    );
    assert_eq!(
        (off.prefix_probes, off.prefix_hits),
        (0, 0),
        "reuse-off must never touch the cache"
    );

    // Reuse must pay on every axis the feature claims: strictly better
    // interactive mean and p99 TTFT, strictly less peak reserved KV, no
    // lost tokens, goodput no worse.
    let mean_ttft = |r: &RunReport| {
        let ttfts: Vec<f64> = r
            .completed
            .iter()
            .filter(|c| c.class == SloClass::Interactive)
            .map(|c| c.first_token - c.arrival)
            .collect();
        ttfts.iter().sum::<f64>() / ttfts.len().max(1) as f64
    };
    assert!(
        mean_ttft(on) < mean_ttft(off),
        "reuse must cut interactive mean TTFT: {} vs {}",
        mean_ttft(on),
        mean_ttft(off)
    );
    assert!(
        on.p99_ttft_of_class(SloClass::Interactive) < off.p99_ttft_of_class(SloClass::Interactive),
        "reuse must cut interactive p99 TTFT: {} vs {}",
        on.p99_ttft_of_class(SloClass::Interactive),
        off.p99_ttft_of_class(SloClass::Interactive)
    );
    assert!(
        on.peak_kv_reserved_bytes < off.peak_kv_reserved_bytes,
        "skipped chunk reservations must lower peak reserved KV: {} vs {}",
        on.peak_kv_reserved_bytes,
        off.peak_kv_reserved_bytes
    );
    assert_eq!(on.lost_tokens, 0, "reuse must not lose tokens");
    assert!(
        on.goodput() >= off.goodput(),
        "reuse must not cost goodput: {} vs {}",
        on.goodput(),
        off.goodput()
    );
    // Work conservation: the warm tokens are exactly the prefill work
    // the engine no longer performs.
    assert_eq!(
        on.prefill_tokens + on.prefix_hit_tokens,
        off.prefill_tokens,
        "warm + cold prefill tokens must telescope to the baseline total"
    );
}
