//! Helix race: Hetis's dynamic dispatch vs Helix's max-flow-planned
//! static routing, head-to-head on the same preemption-storm churn
//! trace, plus the spot-acquisition cost comparison.
//!
//! Two halves, both digest-pinned by the CI gate:
//!
//! 1. **The race** — `hetis+elastic` and `helix` run the identical
//!    scenario (trace + churn schedule from one seed). Helix plans a
//!    max-flow routing once at startup and never re-plans; Hetis
//!    re-dispatches per iteration and re-plans on every churn event.
//! 2. **The economics** — the same `hetis+elastic` run billed twice:
//!    always-on-demand vs the cost-aware spot policy. Billing is a pure
//!    post-run replay, so the two priced runs have *identical* serving
//!    behavior and SLO attainment — only dollars (and the digest, which
//!    folds the attached `CostReport`) differ. The bench asserts the
//!    cost-aware policy undercuts on-demand on `cost_per_in_slo_token`
//!    at equal-or-better attainment.

use hetis_baselines::HelixPolicy;
use hetis_bench::{
    bench_engine_config, bench_hetis_config, bench_profile_for, f, tsv_header, Scale,
};
use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_core::HetisConfig;
use hetis_elastic::{
    AcquisitionPolicy, ChurnScenario, CostMeter, ElasticController, ElasticPolicy,
};
use hetis_engine::RunReport;
use hetis_model::llama_70b;
use hetis_workload::{DatasetKind, PriceTrace};

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_70b();
    let dataset = DatasetKind::ShareGpt;
    let profile = bench_profile_for(dataset, &cluster, &model);
    let horizon = match scale {
        Scale::Quick => 60.0,
        Scale::Full => 180.0,
    };
    let storm_start = horizon / 3.0;

    // Same storm shape as elastic_storm, different seed: every P100
    // revoked in a 5 s window, rejoining 20 s later, 2x rate spike.
    let scenario = ChurnScenario::preemption_storm(
        &cluster,
        dataset,
        7777,
        2.0,
        horizon,
        GpuType::P100,
        storm_start,
        5.0,
        10.0,
        Some(20.0),
        2.0,
    );

    let cfg = bench_engine_config();
    // Spot market: piecewise-constant multiplier in [0.25, 0.95] of the
    // on-demand rate, re-quoted every 10 s. The cost-aware policy takes
    // spot below 0.7 and falls back to on-demand above it.
    let prices = PriceTrace::seeded(7777, horizon, 10.0, 0.25, 0.95);
    let spot_aware = AcquisitionPolicy::SpotAware { threshold: 0.7 };

    let elastic_with = |meter: Option<CostMeter>| -> ElasticPolicy<hetis_core::HetisPolicy> {
        let hetis_cfg: HetisConfig = bench_hetis_config();
        let mut controller = ElasticController::new(hetis_cfg.clone(), profile);
        if let Some(m) = meter {
            controller = controller.with_acquisition(m);
        }
        ElasticPolicy::with_controller(hetis_core::HetisPolicy::new(hetis_cfg, profile), controller)
    };

    let run_named = |which: &str| -> RunReport {
        match which {
            "hetis+elastic" => scenario.run(elastic_with(None), &cluster, &model, cfg.clone()),
            "helix" => scenario.run(HelixPolicy::new(), &cluster, &model, cfg.clone()),
            "hetis+ondemand" => {
                let meter = CostMeter::new(prices.clone(), AcquisitionPolicy::AlwaysOnDemand);
                scenario.run_priced(
                    elastic_with(Some(meter.clone())),
                    &cluster,
                    &model,
                    cfg.clone(),
                    &meter,
                )
            }
            "hetis+spot" => {
                let meter = CostMeter::new(prices.clone(), spot_aware);
                scenario.run_priced(
                    elastic_with(Some(meter.clone())),
                    &cluster,
                    &model,
                    cfg.clone(),
                    &meter,
                )
            }
            _ => unreachable!(),
        }
    };

    tsv_header(&[
        "scenario",
        "system",
        "completed",
        "unfinished",
        "mean_norm_lat",
        "p99_norm_lat",
        "p95_ttft_s",
        "slo_attainment",
        "dollars",
        "cost_per_in_slo_tok",
        "spot_acq",
        "ondemand_acq",
    ]);

    let mut reports: Vec<(&str, RunReport)> = Vec::new();
    for which in ["hetis+elastic", "helix", "hetis+ondemand", "hetis+spot"] {
        let wall_start = std::time::Instant::now();
        let report = run_named(which);
        let wall = wall_start.elapsed().as_secs_f64();
        println!(
            "helix_race\tsim-throughput\t{which}\tsim_s={}\twall_s={}\tsim_per_wall={}\tevents={}\tevents_per_s={}",
            f(report.duration),
            f(wall),
            f(report.duration / wall),
            report.events_processed,
            f(report.events_processed as f64 / wall),
        );
        println!(
            "helix_race\tbehavior-digest\t{which}\t{:016x}",
            report.digest()
        );
        let (dollars, cpt, spot_acq, od_acq) = match &report.cost {
            Some(c) => (
                c.total_dollars(),
                c.cost_per_in_slo_token,
                c.spot_acquisitions,
                c.on_demand_acquisitions,
            ),
            None => (0.0, f64::INFINITY, 0, 0),
        };
        println!(
            "helix_race\t{which}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            report.completed.len(),
            report.unfinished,
            f(report.mean_normalized_latency()),
            f(report.p99_normalized_latency()),
            f(report.p95_ttft()),
            f(report.slo_attainment()),
            f(dollars),
            f(cpt),
            spot_acq,
            od_acq,
        );
        reports.push((which, report));
    }
    let get =
        |which: &str| -> &RunReport { &reports.iter().find(|(w, _)| *w == which).expect("ran").1 };

    // Determinism: both racers reproduce bit-for-bit from the seed.
    for which in ["hetis+elastic", "helix"] {
        let again = run_named(which);
        let identical = again.digest() == get(which).digest();
        println!(
            "helix_race\tdeterminism\t{which}\tdigest_a={:016x}\tdigest_b={:016x}\t{}",
            get(which).digest(),
            again.digest(),
            if identical { "IDENTICAL" } else { "DIVERGED" }
        );
        assert!(identical, "{which}: same seed must reproduce the run");
    }

    // The race must be a real race: Helix's static plan has to serve the
    // storm, not collapse (its flow-weighted routing keeps every entry
    // instance fed even while the worker class is revoked).
    let helix = get("helix");
    assert!(
        !helix.completed.is_empty(),
        "helix must complete requests through the storm"
    );

    // Economics: billing never perturbs serving...
    let od = get("hetis+ondemand");
    let spot = get("hetis+spot");
    assert!(
        spot.slo_attainment() >= od.slo_attainment(),
        "billing must not change serving: spot attainment {} vs on-demand {}",
        spot.slo_attainment(),
        od.slo_attainment(),
    );
    // ...so the cost-aware policy must win purely on dollars.
    let od_cpt = od.cost_per_in_slo_token();
    let spot_cpt = spot.cost_per_in_slo_token();
    println!(
        "helix_race\tcost-comparison\tspot_vs_ondemand\tcpt_spot={}\tcpt_ondemand={}\tsaving_pct={}",
        f(spot_cpt),
        f(od_cpt),
        f((1.0 - spot_cpt / od_cpt) * 100.0),
    );
    assert!(
        spot_cpt < od_cpt,
        "cost-aware acquisition must undercut always-on-demand: {spot_cpt} vs {od_cpt}"
    );
}
