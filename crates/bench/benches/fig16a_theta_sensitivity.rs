//! Fig. 16a: sensitivity of per-token latency to the re-dispatch
//! threshold Θ across the three datasets.
//!
//! Paper shape: the 0.5 default sits in a shallow basin; small Θ causes
//! excessive migration, large Θ tolerates imbalance (latency rate within
//! ~0.95–1.10 of the default).

use hetis_bench::{bench_profile_for, bench_trace, Scale};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::{HetisConfig, HetisPolicy};
use hetis_engine::{run, EngineConfig};
use hetis_model::llama_13b;
use hetis_workload::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_13b();
    let cfg = EngineConfig {
        drain_timeout: 240.0,
        ..EngineConfig::default()
    };

    println!("# Fig. 16a: latency rate vs theta (normalized to theta=0.5)");
    println!("theta\tSG\tHE\tLB");
    let grids = [
        (DatasetKind::ShareGpt, 8.0),
        (DatasetKind::HumanEval, 30.0),
        (DatasetKind::LongBench, 4.0),
    ];
    // Baseline at the default theta.
    let mut base = Vec::new();
    for &(dataset, rate) in &grids {
        let trace = bench_trace(dataset, rate, scale.horizon());
        let policy = HetisPolicy::new(
            HetisConfig::default(),
            bench_profile_for(dataset, &cluster, &model),
        );
        let report = run(policy, &cluster, &model, cfg.clone(), &trace);
        base.push(report.mean_normalized_latency());
    }
    for &theta in &[0.3, 0.4, 0.5, 0.6, 0.7] {
        let mut row = format!("{theta}");
        for (k, &(dataset, rate)) in grids.iter().enumerate() {
            let trace = bench_trace(dataset, rate, scale.horizon());
            let policy = HetisPolicy::new(
                HetisConfig::default(),
                bench_profile_for(dataset, &cluster, &model),
            )
            .with_theta(theta);
            let report = run(policy, &cluster, &model, cfg.clone(), &trace);
            row.push_str(&format!(
                "\t{:.4}",
                report.mean_normalized_latency() / base[k]
            ));
        }
        println!("{row}");
    }
}
