//! Fig. 14: dynamic resource usage under time-varying arrivals
//! (rps 5 → 0 → 2.5 → 0), Llama-13B, one A100 primary + two 3090
//! attention workers.
//!
//! Paper shape: the A100 consistently carries more heads; 3090s join
//! late (Hetis avoids premature network distribution under light load);
//! caches fill at the peak and drain in the quiet phases.

use hetis_bench::Scale;
use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::{run, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_workload::{DatasetKind, PiecewiseRate, TraceBuilder};

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_13b();
    let a100 = cluster.devices_of_type(GpuType::A100)[0];
    let r3090 = cluster.devices_of_type(GpuType::Rtx3090);

    let mut stage = StageTopo::plain(StageConfig {
        devices: vec![a100],
        layers: model.num_layers,
    });
    stage.attention_workers = vec![r3090[0], r3090[2]];
    let topo = Topology {
        instances: vec![InstanceTopo {
            stages: vec![stage],
            role: InstanceRole::Both,
        }],
    };

    let total = match scale {
        Scale::Quick => 100.0,
        Scale::Full => 200.0,
    };
    let arrivals = PiecewiseRate::fig14_pattern(total);
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 1414).build(&arrivals, total);

    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 48);
    let policy = HetisPolicy::new(HetisConfig::default(), profile).with_fixed_topology(topo);
    let cfg = EngineConfig {
        trace_sample_period: total / 100.0,
        ..EngineConfig::default()
    };
    let report = run(policy, &cluster, &model, cfg, &trace);

    println!("# Fig. 14: cache usage %% and resident heads over time");
    println!("time_s\tA100_cache_pct\t3090a_cache_pct\t3090b_cache_pct\tA100_heads\t3090a_heads\t3090b_heads");
    for s in &report.trace {
        let get = |d: hetis_cluster::DeviceId| {
            s.devices
                .iter()
                .find(|&&(dd, _, _)| dd == d)
                .map(|&(_, u, h)| (u, h))
                .unwrap_or((0.0, 0))
        };
        let (ua, ha) = get(a100);
        let (u0, h0) = get(r3090[0]);
        let (u1, h1) = get(r3090[2]);
        println!(
            "{:.1}\t{:.1}\t{:.1}\t{:.1}\t{ha}\t{h0}\t{h1}",
            s.time,
            ua * 100.0,
            u0 * 100.0,
            u1 * 100.0
        );
    }
    println!(
        "# completed {}/{} | migrations {}",
        report.completed.len(),
        report.completed.len() + report.unfinished,
        report.migrations
    );
}
