//! Fig. 16b: robustness to profiling error — perturb each fitted
//! coefficient family (a, b, c, γ, β) by up to ±20% and measure per-token
//! latency inflation.
//!
//! Paper shape: even ±20% error inflates latency by at most ~6.9%.

use hetis_bench::{bench_profile_for, bench_trace, Scale};
use hetis_cluster::cluster::paper_cluster;
use hetis_core::profiler::Coefficient;
use hetis_core::{HetisConfig, HetisPolicy};
use hetis_engine::{run, EngineConfig};
use hetis_model::llama_13b;
use hetis_workload::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let cluster = paper_cluster();
    let model = llama_13b();
    let dataset = DatasetKind::ShareGpt;
    let rate = 8.0;
    let cfg = EngineConfig {
        drain_timeout: 240.0,
        ..EngineConfig::default()
    };
    let trace = bench_trace(dataset, rate, scale.horizon());

    let baseline = {
        let policy = HetisPolicy::new(
            HetisConfig::default(),
            bench_profile_for(dataset, &cluster, &model),
        );
        run(policy, &cluster, &model, cfg.clone(), &trace).mean_normalized_latency()
    };

    println!("# Fig. 16b: normalized latency vs profiling error (vs unperturbed)");
    println!("error_pct\ta\tb\tc\tgamma\tbeta");
    for &pct in &[5.0, 10.0, 15.0, 20.0] {
        let mut row = format!("{pct}");
        for which in [
            Coefficient::A,
            Coefficient::B,
            Coefficient::C,
            Coefficient::Gamma,
            Coefficient::Beta,
        ] {
            let policy = HetisPolicy::new(
                HetisConfig::default(),
                bench_profile_for(dataset, &cluster, &model),
            )
            .with_perturbation(which, pct / 100.0);
            let report = run(policy, &cluster, &model, cfg.clone(), &trace);
            row.push_str(&format!(
                "\t{:.4}",
                report.mean_normalized_latency() / baseline
            ));
        }
        println!("{row}");
    }
}
