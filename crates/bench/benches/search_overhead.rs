//! §7.4 "Searching overhead of primary worker parallelism": wall time of
//! the Parallelizer's hierarchical search.
//!
//! Paper reference: 4 s on the authors' 12-GPU cluster; 15 s on a
//! simulated 5-type × 32-GPU cluster (their search executes real
//! profiling kernels; ours is fully analytic and therefore far faster —
//! the point of the experiment is that search cost is negligible and
//! scales mildly with cluster size).

use hetis_cluster::cluster::{large_synthetic, paper_cluster};
use hetis_core::{search_topology, HetisConfig, WorkloadProfile};
use hetis_model::{llama_13b, llama_70b};
use hetis_workload::DatasetKind;
use std::time::Instant;

fn main() {
    let cfg = HetisConfig::default();
    let profile = WorkloadProfile::from_dataset(DatasetKind::ShareGpt, 128);

    println!("# Parallelizer search overhead");
    println!("cluster\tmodel\tconfigs_evaluated\twall_seconds");
    for (label, cluster) in [
        ("paper-12gpu", paper_cluster()),
        ("synthetic-5x8", large_synthetic(5, 8)),
        ("synthetic-5x32", large_synthetic(5, 32)),
    ] {
        for model in [llama_13b(), llama_70b()] {
            let t0 = Instant::now();
            let out = search_topology(&cluster, &model, &profile, &cfg);
            let wall = t0.elapsed().as_secs_f64();
            println!("{label}\t{}\t{}\t{:.3}", model.name, out.evaluated, wall);
        }
    }
}
