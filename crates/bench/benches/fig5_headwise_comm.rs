//! Fig. 5: head-wise vs sequence-wise splitting communication overhead
//! (Llama-70B, 100 Gbps LAN).
//!
//! Paper shape: (a) at 20% offload to one worker head-wise wins ~2.68×;
//! (b) with four workers the advantage reaches ~3.55×.

use hetis_cluster::{AlphaBeta, LinkKind};
use hetis_core::split::{headwise_overhead, seqwise_overhead};
use hetis_model::llama_70b;

fn main() {
    let m = llama_70b();
    let lan = AlphaBeta::of(LinkKind::InterHost);
    let batch = 128u64;

    println!("# Fig. 5a: per-layer comm overhead vs offload ratio (1 worker, batch {batch})");
    println!("offload_ratio\theadwise_ms\tseqwise_ms\tadvantage");
    for &frac in &[0.2, 0.4, 0.6, 0.8] {
        let h = headwise_overhead(&m, lan, batch, frac, 1);
        let s = seqwise_overhead(&m, lan, batch, frac, 1);
        println!("{frac}\t{:.4}\t{:.4}\t{:.2}", h * 1e3, s * 1e3, s / h);
    }

    println!("\n# Fig. 5b: per-layer comm overhead vs worker count (even split)");
    println!("workers\theadwise_ms\tseqwise_ms\tadvantage");
    for workers in 1..=4usize {
        let h = headwise_overhead(&m, lan, batch, 1.0, workers);
        let s = seqwise_overhead(&m, lan, batch, 1.0, workers);
        println!("{workers}\t{:.4}\t{:.4}\t{:.2}", h * 1e3, s * 1e3, s / h);
    }
}
