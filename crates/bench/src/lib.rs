//! Benchmark harness reproducing every table and figure of the Hetis
//! paper.
//!
//! Each experiment is a `harness = false` bench target (run by `cargo
//! bench`) that prints the paper's rows/series as TSV to stdout. The
//! sweep sizes honor `HETIS_BENCH_SCALE`:
//!
//! * `quick` (default) — reduced trace horizons; every series keeps its
//!   shape, total runtime stays in minutes.
//! * `full` — the paper's full rate grids and longer horizons.
//!
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! every target here.

use hetis_baselines::{HexgenPolicy, SplitwisePolicy};
use hetis_cluster::Cluster;
use hetis_core::{HetisConfig, HetisPolicy, WorkloadProfile};
use hetis_engine::{run, EngineConfig, RunReport};
use hetis_model::ModelSpec;
use hetis_workload::{DatasetKind, Poisson, Trace, TraceBuilder};

/// Experiment scale selected via `HETIS_BENCH_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short horizons (default).
    Quick,
    /// Paper-sized sweeps.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("HETIS_BENCH_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Trace horizon in seconds for end-to-end sweeps.
    pub fn horizon(self) -> f64 {
        match self {
            Scale::Quick => 40.0,
            Scale::Full => 120.0,
        }
    }
}

/// The three competing systems, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Hetis (this paper).
    Hetis,
    /// HexGen (static asymmetric parallelism).
    Hexgen,
    /// Splitwise (phase splitting).
    Splitwise,
}

impl System {
    /// All three, in the paper's legend order.
    pub const ALL: [System; 3] = [System::Splitwise, System::Hexgen, System::Hetis];

    /// Lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            System::Hetis => "hetis",
            System::Hexgen => "hexgen",
            System::Splitwise => "splitwise",
        }
    }
}

/// Default engine config for experiments (bounded drain).
pub fn bench_engine_config() -> EngineConfig {
    EngineConfig {
        drain_timeout: 180.0,
        ..EngineConfig::default()
    }
}

/// Default Hetis config for experiments, honoring
/// `HETIS_DISPATCH_SOLVER` (`waterfill` — the default — or `simplex`).
/// The override exists so scenario digests can be pinned against the
/// simplex oracle: `HETIS_DISPATCH_SOLVER=simplex cargo bench --bench
/// scenario_slo_mix` must reproduce the pre-fast-path digests
/// bit-for-bit.
pub fn bench_hetis_config() -> HetisConfig {
    let mut cfg = HetisConfig::default();
    if let Ok(v) = std::env::var("HETIS_DISPATCH_SOLVER") {
        cfg.solver = match v.as_str() {
            "simplex" => hetis_core::DispatchSolver::Simplex,
            "waterfill" => hetis_core::DispatchSolver::WaterFill,
            // A typo silently selecting the wrong solver would record
            // bogus pinning digests — fail loudly instead.
            other => panic!("unknown HETIS_DISPATCH_SOLVER value {other:?} (expected \"simplex\" or \"waterfill\")"),
        };
    }
    cfg
}

/// Builds a trace for a dataset at a rate (fixed seed per dataset so the
/// same requests arrive faster or slower across the rate sweep).
pub fn bench_trace(dataset: DatasetKind, rate: f64, horizon: f64) -> Trace {
    let seed = match dataset {
        DatasetKind::ShareGpt => 4242,
        DatasetKind::HumanEval => 4243,
        DatasetKind::LongBench => 4244,
    };
    TraceBuilder::new(dataset, seed).build(&Poisson::new(rate), horizon)
}

/// Workload profile for Hetis's Parallelizer per dataset: R sized to the
/// concurrency the cluster's *compute* can sustain at saturation (≈30% of
/// best-case KV capacity for these workloads) — the capacity
/// side-condition must reflect reachable peak load, not memory-fill, or
/// the search trades real latency for capacity no workload ever uses.
pub fn bench_profile_for(
    dataset: DatasetKind,
    cluster: &Cluster,
    model: &ModelSpec,
) -> WorkloadProfile {
    WorkloadProfile::for_cluster(dataset, cluster, model, 0.3)
}

/// Runs one `(system, model, dataset, rate)` cell and returns the report.
pub fn run_system(
    system: System,
    cluster: &Cluster,
    model: &ModelSpec,
    dataset: DatasetKind,
    trace: &Trace,
) -> RunReport {
    let cfg = bench_engine_config();
    match system {
        System::Hetis => run(
            HetisPolicy::new(
                bench_hetis_config(),
                bench_profile_for(dataset, cluster, model),
            ),
            cluster,
            model,
            cfg,
            trace,
        ),
        System::Hexgen => run(HexgenPolicy::new(), cluster, model, cfg, trace),
        System::Splitwise => run(SplitwisePolicy::new(), cluster, model, cfg, trace),
    }
}

/// Prints a TSV header line.
pub fn tsv_header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Shared driver for the end-to-end figures (Figs. 8/9/10): sweeps
/// request rate × dataset × system for one model and prints mean
/// normalized latency (s/token) plus completion counts, then one
/// behavior-digest row per system — every cell's `RunReport::digest`
/// folded (FNV-1a, grid order) into a single pinnable word, so a CI pin
/// on three rows covers the whole sweep.
pub fn run_e2e_figure(figure: &str, model: &ModelSpec, grids: &[(DatasetKind, &[f64])]) {
    let scale = Scale::from_env();
    let cluster = hetis_cluster::cluster::paper_cluster();
    tsv_header(&[
        "figure",
        "dataset",
        "rate",
        "system",
        "norm_latency_s_per_tok",
        "p95_ttft_s",
        "p95_tpot_s",
        "completed",
        "issued",
    ]);
    let mut digests: Vec<(System, u64)> = System::ALL
        .iter()
        .map(|&s| (s, 0xcbf2_9ce4_8422_2325u64))
        .collect();
    for &(dataset, rates) in grids {
        for &rate in rates {
            let trace = bench_trace(dataset, rate, scale.horizon());
            for system in System::ALL {
                let report = run_system(system, &cluster, model, dataset, &trace);
                let d = digests
                    .iter_mut()
                    .find(|(s, _)| *s == system)
                    .expect("system registered");
                d.1 ^= report.digest();
                d.1 = d.1.wrapping_mul(0x1000_0000_01b3);
                println!(
                    "{figure}\t{}\t{rate}\t{}\t{}\t{}\t{}\t{}\t{}",
                    dataset.abbrev(),
                    system.name(),
                    f(report.mean_normalized_latency()),
                    f(report.p95_ttft()),
                    f(report.p95_tpot()),
                    report.completed.len(),
                    trace.len(),
                );
            }
        }
    }
    // Digest rows carry the scale tag: quick and full horizons cover
    // different traces, so their pins are distinct rows.
    let tag = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    for (system, digest) in digests {
        println!(
            "{figure}_e2e\tbehavior-digest\t{}-{tag}\t{digest:016x}",
            system.name()
        );
    }
}

/// Formats a float for the tables.
pub fn f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.5}")
    } else {
        "inf".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_quick() {
        // Without the env var the scale is quick.
        std::env::remove_var("HETIS_BENCH_SCALE");
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert!(Scale::Quick.horizon() < Scale::Full.horizon());
    }

    #[test]
    fn system_names() {
        assert_eq!(System::Hetis.name(), "hetis");
        assert_eq!(System::ALL.len(), 3);
    }
}
