//! Property suite pinning the water-fill fast path against the simplex
//! oracle on seeded random Eq. (7) instances.
//!
//! Every instance has the Dispatcher's shape: one affine max term per
//! device (`t_ik = αᵢ·p_k + βᵢ·q_k`), one capacity row per device
//! (`Σ_k u_k·x_ik ≤ capᵢ`), one head-integrity equality per request
//! (`Σᵢ x_ik = H_k`). The suite sweeps loose, tight and banned-device
//! capacity regimes (the §5.3.2 redispatch path) and asserts, whenever
//! the water-fill takes its fast path, that its objective matches the
//! simplex optimum to 1e-6, that feasibility is exact, and that both
//! solutions survive `round_to_groups`.

use hetis_lp::{
    round_to_groups, ConstraintOp, LpError, MinMaxBuilder, WaterFill, WfDemand, WfDevice, WfOutcome,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One random Eq. (7) instance.
struct Instance {
    devices: Vec<WfDevice>,
    demands: Vec<WfDemand>,
}

impl Instance {
    fn random(seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..=8);
        let j = rng.gen_range(1usize..=6);

        let mut demands = Vec::with_capacity(j);
        for _ in 0..j {
            let groups = rng.gen_range(1u32..=8);
            // Mostly the dispatcher's shape (p = 1), but sweep the full
            // rank-2 space too: scaled p, exact-zero p (the ideal-time
            // KV pseudo-demand), and the fully cost-free (0,0) corner
            // that once broke the Monge sort's transitivity.
            let (p, q) = match rng.gen_range(0u32..20) {
                0 => (0.0, 0.0),
                1 | 2 => (0.0, rng.gen_range(0.5f64..60.0)),
                3 | 4 => (rng.gen_range(0.1f64..3.0), rng.gen_range(0.0f64..60.0)),
                _ => (1.0, rng.gen_range(0.0f64..60.0)),
            };
            demands.push(WfDemand {
                amount: (groups * 8) as f64,
                p,
                q,
                // u co-monotone with q, as in the dispatcher (compute
                // length is the chunk-capped context length).
                u: q + rng.gen_range(0.0f64..20.0) + 0.1,
            });
        }
        let total_u: f64 = demands.iter().map(|d| d.amount * d.u).sum();

        // Capacity regime: 0 = loose, 1 = tight, 2 = one banned device.
        let regime = rng.gen_range(0u32..4);
        let mut devices = Vec::with_capacity(n);
        for _ in 0..n {
            let alpha = if rng.gen_range(0u32..10) == 0 {
                0.0
            } else {
                rng.gen_range(0.001f64..2.0)
            };
            let beta = if rng.gen_range(0u32..10) == 0 {
                0.0
            } else {
                rng.gen_range(0.0f64..0.5)
            };
            let constant = if rng.gen_range(0u32..5) == 0 {
                0.0
            } else {
                rng.gen_range(0.0f64..25.0)
            };
            let capacity = match regime {
                1 => total_u / n as f64 * rng.gen_range(0.4f64..1.6),
                _ => total_u * 10.0,
            };
            devices.push(WfDevice {
                constant,
                alpha,
                beta,
                capacity,
            });
        }
        if regime == 2 {
            let banned = rng.gen_range(0usize..n);
            devices[banned].capacity = 0.0;
        }
        Instance { devices, demands }
    }

    /// Poses the identical instance as the generic epigraph LP.
    fn simplex(&self) -> Result<hetis_lp::MinMaxSolution, LpError> {
        let n = self.devices.len();
        let j = self.demands.len();
        let nv = n * j;
        let mut b = MinMaxBuilder::new(nv);
        for (i, d) in self.devices.iter().enumerate() {
            let row = b.push_max_term(d.constant);
            for (k, dem) in self.demands.iter().enumerate() {
                row[k * n + i] = d.alpha * dem.p + d.beta * dem.q;
            }
            let cap = b.push_constraint(ConstraintOp::Le, d.capacity);
            for (k, dem) in self.demands.iter().enumerate() {
                cap[k * n + i] = dem.u;
            }
        }
        for (k, dem) in self.demands.iter().enumerate() {
            let row = b.push_constraint(ConstraintOp::Eq, dem.amount);
            for i in 0..n {
                row[k * n + i] = 1.0;
            }
        }
        b.solve()
    }

    fn waterfill(&self) -> WfOutcome {
        let mut wf = WaterFill::new();
        for &d in &self.devices {
            wf.push_device(d);
        }
        for &d in &self.demands {
            wf.push_demand(d);
        }
        wf.solve()
    }

    /// Max-term value at `x` (layout `x[k*n + i]`).
    fn objective_at(&self, x: &[f64]) -> f64 {
        let n = self.devices.len();
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| {
                d.constant
                    + self
                        .demands
                        .iter()
                        .enumerate()
                        .map(|(k, dem)| (d.alpha * dem.p + d.beta * dem.q) * x[k * n + i])
                        .sum::<f64>()
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Exact feasibility of `x`: nonnegative, head-integrity equalities,
    /// capacity rows.
    fn assert_feasible(&self, x: &[f64], label: &str) {
        let n = self.devices.len();
        for &v in x {
            assert!(v >= -1e-9, "{label}: negative allocation {v}");
        }
        for (k, dem) in self.demands.iter().enumerate() {
            let sum: f64 = (0..n).map(|i| x[k * n + i]).sum();
            assert!(
                (sum - dem.amount).abs() <= 1e-6 * dem.amount.max(1.0),
                "{label}: head integrity broken for demand {k}: {sum} vs {}",
                dem.amount
            );
        }
        for (i, d) in self.devices.iter().enumerate() {
            let used: f64 = self
                .demands
                .iter()
                .enumerate()
                .map(|(k, dem)| dem.u * x[k * n + i])
                .sum();
            assert!(
                used <= d.capacity * (1.0 + 1e-9) + 1e-9,
                "{label}: capacity broken on device {i}: {used} > {}",
                d.capacity
            );
        }
    }

    /// Both solvers' fractional answers must survive group rounding.
    fn assert_roundable(&self, x: &[f64], label: &str) {
        let n = self.devices.len();
        let caps = vec![64u32; n];
        for (k, dem) in self.demands.iter().enumerate() {
            let total = dem.amount as u32;
            let rounded = round_to_groups(&x[k * n..(k + 1) * n], 8, total, &caps)
                .unwrap_or_else(|| panic!("{label}: rounding failed for demand {k}"));
            assert_eq!(rounded.iter().sum::<u32>(), total, "{label}");
            assert!(rounded.iter().all(|h| h % 8 == 0), "{label}");
        }
    }
}

#[test]
fn waterfill_matches_simplex_on_seeded_instances() {
    let mut fast = 0usize;
    let mut fallback = 0usize;
    let mut banned_fast = 0usize;
    const INSTANCES: u64 = 1200;
    for seed in 0..INSTANCES {
        let inst = Instance::random(seed);
        match inst.waterfill() {
            WfOutcome::Solved(wf) => {
                fast += 1;
                let sx = inst
                    .simplex()
                    .unwrap_or_else(|e| panic!("seed {seed}: simplex failed on fast path: {e}"));
                let tol = 1e-6 * sx.max_value.abs().max(1.0);
                assert!(
                    (wf.max_value - sx.max_value).abs() <= tol,
                    "seed {seed}: objective mismatch: waterfill {} vs simplex {}",
                    wf.max_value,
                    sx.max_value
                );
                // Reported objective must be the evaluated objective.
                let eval = inst.objective_at(&wf.x);
                assert!(
                    (eval - wf.max_value).abs() <= 1e-9 * eval.abs().max(1.0),
                    "seed {seed}: reported {} vs evaluated {eval}",
                    wf.max_value
                );
                inst.assert_feasible(&wf.x, &format!("seed {seed} waterfill"));
                inst.assert_roundable(&wf.x, &format!("seed {seed} waterfill"));
                inst.assert_roundable(&sx.x, &format!("seed {seed} simplex"));
                if inst.devices.iter().any(|d| d.capacity == 0.0) {
                    let n = inst.devices.len();
                    for (i, d) in inst.devices.iter().enumerate() {
                        if d.capacity == 0.0 {
                            for k in 0..inst.demands.len() {
                                assert_eq!(
                                    wf.x[k * n + i],
                                    0.0,
                                    "seed {seed}: banned device {i} received load"
                                );
                            }
                        }
                    }
                    banned_fast += 1;
                }
            }
            WfOutcome::CapacityBound => {
                fallback += 1;
                // The oracle is authoritative here; it must terminate
                // cleanly either way.
                match inst.simplex() {
                    Ok(s) => inst.assert_feasible(&s.x, &format!("seed {seed} fallback")),
                    Err(LpError::Infeasible) => {}
                    Err(e) => panic!("seed {seed}: unexpected simplex error {e}"),
                }
            }
            WfOutcome::Infeasible => panic!("seed {seed}: generator never empties the cluster"),
        }
    }
    // The suite must actually exercise both paths, and the fast path must
    // dominate (it is the default production path).
    assert!(
        fast * 2 > (INSTANCES as usize),
        "fast path too rare: {fast}/{INSTANCES}"
    );
    assert!(fallback > 0, "no capacity-bound fallback cases generated");
    assert!(banned_fast > 0, "no banned-device fast-path cases");
}

#[test]
fn capacity_tight_instances_stay_consistent() {
    // Deliberately tight capacity sweep: every instance scales its caps
    // from comfortably-loose down to infeasible and checks the two
    // solvers agree at every step the fast path engages.
    for seed in 0..64u64 {
        let mut inst = Instance::random(seed);
        let total_u: f64 = inst.demands.iter().map(|d| d.amount * d.u).sum();
        for scale in [4.0, 1.5, 1.01, 0.9, 0.4] {
            let n = inst.devices.len();
            for d in inst.devices.iter_mut() {
                d.capacity = total_u * scale / n as f64;
            }
            match inst.waterfill() {
                WfOutcome::Solved(wf) => {
                    let sx = inst.simplex().expect("fast path implies feasible");
                    let tol = 1e-6 * sx.max_value.abs().max(1.0);
                    assert!(
                        (wf.max_value - sx.max_value).abs() <= tol,
                        "seed {seed} scale {scale}: {} vs {}",
                        wf.max_value,
                        sx.max_value
                    );
                    inst.assert_feasible(&wf.x, &format!("seed {seed} scale {scale}"));
                }
                WfOutcome::CapacityBound => match inst.simplex() {
                    Ok(s) => inst.assert_feasible(&s.x, &format!("seed {seed} scale {scale}")),
                    Err(LpError::Infeasible) => {}
                    Err(e) => panic!("seed {seed} scale {scale}: {e}"),
                },
                WfOutcome::Infeasible => unreachable!(),
            }
        }
    }
}
