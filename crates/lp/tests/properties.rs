//! Property-based tests for the LP solver and head rounding.

use hetis_lp::{round_to_groups, AffineExpr, ConstraintOp, LinearProgram, MinMaxBuilder};
use proptest::prelude::*;

proptest! {
    /// Any returned solution of a random ≤-constrained LP is feasible and
    /// its objective matches c·x.
    #[test]
    fn solutions_are_feasible(
        n in 1usize..5,
        m in 1usize..6,
        seed_rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..5.0, 5), 6),
        rhs in proptest::collection::vec(1.0f64..50.0, 6),
        obj in proptest::collection::vec(-3.0f64..3.0, 5),
    ) {
        let mut lp = LinearProgram::new(n);
        lp.objective = obj[..n].to_vec();
        // Bound the feasible region so the program is never unbounded:
        // sum(x) <= 100.
        lp.add_constraint(vec![1.0; n], ConstraintOp::Le, 100.0);
        for i in 0..m {
            lp.add_constraint(seed_rows[i][..n].to_vec(), ConstraintOp::Le, rhs[i]);
        }
        let sol = lp.solve().expect("bounded nonempty program must solve");
        // Nonnegativity.
        for &xi in &sol.x {
            prop_assert!(xi >= -1e-7, "negative variable {xi}");
        }
        // Constraint satisfaction.
        for c in &lp.constraints {
            let lhs: f64 = c.coeffs.iter().zip(&sol.x).map(|(a, b)| a * b).sum();
            prop_assert!(lhs <= c.rhs + 1e-6, "violated: {lhs} > {}", c.rhs);
        }
        // Objective consistency.
        let z: f64 = lp.objective.iter().zip(&sol.x).map(|(a, b)| a * b).sum();
        prop_assert!((z - sol.objective).abs() < 1e-6);
    }

    /// The min–max balancer over independent machines matches the exact
    /// analytic optimum: with per-unit costs sᵢ and total T, the optimum is
    /// T / Σ(1/sᵢ) when no caps bind.
    #[test]
    fn minmax_matches_analytic_waterfill(
        speeds in proptest::collection::vec(0.2f64..8.0, 2..5),
        total in 1.0f64..100.0,
    ) {
        let n = speeds.len();
        let mut b = MinMaxBuilder::new(n);
        for (i, &s) in speeds.iter().enumerate() {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = s;
            b.add_max_term(AffineExpr { constant: 0.0, coeffs });
        }
        b.add_constraint(vec![1.0; n], ConstraintOp::Eq, total);
        let sol = b.solve().unwrap();
        let analytic = total / speeds.iter().map(|s| 1.0 / s).sum::<f64>();
        prop_assert!((sol.max_value - analytic).abs() / analytic < 1e-6,
            "{} vs {}", sol.max_value, analytic);
    }

    /// Rounding preserves totals, multiples of r, and caps.
    #[test]
    fn rounding_invariants(
        weights in proptest::collection::vec(0.0f64..10.0, 2..6),
        r in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        groups_total in 1u32..16,
    ) {
        let total = groups_total * r;
        let n = weights.len();
        // Normalize weights so they sum to `total` heads.
        let sum: f64 = weights.iter().sum::<f64>().max(1e-9);
        let x: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
        let cap = vec![total; n]; // generous caps
        let out = round_to_groups(&x, r, total, &cap).expect("feasible");
        prop_assert_eq!(out.iter().sum::<u32>(), total);
        for (i, &h) in out.iter().enumerate() {
            prop_assert!(h % r == 0);
            prop_assert!(h <= cap[i]);
        }
        // Rounding error per device is bounded by one group (after
        // cap-clipping and remainder distribution, ±2r is a safe bound).
        for (i, &h) in out.iter().enumerate() {
            prop_assert!((h as f64 - x[i]).abs() <= 2.0 * r as f64 + 1e-9,
                "device {i}: {h} vs {}", x[i]);
        }
    }

    /// Tight caps: when the caps exactly cover the demand, everything is
    /// allocated to capacity.
    #[test]
    fn rounding_tight_caps(groups in 1u32..12, r in prop_oneof![Just(1u32), Just(8)]) {
        let total = groups * r;
        // Two devices, caps exactly covering total.
        let c0 = (groups / 2) * r;
        let c1 = total - c0;
        let out = round_to_groups(&[total as f64, 0.0], r, total, &[c0, c1]).unwrap();
        prop_assert_eq!(out[0], c0);
        prop_assert_eq!(out[1], c1);
    }
}
