//! Epigraph reduction: `min max_i fᵢ(x)` → `min t s.t. fᵢ(x) ≤ t`.
//!
//! The Dispatcher's objective (Eq. 7a) is the maximum of per-device affine
//! attention-time estimates. The standard epigraph trick turns it into a
//! plain LP with one extra variable.

use crate::simplex::{ConstraintOp, LpError, RawRow, Tableau};

/// An affine expression `constant + coeffs · x`.
#[derive(Debug, Clone)]
pub struct AffineExpr {
    /// Constant term.
    pub constant: f64,
    /// Coefficient per decision variable.
    pub coeffs: Vec<f64>,
}

impl AffineExpr {
    /// Evaluates at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.constant
            + self
                .coeffs
                .iter()
                .zip(x.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }
}

/// Result of a min–max solve.
#[derive(Debug, Clone)]
pub struct MinMaxSolution {
    /// Optimal decision variables (without the epigraph variable).
    pub x: Vec<f64>,
    /// The minimized maximum.
    pub max_value: f64,
}

/// Builder for `min max_i exprᵢ(x)` over `x ≥ 0` with linear constraints.
///
/// Rows are stored flat (one `Vec<f64>` per kind, `n` entries per row) so
/// a long-lived builder can be [`MinMaxBuilder::reset`] and refilled
/// through [`MinMaxBuilder::push_max_term`] /
/// [`MinMaxBuilder::push_constraint`] without allocating per row — the
/// Dispatcher reuses one builder across every per-iteration solve.
#[derive(Debug, Clone, Default)]
pub struct MinMaxBuilder {
    n: usize,
    expr_consts: Vec<f64>,
    expr_coeffs: Vec<f64>,
    cons_ops: Vec<ConstraintOp>,
    cons_rhs: Vec<f64>,
    cons_coeffs: Vec<f64>,
}

impl MinMaxBuilder {
    /// A problem over `n` decision variables.
    pub fn new(n: usize) -> Self {
        MinMaxBuilder {
            n,
            ..Default::default()
        }
    }

    /// Clears all rows and re-dimensions to `n` variables, keeping the
    /// allocated capacity for reuse.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.expr_consts.clear();
        self.expr_coeffs.clear();
        self.cons_ops.clear();
        self.cons_rhs.clear();
        self.cons_coeffs.clear();
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Appends a zeroed max-term row and returns its coefficient slice
    /// for in-place filling (the allocation-free
    /// [`MinMaxBuilder::add_max_term`]).
    pub fn push_max_term(&mut self, constant: f64) -> &mut [f64] {
        self.expr_consts.push(constant);
        let start = self.expr_coeffs.len();
        self.expr_coeffs.resize(start + self.n, 0.0);
        &mut self.expr_coeffs[start..]
    }

    /// Appends a zeroed constraint row `coeffs · x (op) rhs` and returns
    /// its coefficient slice for in-place filling.
    pub fn push_constraint(&mut self, op: ConstraintOp, rhs: f64) -> &mut [f64] {
        self.cons_ops.push(op);
        self.cons_rhs.push(rhs);
        let start = self.cons_coeffs.len();
        self.cons_coeffs.resize(start + self.n, 0.0);
        &mut self.cons_coeffs[start..]
    }

    /// Adds one expression under the max.
    pub fn add_max_term(&mut self, expr: AffineExpr) {
        assert_eq!(expr.coeffs.len(), self.n);
        self.push_max_term(expr.constant)
            .copy_from_slice(&expr.coeffs);
    }

    /// Adds a side constraint `coeffs · x (op) rhs`.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) {
        assert_eq!(coeffs.len(), self.n);
        self.push_constraint(op, rhs).copy_from_slice(&coeffs);
    }

    /// Iterates the max terms as `(constant, coeffs)` pairs.
    pub fn max_terms(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.expr_consts
            .iter()
            .zip(self.expr_coeffs.chunks_exact(self.n.max(1)))
            .map(|(&c, row)| (c, row))
    }

    /// Solves via the epigraph LP: variables `[x₀..xₙ₋₁, t]`, minimize
    /// `t` subject to `coeffs·x − t ≤ −constant` per max term plus the
    /// side constraints. Rows are lowered straight into the simplex
    /// tableau — no intermediate program is materialized.
    pub fn solve(&self) -> Result<MinMaxSolution, LpError> {
        assert!(!self.expr_consts.is_empty(), "no max terms");
        let n = self.n;
        let nv = n + 1;
        let n_terms = self.expr_consts.len();
        let m = n_terms + self.cons_ops.len();
        let t = Tableau::build_from(nv, m, |i| {
            if i < n_terms {
                RawRow {
                    coeffs: &self.expr_coeffs[i * n..(i + 1) * n],
                    extra: Some(-1.0),
                    op: ConstraintOp::Le,
                    rhs: -self.expr_consts[i],
                }
            } else {
                let k = i - n_terms;
                RawRow {
                    coeffs: &self.cons_coeffs[k * n..(k + 1) * n],
                    extra: Some(0.0),
                    op: self.cons_ops[k],
                    rhs: self.cons_rhs[k],
                }
            }
        });
        let mut objective = vec![0.0; nv];
        objective[n] = 1.0;
        let sol = t.solve(&objective)?;
        Ok(MinMaxSolution {
            max_value: sol.objective,
            x: sol.x[..n].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_two_machines() {
        // Split 10 units between two machines with speeds 1 and 2:
        // min max(x₀, 2x₁) s.t. x₀ + x₁ = 10 → x = (20/3, 10/3), max 20/3.
        let mut b = MinMaxBuilder::new(2);
        b.add_max_term(AffineExpr {
            constant: 0.0,
            coeffs: vec![1.0, 0.0],
        });
        b.add_max_term(AffineExpr {
            constant: 0.0,
            coeffs: vec![0.0, 2.0],
        });
        b.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 10.0);
        let s = b.solve().unwrap();
        assert!((s.max_value - 20.0 / 3.0).abs() < 1e-6);
        assert!((s.x[0] - 20.0 / 3.0).abs() < 1e-6);
        assert!((s.x[1] - 10.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn constants_shift_the_balance() {
        // Device 1 has a fixed overhead (e.g. network beta): it receives
        // less load. min max(x₀, 3 + x₁) s.t. x₀+x₁ = 10 → x=(6.5, 3.5).
        let mut b = MinMaxBuilder::new(2);
        b.add_max_term(AffineExpr {
            constant: 0.0,
            coeffs: vec![1.0, 0.0],
        });
        b.add_max_term(AffineExpr {
            constant: 3.0,
            coeffs: vec![0.0, 1.0],
        });
        b.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 10.0);
        let s = b.solve().unwrap();
        assert!((s.x[0] - 6.5).abs() < 1e-6, "x0 = {}", s.x[0]);
        assert!((s.max_value - 6.5).abs() < 1e-6);
    }

    #[test]
    fn capacity_forces_spill() {
        // Fast device capped at 4 units: the rest spills to the slow one.
        let mut b = MinMaxBuilder::new(2);
        b.add_max_term(AffineExpr {
            constant: 0.0,
            coeffs: vec![1.0, 0.0],
        });
        b.add_max_term(AffineExpr {
            constant: 0.0,
            coeffs: vec![0.0, 5.0],
        });
        b.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 10.0);
        b.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 4.0);
        let s = b.solve().unwrap();
        assert!((s.x[0] - 4.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
        assert!((s.max_value - 30.0).abs() < 1e-6);
    }

    #[test]
    fn eval_matches_solution() {
        let mut b = MinMaxBuilder::new(3);
        for i in 0..3 {
            let mut coeffs = vec![0.0; 3];
            coeffs[i] = (i + 1) as f64;
            b.add_max_term(AffineExpr {
                constant: 0.1 * i as f64,
                coeffs,
            });
        }
        b.add_constraint(vec![1.0, 1.0, 1.0], ConstraintOp::Eq, 6.0);
        let s = b.solve().unwrap();
        let max_eval = b
            .max_terms()
            .map(|(c, coeffs)| {
                c + coeffs
                    .iter()
                    .zip(s.x.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max_eval - s.max_value).abs() < 1e-6);
    }

    #[test]
    fn regression_six_device_balance_stays_nonnegative() {
        // Regression: an earlier Dantzig-rule pivot with epsilon-fuzzy
        // tie-breaking returned a negative variable and a 10x-suboptimal
        // objective on this shape (4 fast + 2 slow devices, dispatcher-like
        // coefficients in ms/heads/GB units).
        let n = 6;
        let nv = 2 * n;
        let mut b = MinMaxBuilder::new(nv);
        for i in 0..n {
            let (a, bb, c) = if i < 4 {
                (4e-6, 0.8, 8e-3)
            } else {
                (16e-6, 3.0, 30e-3)
            };
            let mut coeffs = vec![0.0; nv];
            coeffs[i] = a;
            coeffs[n + i] = bb;
            b.add_max_term(AffineExpr {
                constant: c,
                coeffs,
            });
            let mut cap = vec![0.0; nv];
            cap[n + i] = 1.0;
            b.add_constraint(cap, ConstraintOp::Le, 1.0);
        }
        let mut hrow = vec![0.0; nv];
        let mut grow = vec![0.0; nv];
        for i in 0..n {
            hrow[i] = 1.0;
            grow[n + i] = 1.0;
        }
        b.add_constraint(hrow, ConstraintOp::Eq, 240.0);
        b.add_constraint(grow, ConstraintOp::Eq, 0.37);
        let s = b.solve().unwrap();
        for (i, &x) in s.x.iter().enumerate() {
            assert!(x >= -1e-9, "x[{i}] = {x} negative");
        }
        // Perfect balance across the 4 fast devices bounds the optimum:
        // pushing all g onto them costs ≈ 0.8·0.37/4 + c ≈ 0.082 ms.
        assert!(s.max_value < 0.12, "suboptimal: {}", s.max_value);
        assert!(s.max_value > 0.05);
    }

    #[test]
    fn infeasible_propagates() {
        let mut b = MinMaxBuilder::new(1);
        b.add_max_term(AffineExpr {
            constant: 0.0,
            coeffs: vec![1.0],
        });
        b.add_constraint(vec![1.0], ConstraintOp::Eq, 5.0);
        b.add_constraint(vec![1.0], ConstraintOp::Le, 3.0);
        assert_eq!(b.solve().unwrap_err(), LpError::Infeasible);
    }
}
