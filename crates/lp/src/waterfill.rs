//! Structure-exploiting water-fill solver for the Dispatcher's Eq. (7).
//!
//! The generic epigraph LP treats Eq. (7) as an opaque `min max` over
//! `j·n` variables and grinds through two-phase simplex pivots. But the
//! dispatch problem has rigid structure:
//!
//! * exactly **one affine max term per device** — `fᵢ = cᵢ + Σⱼ tᵢⱼ·xᵢⱼ`
//!   with a rank-2 cost `tᵢⱼ = αᵢ·pⱼ + βᵢ·qⱼ` (per-head base plus
//!   context-proportional attention time, Eq. 3),
//! * exactly **one capacity row per device** — `Σⱼ uⱼ·xᵢⱼ ≤ capᵢ`
//!   (Eq. 7b, request-dependent coefficient, device-dependent rhs),
//! * exactly **one equality per demand** — `Σᵢ xᵢⱼ = Hⱼ` (Eq. 7c).
//!
//! [`WaterFill`] solves this parametrically: raise the common
//! finish-time level τ and test whether all head demand fits under the
//! per-device time budgets `τ − cᵢ`. The rank-2 cost makes the
//! fixed-level assignment a *Monge* transportation problem — sorting
//! devices by `βᵢ/αᵢ` ascending and demands by `qⱼ/pⱼ` descending, an
//! exchange argument shows a northwest-corner greedy (long-context
//! demand onto low-`β/α` devices first, each device filled to budget) is
//! an exact feasibility oracle. Bisection over τ then converges to the
//! LP optimum in O((n+j)·log(1/ε)) after one O(n log n + j log j) sort —
//! no tableau, no pivots.
//!
//! Capacity is handled by certification: the uncapacitated level τ* is a
//! lower bound on the capacitated optimum, so if the final greedy pass
//! (which does respect capacities) places all demand at τ*, that
//! solution is optimal for the full Eq. (7). When capacity genuinely
//! binds — or a device bans some demands but not others — the solver
//! reports [`WfOutcome::CapacityBound`] and the caller falls back to the
//! simplex oracle. Zero-capacity devices whose exclusion is uniform
//! (every demand consumes capacity, the §5.3.2 banned-device case) stay
//! on the fast path: their variables are forced to zero by Eq. (7b)
//! itself, so dropping them is exact, while their constants still floor
//! the objective.

use crate::minmax::MinMaxSolution;

/// One device of the structured Eq. (7) instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct WfDevice {
    /// Fixed time already committed on the device (resident load, β-term
    /// of the link model): the constant of its max term.
    pub constant: f64,
    /// Per-unit time cost multiplying a demand's `p` weight.
    pub alpha: f64,
    /// Per-unit time cost multiplying a demand's `q` weight.
    pub beta: f64,
    /// Capacity rhs: `Σⱼ uⱼ·xᵢⱼ ≤ capacity`.
    pub capacity: f64,
}

/// One demand (request) of the structured Eq. (7) instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct WfDemand {
    /// Units to place (query heads): the Eq. (7c) equality rhs.
    pub amount: f64,
    /// Weight on the device `alpha` cost (1 for head dispatch).
    pub p: f64,
    /// Weight on the device `beta` cost (context-scaled attention load).
    pub q: f64,
    /// Capacity consumed per unit (full-context KV bytes).
    pub u: f64,
}

/// Outcome of a [`WaterFill::solve`].
#[derive(Debug, Clone)]
pub enum WfOutcome {
    /// Optimal solution found on the fast path; `x` is laid out
    /// `x[j*n + i]` like the epigraph LP the Dispatcher poses.
    Solved(MinMaxSolution),
    /// A capacity row binds at the uncapacitated optimum (or exclusions
    /// are non-uniform): the caller must fall back to the generic LP.
    CapacityBound,
    /// No device can host the demand at all.
    Infeasible,
}

/// Reusable water-fill workspace: push devices and demands, then
/// [`WaterFill::solve`]. All internal buffers survive
/// [`WaterFill::clear`] so per-iteration dispatch never reallocates.
#[derive(Debug, Clone, Default)]
pub struct WaterFill {
    devices: Vec<WfDevice>,
    demands: Vec<WfDemand>,
    // scratch, reused across solves
    dev_order: Vec<usize>,
    dem_order: Vec<usize>,
    remaining: Vec<f64>,
    cap_left: Vec<f64>,
    x: Vec<f64>,
}

/// Bisection iteration cap; with a halving interval this is far past
/// f64 convergence and only guards against pathological inputs.
const MAX_BISECT: usize = 200;

impl WaterFill {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all devices and demands, keeping buffer capacity.
    pub fn clear(&mut self) {
        self.devices.clear();
        self.demands.clear();
    }

    /// Adds one device (max term + capacity row).
    pub fn push_device(&mut self, d: WfDevice) {
        debug_assert!(d.alpha >= 0.0 && d.beta >= 0.0, "negative device cost");
        self.devices.push(d);
    }

    /// Adds one demand (head-integrity equality).
    pub fn push_demand(&mut self, d: WfDemand) {
        debug_assert!(
            d.amount >= 0.0 && d.p >= 0.0 && d.q >= 0.0 && d.u >= 0.0,
            "negative demand parameter"
        );
        self.demands.push(d);
    }

    /// Solves the posed instance. See the module docs for the algorithm
    /// and the exactness argument.
    pub fn solve(&mut self) -> WfOutcome {
        let n = self.devices.len();
        let j = self.demands.len();
        let total_demand: f64 = self.demands.iter().map(|d| d.amount).sum();
        // The objective can be negative when device constants are (the
        // dispatcher's never are, but the API allows it): fold the
        // constant floor from -inf, not 0.
        let floor = self
            .devices
            .iter()
            .fold(f64::NEG_INFINITY, |acc, d| acc.max(d.constant));
        self.x.clear();
        self.x.resize(j * n, 0.0);
        if total_demand <= 0.0 {
            return WfOutcome::Solved(MinMaxSolution {
                x: self.x.clone(),
                max_value: if n == 0 { 0.0 } else { floor },
            });
        }
        if n == 0 {
            return WfOutcome::Infeasible;
        }

        // Exclusions: a zero-capacity device is exact to drop only when
        // *every* positive demand consumes capacity on it; a mixed case
        // (some u = 0) breaks the staircase structure — fall back.
        let every_u_positive = self.demands.iter().all(|d| d.amount <= 0.0 || d.u > 0.0);
        let any_u_positive = self.demands.iter().any(|d| d.amount > 0.0 && d.u > 0.0);
        self.dev_order.clear();
        for (i, d) in self.devices.iter().enumerate() {
            if d.capacity <= 0.0 && any_u_positive {
                if !every_u_positive {
                    return WfOutcome::CapacityBound;
                }
                continue; // banned device: x_i· = 0 is forced by (7b)
            }
            self.dev_order.push(i);
        }
        if self.dev_order.is_empty() {
            return WfOutcome::CapacityBound;
        }

        // Monge order: devices by β/α ascending, demands by q/p
        // descending. The ratios are compared as projective directions
        // via cross-products, which is a total order on *nonzero*
        // weight vectors only — an all-zero vector has zero cross
        // product against everything and would make the comparator
        // non-transitive (arbitrary sort output, and wrong relative
        // order among the nonzero rows). Zero-cost rows are therefore a
        // separate class: cost-free devices lead (they absorb any
        // demand without spending budget, so any position is exact —
        // first is canonical), cost-free demands trail (they consume no
        // budget wherever they land). Within each class, ties break by
        // index for determinism.
        let devices = &self.devices;
        self.dev_order.sort_by(|&a, &b| {
            let (da, db) = (&devices[a], &devices[b]);
            match (
                da.alpha == 0.0 && da.beta == 0.0,
                db.alpha == 0.0 && db.beta == 0.0,
            ) {
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                _ => (da.beta * db.alpha)
                    .partial_cmp(&(db.beta * da.alpha))
                    .expect("finite device costs")
                    .then(a.cmp(&b)),
            }
        });
        self.dem_order.clear();
        self.dem_order
            .extend((0..j).filter(|&k| self.demands[k].amount > 0.0));
        let demands = &self.demands;
        self.dem_order.sort_by(|&a, &b| {
            let (da, db) = (&demands[a], &demands[b]);
            match (da.p == 0.0 && da.q == 0.0, db.p == 0.0 && db.q == 0.0) {
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                _ => (db.q * da.p)
                    .partial_cmp(&(da.q * db.p))
                    .expect("finite demand weights")
                    .then(a.cmp(&b)),
            }
        });

        // Feasible upper bound: each demand fully on its cheapest device.
        let mut hi = floor;
        {
            self.remaining.clear();
            self.remaining.resize(n, 0.0); // per-device single-assignment load
            for &k in &self.dem_order {
                let d = &self.demands[k];
                let best = self
                    .dev_order
                    .iter()
                    .map(|&i| (i, self.devices[i].alpha * d.p + self.devices[i].beta * d.q))
                    .min_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .expect("finite cost")
                            .then(a.0.cmp(&b.0))
                    })
                    .expect("non-empty device order");
                self.remaining[best.0] += d.amount * best.1;
            }
            for &i in &self.dev_order {
                hi = hi.max(self.devices[i].constant + self.remaining[i]);
            }
        }

        // Bisect the level τ between the constant floor and the feasible
        // upper bound; the greedy oracle is exact, so this converges to
        // the uncapacitated LP optimum.
        let mut lo = floor;
        for _ in 0..MAX_BISECT {
            let tol = 1e-11 * hi.abs().max(1.0);
            if hi - lo <= tol {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if self.level_feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }

        // Final capacity-respecting greedy at the converged level. If it
        // places everything, the solution matches the uncapacitated
        // lower bound and is therefore optimal for the capacitated
        // problem; otherwise capacity binds and the LP must decide.
        if !self.fill_solution(hi) {
            return WfOutcome::CapacityBound;
        }
        let mut max_value = f64::NEG_INFINITY;
        for (i, d) in self.devices.iter().enumerate() {
            let mut f = d.constant;
            for (k, dem) in self.demands.iter().enumerate() {
                let xv = self.x[k * n + i];
                if xv > 0.0 {
                    f += (d.alpha * dem.p + d.beta * dem.q) * xv;
                }
            }
            max_value = max_value.max(f);
        }
        WfOutcome::Solved(MinMaxSolution {
            x: self.x.clone(),
            max_value,
        })
    }

    /// Exact uncapacitated feasibility oracle at level `tau`:
    /// northwest-corner greedy over the Monge orders. O(n + j).
    fn level_feasible(&mut self, tau: f64) -> bool {
        self.remaining.clear();
        self.remaining.extend(self.demands.iter().map(|d| d.amount));
        let mut next = 0usize; // index into dem_order
        for &i in &self.dev_order {
            let dev = &self.devices[i];
            let mut budget = (tau - dev.constant).max(0.0);
            while next < self.dem_order.len() {
                let k = self.dem_order[next];
                let d = &self.demands[k];
                let t = dev.alpha * d.p + dev.beta * d.q;
                let rem = self.remaining[k];
                if t <= 0.0 {
                    // Costless cell: absorb the whole demand for free.
                    self.remaining[k] = 0.0;
                    next += 1;
                    continue;
                }
                let take = rem.min(budget / t).max(0.0);
                self.remaining[k] = rem - take;
                budget -= take * t;
                if take < rem {
                    break; // budget exhausted; next device continues here
                }
                next += 1;
            }
            if next >= self.dem_order.len() {
                return true;
            }
        }
        false
    }

    /// Capacity-respecting greedy at level `tau`, recording `x`. Returns
    /// false when capacity prevents placing all demand at this level.
    fn fill_solution(&mut self, tau: f64) -> bool {
        let n = self.devices.len();
        self.x.clear();
        self.x.resize(self.demands.len() * n, 0.0);
        self.remaining.clear();
        self.remaining.extend(self.demands.iter().map(|d| d.amount));
        self.cap_left.clear();
        self.cap_left
            .extend(self.devices.iter().map(|d| d.capacity));
        let mut first_unserved = 0usize; // index into dem_order
        for &i in &self.dev_order {
            let dev = &self.devices[i];
            let mut budget = (tau - dev.constant).max(0.0);
            for pos in first_unserved..self.dem_order.len() {
                let k = self.dem_order[pos];
                let d = &self.demands[k];
                let rem = self.remaining[k];
                if rem <= 0.0 {
                    continue;
                }
                let t = dev.alpha * d.p + dev.beta * d.q;
                let mut take = if t <= 0.0 { rem } else { rem.min(budget / t) };
                if d.u > 0.0 {
                    take = take.min(self.cap_left[i] / d.u);
                }
                let take = take.max(0.0);
                if take > 0.0 {
                    self.x[k * n + i] += take;
                    self.remaining[k] = rem - take;
                    if t > 0.0 {
                        budget -= take * t;
                    }
                    if d.u > 0.0 {
                        self.cap_left[i] -= take * d.u;
                    }
                }
                if budget <= 0.0 && t > 0.0 {
                    break;
                }
            }
            while first_unserved < self.dem_order.len()
                && self.remaining[self.dem_order[first_unserved]] <= 0.0
            {
                first_unserved += 1;
            }
            if first_unserved >= self.dem_order.len() {
                return true;
            }
        }
        first_unserved >= self.dem_order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solved(wf: &mut WaterFill) -> MinMaxSolution {
        match wf.solve() {
            WfOutcome::Solved(s) => s,
            other => panic!("expected fast-path solve, got {other:?}"),
        }
    }

    #[test]
    fn balances_two_machines() {
        // min max(x₀, 2x₁) s.t. x₀+x₁ = 10 → max 20/3 (same instance as
        // the MinMaxBuilder unit test).
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            alpha: 1.0,
            capacity: f64::INFINITY,
            ..Default::default()
        });
        wf.push_device(WfDevice {
            alpha: 2.0,
            capacity: f64::INFINITY,
            ..Default::default()
        });
        wf.push_demand(WfDemand {
            amount: 10.0,
            p: 1.0,
            ..Default::default()
        });
        let s = solved(&mut wf);
        assert!((s.max_value - 20.0 / 3.0).abs() < 1e-6, "{}", s.max_value);
        assert!((s.x[0] - 20.0 / 3.0).abs() < 1e-6);
        assert!((s.x[1] - 10.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn constants_shift_the_balance() {
        // Device 1 has fixed overhead 3: x = (6.5, 3.5), max 6.5.
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            alpha: 1.0,
            capacity: f64::INFINITY,
            ..Default::default()
        });
        wf.push_device(WfDevice {
            constant: 3.0,
            alpha: 1.0,
            capacity: f64::INFINITY,
            ..Default::default()
        });
        wf.push_demand(WfDemand {
            amount: 10.0,
            p: 1.0,
            ..Default::default()
        });
        let s = solved(&mut wf);
        assert!((s.max_value - 6.5).abs() < 1e-6, "{}", s.max_value);
        assert!((s.x[0] - 6.5).abs() < 1e-6, "{}", s.x[0]);
    }

    #[test]
    fn request_differentiation_beats_proportional_split() {
        // Device A charges per head (α=1, β=0), device B per context
        // token (α=0, β=1). The long request must go to A and the short
        // one to B: optimum 1.0; a proportional split would give ≈1.69.
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            alpha: 1.0,
            capacity: f64::INFINITY,
            ..Default::default()
        });
        wf.push_device(WfDevice {
            beta: 1.0,
            capacity: f64::INFINITY,
            ..Default::default()
        });
        wf.push_demand(WfDemand {
            amount: 1.0,
            p: 1.0,
            q: 10.0,
            ..Default::default()
        });
        wf.push_demand(WfDemand {
            amount: 1.0,
            p: 1.0,
            q: 1.0,
            ..Default::default()
        });
        let s = solved(&mut wf);
        assert!((s.max_value - 1.0).abs() < 1e-6, "{}", s.max_value);
    }

    #[test]
    fn banned_device_stays_empty() {
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            alpha: 1.0,
            capacity: 0.0, // banned
            ..Default::default()
        });
        wf.push_device(WfDevice {
            alpha: 2.0,
            capacity: 1e9,
            ..Default::default()
        });
        wf.push_demand(WfDemand {
            amount: 8.0,
            p: 1.0,
            u: 1.0,
            ..Default::default()
        });
        let s = solved(&mut wf);
        assert_eq!(s.x[0], 0.0);
        assert!((s.x[1] - 8.0).abs() < 1e-9);
        assert!((s.max_value - 16.0).abs() < 1e-6);
    }

    #[test]
    fn binding_capacity_reports_fallback() {
        // Fast device capped at 4 units: the uncapacitated optimum loads
        // it beyond that, so the solver must hand over to the LP.
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            alpha: 1.0,
            capacity: 4.0,
            ..Default::default()
        });
        wf.push_device(WfDevice {
            alpha: 5.0,
            capacity: 100.0,
            ..Default::default()
        });
        wf.push_demand(WfDemand {
            amount: 10.0,
            p: 1.0,
            u: 1.0,
            ..Default::default()
        });
        assert!(matches!(wf.solve(), WfOutcome::CapacityBound));
    }

    #[test]
    fn zero_weight_demand_does_not_scramble_the_monge_order() {
        // Regression: a (p=0, q=0) demand has zero cross-products against
        // every other demand, which made the old comparator
        // non-transitive — sort_by could then mis-order the *nonzero*
        // demands and the greedy oracle stopped being exact (observed
        // 31% above the LP optimum on this instance). Cost-free rows now
        // form their own ordering class.
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            constant: 2.803,
            alpha: 1.1205,
            beta: 1.5048,
            capacity: 1e9,
        });
        wf.push_device(WfDevice {
            constant: 3.393,
            alpha: 0.7586,
            beta: 0.3823,
            capacity: 1e9,
        });
        wf.push_demand(WfDemand {
            amount: 37.55,
            p: 1.0,
            q: 0.0,
            u: 0.62,
        });
        wf.push_demand(WfDemand {
            amount: 30.87,
            p: 0.0,
            q: 0.0,
            u: 0.0,
        });
        wf.push_demand(WfDemand {
            amount: 25.64,
            p: 0.0,
            q: 2.539,
            u: 2.446,
        });
        let s = solved(&mut wf);
        // Simplex optimum for this instance (cross-checked externally).
        let mut b = crate::minmax::MinMaxBuilder::new(6);
        let devices = [(2.803, 1.1205, 1.5048), (3.393, 0.7586, 0.3823)];
        let demands = [(37.55, 1.0, 0.0), (30.87, 0.0, 0.0), (25.64, 0.0, 2.539)];
        for (i, &(c, a, bb)) in devices.iter().enumerate() {
            let row = b.push_max_term(c);
            for (k, &(_, p, q)) in demands.iter().enumerate() {
                row[k * 2 + i] = a * p + bb * q;
            }
        }
        for (k, &(amt, ..)) in demands.iter().enumerate() {
            let row = b.push_constraint(crate::simplex::ConstraintOp::Eq, amt);
            row[k * 2] = 1.0;
            row[k * 2 + 1] = 1.0;
        }
        let lp = b.solve().unwrap();
        assert!(
            (s.max_value - lp.max_value).abs() <= 1e-6 * lp.max_value.abs().max(1.0),
            "waterfill {} vs simplex {}",
            s.max_value,
            lp.max_value
        );
        // Zero-cost devices must likewise stay a separate class.
        let mut wf2 = WaterFill::new();
        wf2.push_device(WfDevice {
            alpha: 0.0,
            beta: 0.0,
            capacity: 1e9,
            ..Default::default()
        });
        wf2.push_device(WfDevice {
            alpha: 1.0,
            beta: 0.5,
            capacity: 1e9,
            ..Default::default()
        });
        wf2.push_device(WfDevice {
            alpha: 0.5,
            beta: 1.0,
            capacity: 1e9,
            ..Default::default()
        });
        wf2.push_demand(WfDemand {
            amount: 10.0,
            p: 1.0,
            q: 3.0,
            u: 1.0,
        });
        let s2 = solved(&mut wf2);
        // The free device absorbs everything: optimum is the zero floor.
        assert!(s2.max_value.abs() < 1e-9, "{}", s2.max_value);
    }

    #[test]
    fn zero_demand_returns_constant_floor() {
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            constant: 0.25,
            alpha: 1.0,
            capacity: 1.0,
            ..Default::default()
        });
        let s = solved(&mut wf);
        assert_eq!(s.max_value, 0.25);
        assert!(s.x.is_empty());
    }

    #[test]
    fn negative_constants_produce_negative_objectives() {
        // Regression: the objective used to be clamped at 0 by folding
        // the constant floor (and the final max) from 0.0.
        let mut wf = WaterFill::new();
        wf.push_device(WfDevice {
            constant: -5.0,
            alpha: 1.0,
            capacity: f64::INFINITY,
            ..Default::default()
        });
        wf.push_demand(WfDemand {
            amount: 4.0,
            p: 1.0,
            ..Default::default()
        });
        let s = solved(&mut wf);
        assert!((s.max_value - (-1.0)).abs() < 1e-6, "{}", s.max_value);
        // Zero demand reports the (negative) constant floor too.
        let mut wf2 = WaterFill::new();
        wf2.push_device(WfDevice {
            constant: -2.0,
            alpha: 1.0,
            capacity: 1.0,
            ..Default::default()
        });
        let s2 = solved(&mut wf2);
        assert_eq!(s2.max_value, -2.0);
    }

    #[test]
    fn no_devices_is_infeasible() {
        let mut wf = WaterFill::new();
        wf.push_demand(WfDemand {
            amount: 1.0,
            p: 1.0,
            ..Default::default()
        });
        assert!(matches!(wf.solve(), WfOutcome::Infeasible));
    }

    #[test]
    fn clear_reuses_buffers() {
        let mut wf = WaterFill::new();
        for _ in 0..3 {
            wf.clear();
            wf.push_device(WfDevice {
                alpha: 1.0,
                capacity: f64::INFINITY,
                ..Default::default()
            });
            wf.push_demand(WfDemand {
                amount: 4.0,
                p: 1.0,
                ..Default::default()
            });
            let s = solved(&mut wf);
            assert!((s.max_value - 4.0).abs() < 1e-6);
        }
    }
}
