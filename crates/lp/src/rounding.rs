//! Integral rounding of fractional head allocations.
//!
//! The LP relaxation hands back fractional per-device query-head counts;
//! Eq. (5) demands `xᵢʲ/r ∈ ℕ` — whole KV-head groups. Largest-remainder
//! rounding preserves the total exactly and respects per-device caps.

/// Rounds a fractional allocation `x` (query heads per device, one request)
/// to multiples of `r` that sum to exactly `total` query heads, without
/// exceeding `cap[i]` additional query heads on device `i`.
///
/// Returns `None` when the caps cannot accommodate the total at all.
///
/// Algorithm: convert to group units (`x/r`), floor, then hand out the
/// remaining groups by largest fractional remainder among devices with cap
/// headroom; if remainders tie, lower index wins (deterministic).
pub fn round_to_groups(x: &[f64], r: u32, total: u32, cap: &[u32]) -> Option<Vec<u32>> {
    assert_eq!(x.len(), cap.len());
    assert!(r > 0);
    assert!(
        total.is_multiple_of(r),
        "total heads {total} not a multiple of group ratio {r}"
    );
    let groups_needed = total / r;
    let n = x.len();

    // Cap in group units (floor: a partial group is unusable).
    let cap_groups: Vec<u32> = cap.iter().map(|&c| c / r).collect();
    if cap_groups.iter().map(|&c| c as u64).sum::<u64>() < groups_needed as u64 {
        return None;
    }

    let mut alloc: Vec<u32> = Vec::with_capacity(n);
    let mut frac: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0u32;
    for i in 0..n {
        let g = (x[i].max(0.0) / r as f64).min(cap_groups[i] as f64);
        let fl = g.floor() as u32;
        let fl = fl.min(cap_groups[i]);
        alloc.push(fl);
        assigned += fl;
        frac.push((i, g - fl as f64));
    }

    // Too many groups floored (possible when caps clipped upward elsewhere):
    // trim from the smallest fractional parts.
    while assigned > groups_needed {
        let victim = frac
            .iter()
            .filter(|&&(i, _)| alloc[i] > 0)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .map(|&(i, _)| i)?;
        alloc[victim] -= 1;
        assigned -= 1;
    }

    // Distribute the remainder by largest fractional part (stable order).
    frac.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut k = 0;
    while assigned < groups_needed {
        let mut placed = false;
        for &(i, _) in frac.iter().cycle().skip(k).take(n) {
            k = (k + 1) % n;
            if alloc[i] < cap_groups[i] {
                alloc[i] += 1;
                assigned += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            return None; // caps exhausted — cannot happen given the sum check
        }
    }

    Some(alloc.iter().map(|&g| g * r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fractions_preserved() {
        // 64 heads, r=8, fractional [32, 32] → unchanged.
        let out = round_to_groups(&[32.0, 32.0], 8, 64, &[64, 64]).unwrap();
        assert_eq!(out, vec![32, 32]);
    }

    #[test]
    fn sums_to_total() {
        let x = [13.3, 21.9, 28.8];
        let out = round_to_groups(&x, 8, 64, &[64, 64, 64]).unwrap();
        assert_eq!(out.iter().sum::<u32>(), 64);
        assert!(out.iter().all(|&h| h % 8 == 0));
    }

    #[test]
    fn respects_caps() {
        // Device 0 can only take 8 heads (1 group).
        let out = round_to_groups(&[40.0, 24.0], 8, 64, &[8, 64]).unwrap();
        assert!(out[0] <= 8);
        assert_eq!(out.iter().sum::<u32>(), 64);
    }

    #[test]
    fn infeasible_caps() {
        assert!(round_to_groups(&[32.0, 32.0], 8, 64, &[8, 8]).is_none());
    }

    #[test]
    fn cap_floor_partial_groups_unusable() {
        // cap 7 with r=8 means zero usable groups.
        assert!(round_to_groups(&[64.0], 8, 64, &[63]).is_none());
        let out = round_to_groups(&[64.0], 8, 64, &[64]).unwrap();
        assert_eq!(out, vec![64]);
    }

    #[test]
    fn mha_r1() {
        let out = round_to_groups(&[10.4, 9.6, 20.0], 1, 40, &[40, 40, 40]).unwrap();
        assert_eq!(out.iter().sum::<u32>(), 40);
        // Largest remainder (0.6 on idx1... wait: fractions .4, .6, .0) →
        // the extra unit goes to index 1.
        assert_eq!(out, vec![10, 10, 20]);
    }

    #[test]
    fn deterministic_ties() {
        let a = round_to_groups(&[10.5, 10.5, 11.0], 1, 32, &[32, 32, 32]).unwrap();
        let b = round_to_groups(&[10.5, 10.5, 11.0], 1, 32, &[32, 32, 32]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn overfloor_trim() {
        // Fractions already exceed the target after clipping to caps: the
        // function trims deterministically.
        let out = round_to_groups(&[16.0, 16.0], 8, 24, &[64, 64]).unwrap();
        assert_eq!(out.iter().sum::<u32>(), 24);
    }

    #[test]
    #[should_panic]
    fn total_must_be_group_multiple() {
        let _ = round_to_groups(&[10.0], 8, 12, &[64]);
    }
}
