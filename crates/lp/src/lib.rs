//! LP solvers for the Hetis Dispatcher: a structure-exploiting
//! water-fill fast path and a dense two-phase simplex oracle.
//!
//! The Hetis Dispatcher solves, on every batch of newly arrived requests,
//! the head-wise dispatching problem of Eq. (7): minimize the *maximum*
//! per-device attention time subject to per-device cache capacity and a
//! per-request head-count equality. The paper hands this to cvxpy/MOSEK;
//! we implement:
//!
//! * [`waterfill`] — the default fast path: Eq. (7)'s special structure
//!   (one affine max term per device, one capacity row per device, one
//!   equality per request, rank-2 costs) reduces to parametric
//!   water-filling with a Monge-greedy feasibility oracle — no tableau,
//!   no pivots. Falls back to simplex when capacity genuinely binds.
//! * [`simplex`] — a dense two-phase primal simplex with Bland's rule on
//!   a single flat row-major tableau (these LPs have a handful of
//!   variables per request × device, so dense is the right choice);
//!   retained as the exact oracle the fast path is property-tested
//!   against,
//! * [`minmax`] — the epigraph transformation `min t s.t. fᵢ(x) ≤ t`,
//!   with flat row storage so a long-lived builder solves without
//!   per-row allocation,
//! * [`rounding`] — largest-remainder rounding of fractional head counts
//!   to multiples of the GQA group ratio `r`, respecting capacities
//!   (Eq. 5's integrality requirement `xᵢʲ/r ∈ ℕ`).

pub mod minmax;
pub mod rounding;
pub mod simplex;
pub mod waterfill;

pub use minmax::{AffineExpr, MinMaxBuilder, MinMaxSolution};
pub use rounding::round_to_groups;
pub use simplex::{Constraint, ConstraintOp, LinearProgram, LpError, LpSolution};
pub use waterfill::{WaterFill, WfDemand, WfDevice, WfOutcome};
