//! Dense two-phase simplex LP solver with a min–max front-end.
//!
//! The Hetis Dispatcher solves, on every batch of newly arrived requests,
//! the head-wise dispatching problem of Eq. (7): minimize the *maximum*
//! per-device attention time subject to per-device cache capacity and a
//! per-request head-count equality. The paper hands this to cvxpy/MOSEK; we
//! implement the textbook equivalent:
//!
//! * [`simplex`] — a dense two-phase primal simplex with Bland's rule
//!   (these LPs have a handful of variables per request × device, so dense
//!   is the right choice),
//! * [`minmax`] — the epigraph transformation `min t s.t. fᵢ(x) ≤ t`,
//! * [`rounding`] — largest-remainder rounding of fractional head counts
//!   to multiples of the GQA group ratio `r`, respecting capacities
//!   (Eq. 5's integrality requirement `xᵢʲ/r ∈ ℕ`).

pub mod minmax;
pub mod rounding;
pub mod simplex;

pub use minmax::{AffineExpr, MinMaxBuilder, MinMaxSolution};
pub use rounding::round_to_groups;
pub use simplex::{Constraint, ConstraintOp, LinearProgram, LpError, LpSolution};
