//! Dense two-phase primal simplex.
//!
//! Solves `min c·x  s.t.  Aᵢx {≤,≥,=} bᵢ,  x ≥ 0` on a dense tableau.
//! Pivot selection uses Dantzig's rule with a Bland's-rule fallback after a
//! degeneracy streak, guaranteeing termination. Designed for the small
//! (tens of variables × tens of constraints) problems the Dispatcher
//! produces; everything is `Vec<f64>`-dense on purpose.

/// Relational operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

/// One constraint `coeffs · x (op) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficient per decision variable.
    pub coeffs: Vec<f64>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program in the solver's canonical orientation:
/// minimize `objective · x` over `x ≥ 0` subject to [`Constraint`]s.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Objective coefficients (minimized).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// Solver outcome for feasible bounded programs.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal primal point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// Structural problem (e.g. mismatched dimensions).
    Malformed(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::Malformed(m) => write!(f, "malformed LP: {m}"),
        }
    }
}

impl std::error::Error for LpError {}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// A program over `n` variables with a zero objective.
    pub fn new(n: usize) -> Self {
        LinearProgram {
            objective: vec![0.0; n],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds `coeffs · x (op) rhs`.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) {
        self.constraints.push(Constraint { coeffs, op, rhs });
    }

    /// Solves the program.
    ///
    /// Numerical note: the tableau works in the caller's units. Callers
    /// must pose problems in *sensibly scaled* units (coefficients within
    /// a few orders of magnitude of 1); the dispatcher builds its LPs in
    /// milliseconds/heads/gigabytes for exactly this reason. Row
    /// equilibration is applied while the tableau is laid out so no
    /// single constraint dominates pivoting.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let n = self.num_vars();
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != n {
                return Err(LpError::Malformed(format!(
                    "constraint {i} has {} coeffs, expected {n}",
                    c.coeffs.len()
                )));
            }
        }
        let t = Tableau::build_from(n, self.constraints.len(), |i| {
            let c = &self.constraints[i];
            RawRow {
                coeffs: &c.coeffs,
                extra: None,
                op: c.op,
                rhs: c.rhs,
            }
        });
        t.solve(&self.objective)
    }
}

/// One unscaled constraint row handed to [`Tableau::build_from`]:
/// structural coefficients, an optional trailing extra column (the
/// min–max front-end's epigraph `t` coefficient), operator and rhs.
pub(crate) struct RawRow<'a> {
    /// Structural coefficients (without the extra column).
    pub coeffs: &'a [f64],
    /// Coefficient of the one trailing column, when the problem has one.
    pub extra: Option<f64>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Internal simplex tableau with an explicit basis. The coefficient
/// matrix is one row-major `Vec<f64>` (`m × n_total`) so pivoting walks
/// contiguous memory and row operations never allocate.
pub(crate) struct Tableau {
    a: Vec<f64>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    /// Live row count (rows can be dropped after phase 1).
    m: usize,
    n_struct: usize,
    n_total: usize,
    artificial_start: usize,
}

impl Tableau {
    /// Lays out the scaled tableau for `m` rows of `n_struct` structural
    /// columns (the extra column, when present, is column `n_struct-1`).
    /// Each row is equilibrated so its largest coefficient is ~1
    /// (direction preserved; solution unchanged).
    pub(crate) fn build_from<'a, F>(n_struct: usize, m: usize, get: F) -> Tableau
    where
        F: Fn(usize) -> RawRow<'a>,
    {
        // Count auxiliary columns; orientation (rhs ≥ 0) decides layout.
        let mut n_slack = 0;
        let mut n_art = 0;
        for i in 0..m {
            let r = get(i);
            match oriented(r.op, r.rhs) {
                ConstraintOp::Le => n_slack += 1,
                ConstraintOp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                ConstraintOp::Eq => n_art += 1,
            }
        }

        let n_total = n_struct + n_slack + n_art;
        let artificial_start = n_struct + n_slack;
        let mut a = vec![0.0; m * n_total];
        let mut rhs = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];

        let mut slack_col = n_struct;
        let mut art_col = artificial_start;
        for i in 0..m {
            let r = get(i);
            let row = &mut a[i * n_total..(i + 1) * n_total];
            let row_max = r
                .coeffs
                .iter()
                .fold(0.0f64, |acc, &v| acc.max(v.abs()))
                .max(r.extra.map_or(0.0, f64::abs))
                .max(f64::MIN_POSITIVE);
            let rhs_scaled = r.rhs / row_max;
            let sign = if rhs_scaled < 0.0 { -1.0 } else { 1.0 };
            for (dst, &v) in row.iter_mut().zip(r.coeffs.iter()) {
                *dst = sign * (v / row_max);
            }
            if let Some(e) = r.extra {
                row[n_struct - 1] = sign * (e / row_max);
            }
            rhs[i] = if rhs_scaled < 0.0 {
                -rhs_scaled
            } else {
                rhs_scaled
            };
            match oriented(r.op, r.rhs) {
                ConstraintOp::Le => {
                    row[slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_col] = -1.0; // surplus
                    slack_col += 1;
                    row[art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
                ConstraintOp::Eq => {
                    row[art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }

        Tableau {
            a,
            rhs,
            basis,
            m,
            n_struct,
            n_total,
            artificial_start,
        }
    }

    pub(crate) fn solve(mut self, objective: &[f64]) -> Result<LpSolution, LpError> {
        // ---- Phase 1: minimize the sum of artificials.
        if self.artificial_start < self.n_total {
            let mut phase1 = vec![0.0; self.n_total];
            for c in phase1.iter_mut().skip(self.artificial_start) {
                *c = 1.0;
            }
            let z = self.optimize(&phase1)?;
            if z > 1e-7 {
                return Err(LpError::Infeasible);
            }
            self.evict_artificials();
        }

        // ---- Phase 2: the real objective over structural + slack columns.
        let mut phase2 = vec![0.0; self.n_total];
        phase2[..self.n_struct].copy_from_slice(&objective[..self.n_struct]);
        let z = self.optimize(&phase2)?;

        let mut x = vec![0.0; self.n_struct];
        for (row, &col) in self.basis.iter().enumerate() {
            if col < self.n_struct {
                x[col] = self.rhs[row];
            }
        }
        Ok(LpSolution { x, objective: z })
    }

    /// Primal simplex iterations for a given cost vector; returns the
    /// optimal objective value. Artificial columns are never re-admitted
    /// once phase 1 completes (their reduced costs are forced up).
    fn optimize(&mut self, cost: &[f64]) -> Result<f64, LpError> {
        let m = self.m;
        let nt = self.n_total;
        let block_artificials = cost[..self.artificial_start]
            .iter()
            .all(|&c| c.abs() < f64::INFINITY)
            && cost[self.artificial_start..].iter().all(|&c| c == 0.0)
            && self.artificial_start < self.n_total;

        // Hard cap: Bland's rule guarantees termination, so this only
        // protects against numerical livelock.
        let max_iters = 200 * (m + self.n_total) + 1000;

        for _ in 0..max_iters {
            // Reduced costs: c_j − c_B · B⁻¹A_j. The tableau is kept in
            // canonical form, so this is a direct row combination.
            // Pivot selection is pure Bland's rule (first improving
            // column, min-ratio row with lowest basis index): slower per
            // iteration count than Dantzig but immune to cycling and to
            // the tie-break instabilities that bit the Dantzig variant on
            // badly conditioned dispatch LPs.
            let limit = if block_artificials {
                self.artificial_start
            } else {
                self.n_total
            };
            let mut entering = None;
            for j in 0..limit {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut red = cost[j];
                for (row, &bcol) in self.basis.iter().enumerate() {
                    let cb = cost[bcol];
                    if cb != 0.0 {
                        red -= cb * self.a[row * nt + j];
                    }
                }
                if red < -EPS {
                    entering = Some(j);
                    break;
                }
            }

            let Some(e) = entering else {
                // Optimal.
                let mut z = 0.0;
                for (row, &bcol) in self.basis.iter().enumerate() {
                    z += cost[bcol] * self.rhs[row];
                }
                return Ok(z);
            };

            // Exact min-ratio test; ties broken by lowest basis index.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..m {
                let aij = self.a[row * nt + e];
                if aij > EPS {
                    let ratio = self.rhs[row] / aij;
                    let better = match leaving {
                        None => true,
                        Some(l) => {
                            ratio < best_ratio
                                || (ratio == best_ratio && self.basis[row] < self.basis[l])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        leaving = Some(row);
                    }
                }
            }
            let Some(l) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(l, e);
        }
        Err(LpError::Malformed("simplex iteration cap exceeded".into()))
    }

    /// Gauss pivot on (row, col), in place: the pivot row and each target
    /// row are disjoint slices of the flat matrix, so a split borrow
    /// replaces the old per-pivot row clone.
    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.m;
        let nt = self.n_total;
        let p = self.a[row * nt + col];
        debug_assert!(p.abs() > EPS);
        let inv = 1.0 / p;
        for v in &mut self.a[row * nt..(row + 1) * nt] {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        let rhs_pivot = self.rhs[row];
        for r in 0..m {
            if r == row {
                continue;
            }
            let factor = self.a[r * nt + col];
            if factor == 0.0 {
                continue;
            }
            // Row operation r := r - factor * pivot_row.
            let (pivot_row, target) = if r < row {
                let (lo, hi) = self.a.split_at_mut(row * nt);
                (&hi[..nt], &mut lo[r * nt..(r + 1) * nt])
            } else {
                let (lo, hi) = self.a.split_at_mut(r * nt);
                (&lo[row * nt..(row + 1) * nt], &mut hi[..nt])
            };
            for (v, pv) in target.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * pv;
            }
            self.rhs[r] -= factor * rhs_pivot;
            // Clamp tiny negatives introduced by roundoff.
            if self.rhs[r] < 0.0 && self.rhs[r] > -1e-10 {
                self.rhs[r] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1: pivot any artificial still in the basis out on a
    /// non-artificial column, or drop its (redundant) row.
    fn evict_artificials(&mut self) {
        let nt = self.n_total;
        let mut drop_rows = Vec::new();
        for row in 0..self.m {
            if self.basis[row] >= self.artificial_start {
                // Find a non-artificial column with nonzero coefficient.
                let col = (0..self.artificial_start)
                    .find(|&j| self.a[row * nt + j].abs() > EPS && !self.basis.contains(&j));
                match col {
                    Some(j) => self.pivot(row, j),
                    None => drop_rows.push(row),
                }
            }
        }
        // Remove redundant rows back-to-front.
        for &row in drop_rows.iter().rev() {
            self.a.drain(row * nt..(row + 1) * nt);
            self.rhs.remove(row);
            self.basis.remove(row);
            self.m -= 1;
        }
    }
}

/// Orients a constraint so its rhs becomes non-negative, flipping the
/// operator if needed.
fn oriented(op: ConstraintOp, rhs: f64) -> ConstraintOp {
    if rhs >= 0.0 {
        op
    } else {
        match op {
            ConstraintOp::Le => ConstraintOp::Ge,
            ConstraintOp::Ge => ConstraintOp::Le,
            ConstraintOp::Eq => ConstraintOp::Eq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max_as_min() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  → (2,6), obj 36.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![-3.0, -5.0];
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![0.0, 2.0], ConstraintOp::Le, 12.0);
        lp.add_constraint(vec![3.0, 2.0], ConstraintOp::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x - y = 2 → (6,4), obj 10.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![1.0, 1.0];
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![1.0, -1.0], ConstraintOp::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 6.0);
        assert_close(s.x[1], 4.0);
        assert_close(s.objective, 10.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → (4,0)? obj: prefer x
        // (cheaper): x=4,y=0, obj 8.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![2.0, 3.0];
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Ge, 4.0);
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Ge, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut lp = LinearProgram::new(1);
        lp.objective = vec![1.0];
        lp.add_constraint(vec![1.0], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![1.0], ConstraintOp::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with no upper bound.
        let mut lp = LinearProgram::new(1);
        lp.objective = vec![-1.0];
        lp.add_constraint(vec![1.0], ConstraintOp::Ge, 0.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut lp = LinearProgram::new(1);
        lp.objective = vec![1.0];
        lp.add_constraint(vec![-1.0], ConstraintOp::Le, -3.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // A classic degenerate instance (Beale's example scaled).
        let mut lp = LinearProgram::new(4);
        lp.objective = vec![-0.75, 150.0, -0.02, 6.0];
        lp.add_constraint(vec![0.25, -60.0, -0.04, 9.0], ConstraintOp::Le, 0.0);
        lp.add_constraint(vec![0.5, -90.0, -0.02, 3.0], ConstraintOp::Le, 0.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 0.0], ConstraintOp::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn malformed_rejected() {
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![1.0, 1.0];
        lp.add_constraint(vec![1.0], ConstraintOp::Le, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::Malformed(_))));
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 4 stated twice: still solvable.
        let mut lp = LinearProgram::new(2);
        lp.objective = vec![1.0, 2.0];
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 4.0);
        lp.add_constraint(vec![2.0, 2.0], ConstraintOp::Eq, 8.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 4.0); // all weight on x
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn solution_satisfies_constraints() {
        let mut lp = LinearProgram::new(3);
        lp.objective = vec![1.0, 1.5, 0.7];
        lp.add_constraint(vec![1.0, 1.0, 1.0], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![1.0, 0.0, 0.0], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![0.0, 1.0, 0.0], ConstraintOp::Le, 5.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0], ConstraintOp::Le, 6.0);
        let s = lp.solve().unwrap();
        let sum: f64 = s.x.iter().sum();
        assert_close(sum, 10.0);
        assert!(s.x[0] <= 4.0 + 1e-9 && s.x[1] <= 5.0 + 1e-9 && s.x[2] <= 6.0 + 1e-9);
        // Cheapest fill: x3 (0.7) to 6, then x1 (1.0) to 4 → obj 8.2.
        assert_close(s.objective, 6.0 * 0.7 + 4.0 * 1.0);
    }
}
