//! Regression tests for the per-instance running counters that replaced
//! `Engine::running_count`'s O(all-requests) scan.
//!
//! In debug builds every admission round cross-checks the incremental
//! counter against the old scan (`debug_assert_eq!` inside
//! `running_count`), so driving the engine through each transition path
//! — admission, completion, recompute eviction, Splitwise hand-off
//! (instance move mid-running), churn eviction — exercises the
//! equivalence thousands of times. These tests additionally pin the
//! terminal state: when everything completed, every counter is zero.

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{
    ClusterEvent, ClusterEventKind, Engine, EngineConfig, Handoff, InstanceRole, InstanceTopo,
    Policy, PolicyCtx, StageTopo, Topology, VictimAction,
};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_workload::{DatasetKind, Poisson, Request, RequestId, TraceBuilder};

fn two_instance_topo(roles: (InstanceRole, InstanceRole)) -> Topology {
    let c = paper_cluster();
    let a100 = c.devices_of_type(GpuType::A100);
    Topology {
        instances: vec![
            InstanceTopo {
                stages: vec![StageTopo::plain(StageConfig {
                    devices: a100[..2].to_vec(),
                    layers: 40,
                })],
                role: roles.0,
            },
            InstanceTopo {
                stages: vec![StageTopo::plain(StageConfig {
                    devices: a100[2..].to_vec(),
                    layers: 40,
                })],
                role: roles.1,
            },
        ],
    }
}

/// Splitwise-shaped harness policy: instance 0 prefills, instance 1
/// decodes; every prefill hands off, moving the request's instance while
/// it is mid-running (the trickiest counter transition).
struct HandoffPolicy(StaticPolicy);

impl Policy for HandoffPolicy {
    fn name(&self) -> String {
        "handoff-test".into()
    }
    fn topology(
        &mut self,
        c: &hetis_cluster::Cluster,
        m: &hetis_model::ModelSpec,
        cfg: &EngineConfig,
    ) -> Topology {
        self.0.topology(c, m, cfg)
    }
    fn route(&mut self, req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        self.0.route(req, ctx)
    }
    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<hetis_engine::HeadPlacement>> {
        self.0.place_batch(instance, reqs, ctx)
    }
    fn after_prefill(
        &mut self,
        instance: usize,
        _req: RequestId,
        _ctx: &PolicyCtx<'_>,
    ) -> Option<Handoff> {
        (instance == 0).then_some(Handoff { target_instance: 1 })
    }
    fn select_victim(
        &mut self,
        instance: usize,
        device: hetis_cluster::DeviceId,
        blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        self.0.select_victim(instance, device, blocked, ctx)
    }
}

#[test]
fn counters_zero_after_clean_run() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let topo = two_instance_topo((InstanceRole::Both, InstanceRole::Both));
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 7).build(&Poisson::new(4.0), 20.0);
    let n = trace.len();
    let mut engine = Engine::new(
        StaticPolicy::new("counters", topo),
        &cluster,
        &model,
        EngineConfig::default(),
        two_instance_topo((InstanceRole::Both, InstanceRole::Both)),
        &trace,
    );
    engine.run_to_completion();
    assert!(
        engine.running_counts().iter().all(|&c| c == 0),
        "counters must drain to zero: {:?}",
        engine.running_counts()
    );
    let report = engine.into_report();
    assert_eq!(report.completed.len(), n);
}

#[test]
fn counters_follow_handoff_instance_moves() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let topo = two_instance_topo((InstanceRole::PrefillOnly, InstanceRole::DecodeOnly));
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 11).build(&Poisson::new(4.0), 20.0);
    let n = trace.len();
    let mut engine = Engine::new(
        HandoffPolicy(StaticPolicy::new("handoff", topo.clone())),
        &cluster,
        &model,
        EngineConfig::default(),
        topo,
        &trace,
    );
    engine.run_to_completion();
    assert!(
        engine.running_counts().iter().all(|&c| c == 0),
        "counters must drain to zero after hand-offs: {:?}",
        engine.running_counts()
    );
    let report = engine.into_report();
    assert_eq!(
        report.completed.len(),
        n,
        "unfinished {}",
        report.unfinished
    );
    assert!(report.migrations > 0, "hand-offs must have moved KV");
}

#[test]
fn counters_survive_churn_evictions() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let topo = two_instance_topo((InstanceRole::Both, InstanceRole::Both));
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 13).build(&Poisson::new(5.0), 25.0);
    // Kill one primary of instance 0 mid-run (downs the instance and
    // churn-evicts its residents), then bring it back.
    let dev = cluster.devices_of_type(GpuType::A100)[0];
    let events = vec![
        ClusterEvent {
            time: 8.0,
            device: dev,
            kind: ClusterEventKind::Fail,
        },
        ClusterEvent {
            time: 16.0,
            device: dev,
            kind: ClusterEventKind::Join,
        },
    ];
    let mut engine = Engine::new_with_churn(
        StaticPolicy::new("churny", topo.clone()),
        &cluster,
        &model,
        EngineConfig::default(),
        topo,
        &trace,
        &events,
    );
    engine.run_to_completion();
    assert!(
        engine.running_counts().iter().all(|&c| c == 0),
        "counters must drain to zero after churn: {:?}",
        engine.running_counts()
    );
    let report = engine.into_report();
    assert!(report.churn_evictions > 0, "the failure must evict work");
    assert!(report.completed.len() + report.unfinished == trace.len());
}
