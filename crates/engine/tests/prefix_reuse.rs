//! Prefix/KV reuse invariants on multi-turn session traffic.
//!
//! Four properties pin the reuse path:
//!
//! 1. **Gating** — with `prefix_reuse` off (the default) the engine
//!    never probes the cache and all reuse counters stay zero; the
//!    cross-version digest identity of the off path is enforced by the
//!    CI pins, these tests enforce the counters.
//! 2. **Conservation** — reuse changes *which tokens prefill*, never
//!    which requests complete: same completion set, zero lost tokens,
//!    and warm + cold tokens telescope to each prompt's length.
//! 3. **Benefit** — on a session trace, reuse strictly reduces total
//!    prefill tokens and strictly improves non-first-turn TTFT.
//! 4. **Shard invariance** — the reuse-on digest is bit-identical for
//!    `sim_shards` ∈ {1, 2, 4} (the per-device cache partitions cleanly
//!    across device-disjoint shard groups).

use std::collections::HashMap;

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::DeviceId;
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{run, EngineConfig, InstanceRole, InstanceTopo, RunReport, StageTopo, Topology};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_workload::{multi_turn_trace, DatasetKind, SessionWorkload, SloClass, Trace};

/// Two device-disjoint TP-2 instances over the four A100s, so the shard
/// planner has two components to split.
fn dp2_topo() -> Topology {
    let stage = |a: u32, b: u32| {
        StageTopo::plain(StageConfig {
            devices: vec![DeviceId(a), DeviceId(b)],
            layers: 40,
        })
    };
    Topology {
        instances: vec![
            InstanceTopo {
                stages: vec![stage(0, 1)],
                role: InstanceRole::Both,
            },
            InstanceTopo {
                stages: vec![stage(2, 3)],
                role: InstanceRole::Both,
            },
        ],
    }
}

fn session_trace(seed: u64) -> Trace {
    multi_turn_trace(
        &SessionWorkload {
            sessions: 24,
            turns: 4,
            session_rate: 1.2,
            mean_think: 6.0,
            dataset: DatasetKind::ShareGpt,
            class: SloClass::Interactive,
        },
        seed,
    )
}

fn run_sessions(reuse: bool, shards: usize, seed: u64) -> RunReport {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = session_trace(seed);
    let cfg = EngineConfig {
        prefix_reuse: reuse,
        prefill_chunk_tokens: Some(512),
        sim_shards: shards,
        drain_timeout: 600.0,
        ..EngineConfig::default()
    };
    run(
        StaticPolicy::new("dp2-a100", dp2_topo()),
        &cluster,
        &model,
        cfg,
        &trace,
    )
}

/// With reuse off the probe path is never entered: zero probes, zero
/// hits, zero warm tokens, zero shared bytes.
#[test]
fn reuse_off_never_probes() {
    let r = run_sessions(false, 1, 7);
    assert!(r.completed.len() > 50, "trace must mostly complete");
    assert_eq!(
        (
            r.prefix_probes,
            r.prefix_hits,
            r.prefix_hit_tokens,
            r.shared_kv_bytes
        ),
        (0, 0, 0, 0)
    );
    assert_eq!(r.prefix_hit_rate(), 0.0);
}

/// With reuse on, follow-up turns hit the cache; the engine skips their
/// warm prefixes, so total prefill work strictly drops while the same
/// requests complete with no lost tokens.
#[test]
fn reuse_on_skips_warm_prefixes_conserving_completions() {
    let off = run_sessions(false, 1, 7);
    let on = run_sessions(true, 1, 7);
    assert!(on.prefix_probes > 0, "follow-up turns must probe");
    assert!(on.prefix_hits > 0, "think gaps leave time for hits");
    assert!(on.prefix_hits <= on.prefix_probes);
    assert!(on.prefix_hit_tokens > 0);
    assert!(on.shared_kv_bytes > 0);
    assert!(on.prefix_hit_rate() > 0.0 && on.prefix_hit_rate() <= 1.0);
    // Warm tokens are exactly the prefill work the engine no longer does.
    assert_eq!(off.preemptions, 0, "baseline run must be preemption-free");
    assert_eq!(on.preemptions, 0, "reuse run must be preemption-free");
    assert_eq!(
        on.prefill_tokens + on.prefix_hit_tokens,
        off.prefill_tokens,
        "warm + cold tokens must telescope to the baseline prefill total"
    );
    assert_eq!(on.lost_tokens, 0);
    // Same completion set.
    let ids = |r: &RunReport| {
        let mut v: Vec<u64> = r.completed.iter().map(|c| c.id.0).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&on), ids(&off));
}

/// Reuse strictly improves the mean TTFT of non-first turns (the turns
/// whose prompts replay already-served context) and never regresses
/// first turns' completions.
#[test]
fn reuse_improves_follow_up_turn_ttft() {
    let off = run_sessions(false, 1, 11);
    let on = run_sessions(true, 1, 11);
    assert!(on.prefix_hits > 0);
    // Map request ids to turns via the (deterministic) trace.
    let trace = session_trace(11);
    let turn_of: HashMap<u64, u32> = trace
        .requests()
        .iter()
        .map(|r| (r.id.0, r.session.expect("session trace").turn))
        .collect();
    let mean_followup_ttft = |r: &RunReport| {
        let (mut sum, mut n) = (0.0, 0u32);
        for c in &r.completed {
            if turn_of[&c.id.0] > 0 {
                sum += c.first_token - c.arrival;
                n += 1;
            }
        }
        assert!(n > 0);
        sum / n as f64
    };
    assert!(
        mean_followup_ttft(&on) < mean_followup_ttft(&off),
        "reuse must strictly improve follow-up-turn TTFT"
    );
    assert!(on.peak_kv_reserved_bytes <= off.peak_kv_reserved_bytes);
}

/// Reuse-on runs are deterministic and bit-identical across shard
/// counts: the cache partitions per device-disjoint group and every
/// registration/eviction replays in simulated-time order.
#[test]
fn reuse_on_digest_is_shard_invariant() {
    let seq = run_sessions(true, 1, 7);
    assert!(seq.prefix_hits > 0, "shard test must exercise the cache");
    assert_eq!(
        seq.digest(),
        run_sessions(true, 1, 7).digest(),
        "determinism"
    );
    for shards in [2, 4] {
        let sharded = run_sessions(true, shards, 7);
        assert_eq!(
            seq.digest(),
            sharded.digest(),
            "sim_shards={shards} diverged from the sequential engine"
        );
        assert_eq!(seq.prefix_hits, sharded.prefix_hits);
        assert_eq!(seq.prefix_hit_tokens, sharded.prefix_hit_tokens);
        assert_eq!(seq.shared_kv_bytes, sharded.shared_kv_bytes);
    }
}

/// Single-turn traffic never probes even with reuse on: turn 0 has no
/// predecessor, so the feature is inert on non-session workloads.
#[test]
fn first_turns_never_probe() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = multi_turn_trace(
        &SessionWorkload {
            sessions: 16,
            turns: 1,
            session_rate: 2.0,
            mean_think: 1.0,
            dataset: DatasetKind::ShareGpt,
            class: SloClass::Interactive,
        },
        3,
    );
    let cfg = EngineConfig {
        prefix_reuse: true,
        drain_timeout: 600.0,
        ..EngineConfig::default()
    };
    let r = run(
        StaticPolicy::new("dp2-a100", dp2_topo()),
        &cluster,
        &model,
        cfg,
        &trace,
    );
    assert!(r.completed.len() > 10);
    assert_eq!((r.prefix_probes, r.prefix_hits), (0, 0));
}
