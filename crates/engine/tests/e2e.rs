//! End-to-end engine tests with the static (plain-vLLM) policy.

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{run, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology};
use hetis_model::{llama_13b, opt_2_7b};
use hetis_parallel::StageConfig;
use hetis_workload::{DatasetKind, Poisson, TraceBuilder};

fn a100_tp4_topo() -> Topology {
    let c = paper_cluster();
    Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: c.devices_of_type(GpuType::A100),
                layers: 40,
            })],
            role: InstanceRole::Both,
        }],
    }
}

fn pp2_topo() -> Topology {
    let c = paper_cluster();
    let a100 = c.devices_of_type(GpuType::A100);
    Topology {
        instances: vec![InstanceTopo {
            stages: vec![
                StageTopo::plain(StageConfig {
                    devices: a100[..2].to_vec(),
                    layers: 20,
                }),
                StageTopo::plain(StageConfig {
                    devices: a100[2..].to_vec(),
                    layers: 20,
                }),
            ],
            role: InstanceRole::Both,
        }],
    }
}

#[test]
fn low_rate_completes_everything() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 1).build(&Poisson::new(2.0), 30.0);
    let n = trace.len();
    assert!(n > 20);
    let report = run(
        StaticPolicy::new("vllm-a100", a100_tp4_topo()),
        &cluster,
        &model,
        EngineConfig::default(),
        &trace,
    );
    assert_eq!(
        report.completed.len(),
        n,
        "unfinished: {}",
        report.unfinished
    );
    assert_eq!(report.unfinished, 0);
    // Basic metric sanity.
    for c in &report.completed {
        assert!(c.first_token > c.arrival);
        assert!(c.completion >= c.first_token);
        assert!(c.ttft() > 0.0);
        assert!(c.normalized_latency() > 0.0);
    }
    assert!(report.p95_ttft() < 5.0, "p95 TTFT {}", report.p95_ttft());
    assert!(report.mean_normalized_latency() < 0.5);
    assert!(!report.module_samples.is_empty());
    assert!(report.preemptions == 0, "no memory pressure expected");
}

#[test]
fn token_times_monotone_and_tpot_positive() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::HumanEval, 2).build(&Poisson::new(4.0), 20.0);
    let report = run(
        StaticPolicy::new("vllm-a100", a100_tp4_topo()),
        &cluster,
        &model,
        EngineConfig::default(),
        &trace,
    );
    assert!(report.completion_rate() > 0.99);
    for t in report.tpots() {
        assert!(t > 0.0, "TPOT must be positive");
        assert!(t < 1.0, "TPOT {t} implausibly large at this load");
    }
}

#[test]
fn pipeline_parallel_overlaps_microbatches() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 3).build(&Poisson::new(6.0), 30.0);
    let n = trace.len();
    let report_pp = run(
        StaticPolicy::new("vllm-pp2", pp2_topo()),
        &cluster,
        &model,
        EngineConfig::default(),
        &trace,
    );
    assert!(report_pp.completion_rate() > 0.95);
    // Stable system: everything completes shortly after the last arrival
    // (completions per second of *arrival horizon* ≈ arrival rate).
    let rate_over_horizon = report_pp.completed.len() as f64 / 30.0;
    assert!(
        rate_over_horizon > 4.5,
        "completed {} of {n} in 30 s horizon",
        report_pp.completed.len()
    );
    assert!(
        report_pp.duration < 70.0,
        "drain tail too long: {}",
        report_pp.duration
    );
}

#[test]
fn deterministic_given_seed() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 5).build(&Poisson::new(3.0), 20.0);
    let run_once = || {
        let r = run(
            StaticPolicy::new("vllm", a100_tp4_topo()),
            &cluster,
            &model,
            EngineConfig::default(),
            &trace,
        );
        (
            r.completed.len(),
            r.mean_normalized_latency(),
            r.p95_ttft(),
            r.duration,
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn memory_pressure_triggers_preemption_but_progresses() {
    // OPT-2.7B on a single P100 (12 GB): weights ~5.3 GB leave a small KV
    // pool; LongBench prompts exhaust it.
    let cluster = paper_cluster();
    let model = opt_2_7b();
    let p100 = cluster.devices_of_type(GpuType::P100);
    let topo = Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: vec![p100[0]],
                layers: 32,
            })],
            role: InstanceRole::Both,
        }],
    };
    // Heavy ShareGPT load: the P100's ~6 GB pool fills from concurrency
    // well before the backlog drains.
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 7).build(&Poisson::new(4.0), 30.0);
    let cfg = EngineConfig {
        drain_timeout: 900.0,
        ..EngineConfig::default()
    };
    let report = run(
        StaticPolicy::new("vllm-p100", topo),
        &cluster,
        &model,
        cfg,
        &trace,
    );
    assert!(
        report.completion_rate() > 0.7,
        "completed {}/{}",
        report.completed.len(),
        report.completed.len() + report.unfinished
    );
    // With a pool this small and 6k-token contexts, preemption is expected.
    assert!(
        report.preemptions > 0,
        "expected preemptions under pressure"
    );
}

#[test]
fn saturation_blows_up_latency() {
    // The hockey stick the figures rely on: far beyond capacity, mean
    // normalized latency must grow sharply.
    let cluster = paper_cluster();
    let model = llama_13b();
    let low = TraceBuilder::new(DatasetKind::ShareGpt, 9).build(&Poisson::new(1.0), 30.0);
    let high = TraceBuilder::new(DatasetKind::ShareGpt, 9).build(&Poisson::new(40.0), 30.0);
    let cfg = EngineConfig {
        drain_timeout: 120.0,
        ..EngineConfig::default()
    };
    let r_low = run(
        StaticPolicy::new("vllm", a100_tp4_topo()),
        &cluster,
        &model,
        cfg.clone(),
        &low,
    );
    let r_high = run(
        StaticPolicy::new("vllm", a100_tp4_topo()),
        &cluster,
        &model,
        cfg,
        &high,
    );
    let m_low = r_low.mean_normalized_latency();
    // At 40 req/s some requests may never finish inside the horizon; use
    // the completed ones' latency, which still reflects queueing.
    let m_high = r_high.mean_normalized_latency();
    assert!(
        m_high > 3.0 * m_low,
        "saturated {m_high} vs unloaded {m_low}"
    );
}
