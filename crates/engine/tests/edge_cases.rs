//! Engine edge cases: degenerate requests, role restrictions, hand-off
//! queueing, and trace bookkeeping.

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{run, EngineConfig, InstanceRole, InstanceTopo, StageTopo, Topology};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_workload::{DatasetKind, Poisson, TraceBuilder};

fn a100_topo() -> Topology {
    let c = paper_cluster();
    Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: c.devices_of_type(GpuType::A100),
                layers: 40,
            })],
            role: InstanceRole::Both,
        }],
    }
}

#[test]
fn empty_trace_is_a_noop() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 1).build(&Poisson::new(0.0), 10.0);
    assert!(trace.is_empty());
    let report = run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        EngineConfig::default(),
        &trace,
    );
    assert_eq!(report.completed.len(), 0);
    assert_eq!(report.unfinished, 0);
    assert_eq!(report.preemptions, 0);
}

#[test]
fn single_token_outputs_complete_at_prefill() {
    // A request with output_len == 1 finishes with its prefill iteration:
    // TTFT == completion, TPOT degenerate.
    use hetis_workload::{Request, RequestId, Trace};
    let cluster = paper_cluster();
    let model = llama_13b();
    // Hand-build a trace of one-token-output requests.
    let requests: Vec<Request> = (0..5)
        .map(|i| Request {
            id: RequestId(i),
            arrival: i as f64 * 0.5,
            input_len: 64,
            output_len: 1,
            class: Default::default(),
            tenant: Default::default(),
            session: None,
        })
        .collect();
    let trace = Trace::from_requests(requests, DatasetKind::ShareGpt);
    let report = run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        EngineConfig::default(),
        &trace,
    );
    assert_eq!(report.completed.len(), 5);
    for c in &report.completed {
        assert_eq!(c.first_token, c.completion);
        assert_eq!(c.tpot(), 0.0);
        assert!(c.normalized_latency() > 0.0);
    }
}

#[test]
fn trace_sampling_covers_the_run() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, 5).build(&Poisson::new(3.0), 12.0);
    let cfg = EngineConfig {
        trace_sample_period: 0.5,
        ..EngineConfig::default()
    };
    let report = run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        cfg,
        &trace,
    );
    assert!(report.trace.len() >= 20, "samples: {}", report.trace.len());
    // Samples are time-ordered and cover every device.
    for w in report.trace.windows(2) {
        assert!(w[0].time < w[1].time);
    }
    assert_eq!(report.trace[0].devices.len(), cluster.len());
    // During the run, at least one sample shows nonzero utilization on an
    // A100.
    let a100 = cluster.devices_of_type(GpuType::A100)[0];
    assert!(report.trace.iter().any(|s| {
        s.devices
            .iter()
            .any(|&(d, util, _)| d == a100 && util > 0.0)
    }));
}

#[test]
fn prefill_only_instance_never_decodes() {
    // A PrefillOnly + DecodeOnly split where the policy hands off: the
    // static policy *doesn't* hand off, so requests prefill and then
    // finish only if output_len == 1 — here we verify role enforcement by
    // checking nothing deadlocks and prefill instance's pool drains.
    use hetis_engine::{Handoff, Policy, PolicyCtx};
    use hetis_workload::{Request, RequestId};

    struct SplitLike {
        inner: StaticPolicy,
    }
    impl Policy for SplitLike {
        fn name(&self) -> String {
            "split-like".into()
        }
        fn topology(
            &mut self,
            c: &hetis_cluster::Cluster,
            m: &hetis_model::ModelSpec,
            e: &EngineConfig,
        ) -> Topology {
            self.inner.topology(c, m, e)
        }
        fn route(&mut self, _r: &Request, ctx: &PolicyCtx<'_>) -> usize {
            ctx.topology.entry_instances()[0]
        }
        fn place_batch(
            &mut self,
            instance: usize,
            reqs: &[(RequestId, u32)],
            ctx: &PolicyCtx<'_>,
        ) -> Vec<Option<hetis_engine::HeadPlacement>> {
            self.inner.place_batch(instance, reqs, ctx)
        }
        fn after_prefill(
            &mut self,
            _i: usize,
            _r: RequestId,
            _ctx: &PolicyCtx<'_>,
        ) -> Option<Handoff> {
            Some(Handoff { target_instance: 1 })
        }
        fn select_victim(
            &mut self,
            instance: usize,
            device: hetis_cluster::DeviceId,
            blocked: RequestId,
            ctx: &PolicyCtx<'_>,
        ) -> hetis_engine::VictimAction {
            self.inner.select_victim(instance, device, blocked, ctx)
        }
    }

    let c = paper_cluster();
    let model = llama_13b();
    let topo = Topology {
        instances: vec![
            InstanceTopo {
                stages: vec![StageTopo::plain(StageConfig {
                    devices: c.devices_of_type(GpuType::A100),
                    layers: 40,
                })],
                role: InstanceRole::PrefillOnly,
            },
            InstanceTopo {
                stages: vec![StageTopo::plain(StageConfig {
                    devices: c.devices_of_type(GpuType::Rtx3090),
                    layers: 40,
                })],
                role: InstanceRole::DecodeOnly,
            },
        ],
    };
    let trace = TraceBuilder::new(DatasetKind::HumanEval, 6).build(&Poisson::new(2.0), 15.0);
    let n = trace.len();
    let report = run(
        SplitLike {
            inner: StaticPolicy::new("split-like", topo.clone()),
        },
        &c,
        &model,
        EngineConfig::default(),
        &trace,
    );
    assert_eq!(
        report.completed.len(),
        n,
        "unfinished {}",
        report.unfinished
    );
    // Every request migrated exactly once (the hand-off).
    assert!(report.migrations as usize >= n);
}
