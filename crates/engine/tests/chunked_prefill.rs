//! Chunked-prefill invariants.
//!
//! Three properties pin the scheduler refactor:
//!
//! 1. **Token conservation** — splitting prefills into chunks never
//!    changes the total number of prompt tokens prefilled (the chunk
//!    sizes of one prompt telescope to its effective length).
//! 2. **Budget** — with `prefill_chunk_tokens ≤ max_batch_tokens`, no
//!    prefill iteration ever exceeds the `max_batch_tokens` budget
//!    (atomic mode may: a single oversized prompt is admitted alone).
//! 3. **Degeneration** — a chunk size at or above the longest effective
//!    prompt is *bit-identical* to the unchunked engine: same report
//!    digest, hence same completions at the same times.

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{
    run, AdmissionPolicy, EngineConfig, InstanceRole, InstanceTopo, RunReport, StageTopo, Topology,
};
use hetis_model::llama_13b;
use hetis_workload::{DatasetKind, Poisson, TraceBuilder};
use proptest::prelude::*;

fn a100_topo() -> Topology {
    let c = paper_cluster();
    Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: c.devices_of_type(GpuType::A100),
                layers: 40,
            })],
            role: InstanceRole::Both,
        }],
    }
}
use hetis_parallel::StageConfig;

fn run_with(chunk: Option<u64>, admission: AdmissionPolicy, seed: u64, rate: f64) -> RunReport {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, seed).build(&Poisson::new(rate), 20.0);
    let cfg = EngineConfig {
        prefill_chunk_tokens: chunk,
        admission,
        ..EngineConfig::default()
    };
    run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        cfg,
        &trace,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chunking conserves the total prefilled tokens and the completion
    /// set on preemption-free runs, for any chunk size.
    #[test]
    fn chunking_conserves_prefill_tokens(
        seed in 0u64..1000,
        chunk in 64u64..2048,
        rate in 1.0f64..4.0,
    ) {
        let atomic = run_with(None, AdmissionPolicy::Fifo, seed, rate);
        let chunked = run_with(Some(chunk), AdmissionPolicy::Fifo, seed, rate);
        prop_assert_eq!(atomic.preemptions, 0, "baseline run must be preemption-free");
        prop_assert_eq!(chunked.preemptions, 0, "chunked run must be preemption-free");
        prop_assert_eq!(atomic.prefill_tokens, chunked.prefill_tokens,
            "chunking changed total prefill tokens");
        // Same requests complete; chunking reshapes timing, not outcomes.
        let mut a: Vec<u64> = atomic.completed.iter().map(|c| c.id.0).collect();
        let mut b: Vec<u64> = chunked.completed.iter().map(|c| c.id.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Chunked mode runs at least as many prefill iterations.
        prop_assert!(chunked.prefill_iterations >= atomic.prefill_iterations);
    }

    /// With a chunk cap at or under the iteration budget, no prefill
    /// iteration exceeds `max_batch_tokens`.
    #[test]
    fn chunking_respects_iteration_budget(
        seed in 0u64..1000,
        chunk in 64u64..8192,
        rate in 1.0f64..6.0,
    ) {
        let r = run_with(Some(chunk), AdmissionPolicy::Fifo, seed, rate);
        let budget = EngineConfig::default().max_batch_tokens;
        prop_assert!(chunk <= budget, "sampled chunk stays under default budget");
        prop_assert!(r.max_prefill_iter_tokens <= budget,
            "iteration used {} tokens over the {} budget",
            r.max_prefill_iter_tokens, budget);
        prop_assert!(r.max_prefill_iter_tokens > 0);
    }

    /// A chunk size ≥ the longest effective prompt degenerates to the
    /// atomic engine, bit for bit.
    #[test]
    fn oversized_chunk_is_digest_identical(
        seed in 0u64..1000,
        rate in 1.0f64..6.0,
    ) {
        let atomic = run_with(None, AdmissionPolicy::Fifo, seed, rate);
        // ShareGPT prompts clip at 2048 and outputs at 1024, so even a
        // fully recomputed context stays below 4096.
        let chunked = run_with(Some(1 << 20), AdmissionPolicy::Fifo, seed, rate);
        prop_assert_eq!(atomic.digest(), chunked.digest(),
            "oversized chunk must not perturb the schedule");
    }
}

/// Chunked + slack-ordered runs are deterministic: same seed, same digest.
#[test]
fn chunked_slack_run_is_deterministic() {
    let a = run_with(Some(256), AdmissionPolicy::SloSlack, 42, 5.0);
    let b = run_with(Some(256), AdmissionPolicy::SloSlack, 42, 5.0);
    assert_eq!(a.digest(), b.digest());
    assert!(a.completed.len() > 10);
}

/// Fifo vs slack ordering on a best-effort-only trace is identical up to
/// queue order — with every slack infinite, sorting ties break by
/// arrival, which *is* FIFO order.
#[test]
fn slack_ordering_degenerates_to_fifo_without_classes() {
    let fifo = run_with(Some(512), AdmissionPolicy::Fifo, 9, 4.0);
    let slack = run_with(Some(512), AdmissionPolicy::SloSlack, 9, 4.0);
    assert_eq!(fifo.digest(), slack.digest());
}

/// Slack-ordered admission lets a queued interactive request overtake an
/// earlier-arrived batch request when the admission budget forces them to
/// queue (the core head-of-line-blocking fix).
#[test]
fn slack_admission_overtakes_queued_batch_work() {
    use hetis_workload::{Request, RequestId, SloClass, TenantId, Trace};
    let cluster = paper_cluster();
    let model = llama_13b();
    let mk = |id: u64, arrival: f64, input: u32, class: SloClass| Request {
        id: RequestId(id),
        arrival,
        input_len: input,
        output_len: 8,
        class,
        tenant: TenantId(0),
        session: None,
    };
    // One long batch prompt occupies the first iteration; behind it a
    // second batch prompt (earlier) and an interactive turn (later) queue
    // under a tight admission budget that admits one prompt at a time.
    let requests = vec![
        mk(0, 0.0, 2000, SloClass::Batch),
        mk(1, 0.01, 2000, SloClass::Batch),
        mk(2, 0.02, 200, SloClass::Interactive),
    ];
    let trace = Trace::from_requests(requests, DatasetKind::ShareGpt);
    let first_token_of = |admission: AdmissionPolicy, id: u64| -> f64 {
        let cfg = EngineConfig {
            max_batch_tokens: 2048,
            prefill_chunk_tokens: Some(2048),
            admission,
            ..EngineConfig::default()
        };
        let report = run(
            StaticPolicy::new("vllm", a100_topo()),
            &cluster,
            &model,
            cfg,
            &trace,
        );
        report
            .completed
            .iter()
            .find(|c| c.id.0 == id)
            .expect("completed")
            .first_token
    };
    // FIFO: the interactive turn waits behind both batch prompts.
    assert!(first_token_of(AdmissionPolicy::Fifo, 2) > first_token_of(AdmissionPolicy::Fifo, 1));
    // Slack order: it overtakes the queued batch prompt.
    assert!(
        first_token_of(AdmissionPolicy::SloSlack, 2) < first_token_of(AdmissionPolicy::SloSlack, 1)
    );
    // And its TTFT strictly improves over FIFO.
    assert!(
        first_token_of(AdmissionPolicy::SloSlack, 2) < first_token_of(AdmissionPolicy::Fifo, 2)
    );
}
