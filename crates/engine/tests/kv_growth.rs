//! Incremental KV growth + fused microbatch invariants.
//!
//! Property suite for the `grow_tokens` path (ISSUE 5):
//!
//! 1. **Token conservation across chunks** — growing reservations
//!    chunk-by-chunk never changes what gets prefilled or which requests
//!    complete, for any chunk size.
//! 2. **Reservation bound** — while a request runs, its reserved KV
//!    tokens never exceed `effective prompt + generated + headroom`
//!    (block rounding aside, enforced below at token granularity via the
//!    engine's entry bookkeeping).
//! 3. **Growth-failure eviction balances the allocator** — runs forced
//!    into growth failures still terminate with every pool back at zero
//!    bytes once all requests finish (nothing leaks, nothing truncates).
//!
//! Plus the fused-microbatch cadence experiment: during a long chunked
//! prefill, resident decode requests must receive tokens *faster* under
//! fusion than under the alternating loop.

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::{DeviceId, GpuType};
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{
    run, AdmissionPolicy, Engine, EngineConfig, InstanceRole, InstanceTopo, RunReport, StageTopo,
    Topology,
};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_workload::{
    DatasetKind, Poisson, Request, RequestId, SloClass, TenantId, Trace, TraceBuilder,
};
use proptest::prelude::*;

fn a100_topo() -> Topology {
    let c = paper_cluster();
    Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: c.devices_of_type(GpuType::A100),
                layers: 40,
            })],
            role: InstanceRole::Both,
        }],
    }
}

fn run_with(cfg: EngineConfig, seed: u64, rate: f64) -> RunReport {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, seed).build(&Poisson::new(rate), 20.0);
    run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        cfg,
        &trace,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Incremental growth conserves prefill tokens and the completion set
    /// against the atomic engine, and actually grows (at least one chunk
    /// per multi-chunk prompt extends a live reservation).
    #[test]
    fn incremental_growth_conserves_tokens(
        seed in 0u64..1000,
        chunk in 64u64..1024,
        rate in 1.0f64..4.0,
    ) {
        let atomic = run_with(EngineConfig::default(), seed, rate);
        let grown = run_with(
            EngineConfig {
                prefill_chunk_tokens: Some(chunk),
                ..EngineConfig::default()
            },
            seed,
            rate,
        );
        prop_assert_eq!(atomic.preemptions, 0);
        prop_assert_eq!(grown.preemptions, 0);
        prop_assert_eq!(grown.kv_grow_failures, 0);
        prop_assert_eq!(atomic.prefill_tokens, grown.prefill_tokens,
            "growth changed total prefill tokens");
        let mut a: Vec<u64> = atomic.completed.iter().map(|c| c.id.0).collect();
        let mut b: Vec<u64> = grown.completed.iter().map(|c| c.id.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Multi-chunk prompts exist at these sizes, so growth must fire.
        // (No per-run peak comparison here: chunking reshapes admission
        // overlap, so light-load peaks can legitimately differ either
        // way — the dedicated long-prompt test below pins the memory
        // claim where it bites.)
        prop_assert!(grown.kv_growths > 0, "no reservation ever grew");
    }

    /// Fused microbatches conserve outcomes too: same completions, same
    /// total prefill tokens, within the iteration budget.
    #[test]
    fn fused_mode_conserves_tokens(
        seed in 0u64..1000,
        chunk in 64u64..1024,
        rate in 1.0f64..4.0,
    ) {
        let alternating = run_with(
            EngineConfig {
                prefill_chunk_tokens: Some(chunk),
                ..EngineConfig::default()
            },
            seed,
            rate,
        );
        let fused = run_with(
            EngineConfig {
                prefill_chunk_tokens: Some(chunk),
                fused_microbatches: true,
                ..EngineConfig::default()
            },
            seed,
            rate,
        );
        prop_assert_eq!(alternating.prefill_tokens, fused.prefill_tokens);
        let budget = EngineConfig::default().max_batch_tokens;
        prop_assert!(fused.max_prefill_iter_tokens <= budget);
        let mut a: Vec<u64> = alternating.completed.iter().map(|c| c.id.0).collect();
        let mut b: Vec<u64> = fused.completed.iter().map(|c| c.id.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}

/// Builds the controlled long-prefill experiment: `residents` short
/// requests admitted first (they decode long outputs), then one long
/// prompt whose chunked prefill overlaps their decode.
fn overlap_trace(residents: u64, long_input: u32) -> Trace {
    let mut requests: Vec<Request> = (0..residents)
        .map(|i| Request {
            id: RequestId(i),
            arrival: 0.0,
            input_len: 64,
            output_len: 400,
            class: SloClass::Interactive,
            tenant: TenantId(0),
            session: None,
        })
        .collect();
    requests.push(Request {
        id: RequestId(residents),
        arrival: 0.5,
        input_len: long_input,
        output_len: 8,
        class: SloClass::Batch,
        tenant: TenantId(1),
        session: None,
    });
    Trace::from_requests(requests, DatasetKind::ShareGpt)
}

fn overlap_run(fused: bool) -> RunReport {
    let cluster = paper_cluster();
    let model = llama_13b();
    let cfg = EngineConfig {
        prefill_chunk_tokens: Some(256),
        fused_microbatches: fused,
        ..EngineConfig::default()
    };
    run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        cfg,
        &overlap_trace(16, 4000),
    )
}

/// The fusion claim, isolated: while a 4000-token prompt prefills in
/// 256-token chunks, resident decodes must emit tokens at a strictly
/// faster cadence under fusion than under chunk/decode alternation (one
/// fused iteration beats a chunk iteration *plus* a decode iteration).
#[test]
fn fusion_cuts_decode_stall_during_long_prefill() {
    let alternating = overlap_run(false);
    let fused = overlap_run(true);
    assert!(fused.fused_iterations > 0, "no iteration actually fused");
    assert_eq!(alternating.completed.len(), fused.completed.len());
    // Mean TPOT over the resident interactive requests.
    let mean_tpot = |r: &RunReport| {
        let v: Vec<f64> = r
            .completed
            .iter()
            .filter(|c| c.class == SloClass::Interactive)
            .map(|c| c.tpot())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let t_alt = mean_tpot(&alternating);
    let t_fused = mean_tpot(&fused);
    assert!(
        t_fused < t_alt,
        "fusion must cut resident decode TPOT: fused {t_fused} vs alternating {t_alt}"
    );
}

/// Reservation bound + terminal balance under forced growth failures: a
/// pool small enough that long prompts cannot reserve whole exercises
/// the victim loop and the growth-failure eviction path; every pool must
/// end the run at exactly zero bytes and every completion must carry its
/// full output (no truncation).
#[test]
fn growth_failure_eviction_balances_allocator() {
    let cluster = paper_cluster();
    let model = llama_13b();
    // One A100, tiny KV pool via a huge max_running pressure instead:
    // load far more concurrent long prompts than the single device's
    // pool can hold at once.
    let topo = Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: vec![DeviceId(0)],
                layers: 40,
            })],
            role: InstanceRole::Both,
        }],
    };
    let requests: Vec<Request> = (0..48)
        .map(|i| Request {
            id: RequestId(i),
            arrival: 0.05 * i as f64,
            input_len: 6000,
            output_len: 64,
            class: SloClass::Batch,
            tenant: TenantId(0),
            session: None,
        })
        .collect();
    let trace = Trace::from_requests(requests, DatasetKind::LongBench);
    let cfg = EngineConfig {
        prefill_chunk_tokens: Some(256),
        max_batch_tokens: 2048,
        drain_timeout: 3000.0,
        ..EngineConfig::default()
    };
    let policy = StaticPolicy::new("vllm", topo.clone());
    let mut engine = Engine::new(policy, &cluster, &model, cfg, topo, &trace);
    engine.run_to_completion();
    // Terminal zero: every request done ⇒ every pool balanced at zero.
    let kv = engine.kv_state();
    for d in 0..kv.len() {
        assert_eq!(
            kv.device(DeviceId(d as u32)).used_bytes(),
            0,
            "device {d} leaked KV after the run"
        );
    }
    let report = engine.into_report();
    assert_eq!(report.unfinished, 0, "run must drain fully");
    assert_eq!(report.completed.len(), 48);
    // No truncation: every completion produced its full output.
    for c in &report.completed {
        assert_eq!(c.output_len, 64);
    }
}

/// The reservation bound, measured where it bites: a long-prompt-only
/// trace must show a *much* lower KV peak under incremental growth than
/// under atomic admission (admission holds one chunk + headroom, not the
/// whole prompt).
#[test]
fn long_prompt_peak_kv_drops_under_incremental_growth() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let requests: Vec<Request> = (0..24)
        .map(|i| Request {
            id: RequestId(i),
            arrival: 0.05 * i as f64,
            input_len: 12000,
            output_len: 4,
            class: SloClass::Batch,
            tenant: TenantId(0),
            session: None,
        })
        .collect();
    let trace = Trace::from_requests(requests, DatasetKind::LongBench);
    let mk = |chunk: Option<u64>| {
        let cfg = EngineConfig {
            prefill_chunk_tokens: chunk,
            max_batch_tokens: 8192,
            drain_timeout: 1200.0,
            ..EngineConfig::default()
        };
        run(
            StaticPolicy::new("vllm", a100_topo()),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };
    let atomic = mk(None);
    let grown = mk(Some(512));
    assert_eq!(atomic.completed.len(), grown.completed.len());
    assert_eq!(grown.lost_tokens, 0);
    // Printed so bench records (BENCH_5.json) can quote the measured
    // peaks directly from this pinned experiment.
    eprintln!(
        "long_prompt peak_kv: atomic={} grown={} ratio={:.3}",
        atomic.peak_kv_reserved_bytes,
        grown.peak_kv_reserved_bytes,
        grown.peak_kv_reserved_bytes as f64 / atomic.peak_kv_reserved_bytes as f64
    );
    assert!(
        (grown.peak_kv_reserved_bytes as f64) < 0.75 * atomic.peak_kv_reserved_bytes as f64,
        "long-prompt peak must drop substantially: grown {} vs atomic {}",
        grown.peak_kv_reserved_bytes,
        atomic.peak_kv_reserved_bytes
    );
    // Regression pin for the peak itself (≈155.5 GB). `note_kv_peak` now
    // also samples at the top of the release paths (eviction, churn
    // eviction, completion) while the departing KV is still resident, so
    // a free-then-grow interleaving inside one decode batch can no
    // longer hide the true maximum. Any scheduler or allocator change
    // that moves this number must update the pin deliberately.
    assert_eq!(grown.peak_kv_reserved_bytes, 155_516_928_000);
}

/// A prompt whose full KV can never fit its placement must stay queued
/// (exactly like an atomic admission whose allocation fails) instead of
/// thrashing through admit → grow-fail → evict → re-admit cycles that
/// burn prefill compute forever.
#[test]
fn never_fitting_prompt_stays_queued_without_thrash() {
    let cluster = paper_cluster();
    let model = llama_13b();
    let requests = vec![Request {
        id: RequestId(0),
        arrival: 0.0,
        input_len: 10_000_000, // far beyond any pool on the cluster
        output_len: 8,
        class: SloClass::Batch,
        tenant: TenantId(0),
        session: None,
    }];
    let trace = Trace::from_requests(requests, DatasetKind::LongBench);
    let mk = |chunk: Option<u64>| {
        let cfg = EngineConfig {
            prefill_chunk_tokens: chunk,
            drain_timeout: 120.0,
            ..EngineConfig::default()
        };
        run(
            StaticPolicy::new("vllm", a100_topo()),
            &cluster,
            &model,
            cfg,
            &trace,
        )
    };
    let atomic = mk(None);
    let grown = mk(Some(512));
    assert_eq!(atomic.unfinished, 1);
    assert_eq!(grown.unfinished, 1);
    // Parity with atomic: never admitted, so no compute burned and no
    // recompute-preemption churn.
    assert_eq!(grown.prefill_iterations, 0, "thrash: prompt was admitted");
    assert_eq!(grown.preemptions, 0);
    assert_eq!(grown.kv_grow_failures, 0);
}

/// The decode headroom is a real prepaid cushion: the first appends
/// after prefill completion consume the reservation without allocating,
/// so a chunked run's used bytes right after prefill already cover the
/// early decode tokens.
#[test]
fn decode_headroom_prepays_first_appends() {
    let cluster = paper_cluster();
    let model = llama_13b();
    // One short prompt, long output: the request decodes alone.
    let requests = vec![Request {
        id: RequestId(0),
        arrival: 0.0,
        input_len: 100,
        output_len: 64,
        class: SloClass::Interactive,
        tenant: TenantId(0),
        session: None,
    }];
    let trace = Trace::from_requests(requests, DatasetKind::ShareGpt);
    let cfg = EngineConfig {
        prefill_chunk_tokens: Some(256),
        decode_headroom_tokens: 16,
        ..EngineConfig::default()
    };
    let report = run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        cfg,
        &trace,
    );
    assert_eq!(report.completed.len(), 1);
    // Reservation = 100 (prompt) + 16 (headroom) = 116 tokens; with the
    // 164-token final context (100 + 64) the peak must cover exactly the
    // content blocks, not reservation + content (the cushion is consumed
    // by the first appends, not stacked under them).
    let per_layer = 16u64 * 2 * 128 * 2; // block bytes per group per layer
    let blocks_final = (164u32.div_ceil(16)) as u64; // 11 blocks
    let kv_heads = model.num_heads / model.gqa_ratio();
    let expect = blocks_final * kv_heads as u64 * model.num_layers as u64 * per_layer;
    assert_eq!(
        report.peak_kv_reserved_bytes, expect,
        "peak {} should equal the content blocks {}, cushion consumed",
        report.peak_kv_reserved_bytes, expect
    );
}

/// Oversized-chunk degeneration still holds with growth + fusion off the
/// table: a chunk ≥ the longest prompt admits whole and reserves whole,
/// so the engine is digest-identical to atomic mode (the PR-2 invariant
/// carried forward over the new reservation path).
#[test]
fn oversized_chunk_still_digest_identical() {
    let atomic = run_with(EngineConfig::default(), 77, 4.0);
    let chunked = run_with(
        EngineConfig {
            prefill_chunk_tokens: Some(1 << 20),
            ..EngineConfig::default()
        },
        77,
        4.0,
    );
    assert_eq!(atomic.digest(), chunked.digest());
}

/// Chunked + slack + fused runs stay deterministic.
#[test]
fn fused_run_is_deterministic() {
    let cfg = || EngineConfig {
        prefill_chunk_tokens: Some(256),
        fused_microbatches: true,
        admission: AdmissionPolicy::SloSlack,
        ..EngineConfig::default()
    };
    let a = run_with(cfg(), 42, 5.0);
    let b = run_with(cfg(), 42, 5.0);
    assert_eq!(a.digest(), b.digest());
    assert!(a.completed.len() > 10);
}
