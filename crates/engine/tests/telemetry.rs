//! Telemetry bus integration gates (ISSUE 6).
//!
//! 1. **Digest neutrality** — enabling telemetry (any ring size, any
//!    window) must not perturb the simulation: behavior digests are
//!    bit-identical with the bus on and off. The scenario gate pins the
//!    same property across both `HETIS_DISPATCH_SOLVER` modes.
//! 2. **Flow-record completeness** — one JSONL flow record per completed
//!    request, every line valid JSON, snapshot completion counts equal to
//!    the report's.
//! 3. **Exact percentile convergence** — with `TelemetryConfig::full_run`
//!    the streaming per-class p99 TTFT equals the end-of-run report p99
//!    bit for bit (same samples, same `hetis_sim::percentile`).
//! 4. **Drop accounting** — a tiny ring wraps, `telemetry_dropped`
//!    surfaces the overwrites in the report, and the digest still
//!    matches the disabled run (drops are a bus-side artifact).

use hetis_cluster::cluster::paper_cluster;
use hetis_cluster::GpuType;
use hetis_engine::policy::StaticPolicy;
use hetis_engine::{
    run, AdmissionPolicy, EngineConfig, InstanceRole, InstanceTopo, RunReport, StageTopo, Topology,
};
use hetis_model::llama_13b;
use hetis_parallel::StageConfig;
use hetis_telemetry::{validate_json_line, TelemetryConfig};
use hetis_workload::{DatasetKind, Poisson, SloClass, TraceBuilder};

fn a100_topo() -> Topology {
    let c = paper_cluster();
    Topology {
        instances: vec![InstanceTopo {
            stages: vec![StageTopo::plain(StageConfig {
                devices: c.devices_of_type(GpuType::A100),
                layers: 40,
            })],
            role: InstanceRole::Both,
        }],
    }
}

/// Chunked + slack-ordered run over a mixed ShareGPT trace — the same
/// harness shape as the kv_growth suite, exercising every tap site
/// (arrival, admission, chunks, first token, decode, completion).
fn run_with(telemetry: Option<TelemetryConfig>, seed: u64, rate: f64) -> RunReport {
    let cluster = paper_cluster();
    let model = llama_13b();
    let trace = TraceBuilder::new(DatasetKind::ShareGpt, seed).build(&Poisson::new(rate), 20.0);
    let cfg = EngineConfig {
        prefill_chunk_tokens: Some(256),
        admission: AdmissionPolicy::SloSlack,
        telemetry,
        ..EngineConfig::default()
    };
    run(
        StaticPolicy::new("vllm", a100_topo()),
        &cluster,
        &model,
        cfg,
        &trace,
    )
}

/// The zero-cost gating contract, measured: default bus, full-run bus and
/// a deliberately wrapping 8-slot ring all reproduce the disabled run's
/// digest exactly.
#[test]
fn telemetry_is_digest_neutral() {
    let off = run_with(None, 42, 5.0);
    assert!(off.completed.len() > 10, "trace too light to mean anything");
    assert_eq!(off.telemetry_dropped, 0);
    assert!(off.telemetry.is_none());

    let on = run_with(Some(TelemetryConfig::default()), 42, 5.0);
    assert_eq!(off.digest(), on.digest(), "telemetry perturbed the run");

    let full = run_with(Some(TelemetryConfig::full_run()), 42, 5.0);
    assert_eq!(off.digest(), full.digest());

    let tiny = run_with(
        Some(TelemetryConfig {
            ring_capacity: 8,
            ..TelemetryConfig::default()
        }),
        42,
        5.0,
    );
    assert_eq!(off.digest(), tiny.digest());
}

/// Satellite: ring-wrap drops surface in the report without touching the
/// digest (asserted above) — and a roomy ring drops nothing.
#[test]
fn dropped_counter_counts_ring_wrap() {
    let tiny = run_with(
        Some(TelemetryConfig {
            ring_capacity: 8,
            ..TelemetryConfig::default()
        }),
        42,
        5.0,
    );
    let snap = tiny.telemetry.as_ref().expect("bus was enabled");
    assert!(
        tiny.telemetry_dropped > 0,
        "an 8-slot ring must wrap on this trace"
    );
    assert_eq!(snap.dropped, tiny.telemetry_dropped);
    assert_eq!(snap.events_buffered, 8, "ring stays at capacity after wrap");

    let roomy = run_with(Some(TelemetryConfig::default()), 42, 5.0);
    assert_eq!(roomy.telemetry_dropped, 0);
    let snap = roomy.telemetry.as_ref().unwrap();
    assert_eq!(
        snap.events_published, snap.events_buffered as u64,
        "nothing dropped ⇒ everything still buffered"
    );
}

/// Every completion produces exactly one flow record; the JSONL sink
/// writes one parseable line per record; the snapshot agrees with the
/// report on counts and leaves no flow open after drain.
#[test]
fn flow_records_cover_every_completion() {
    let path = std::env::temp_dir().join("hetis_telemetry_test_flows.jsonl");
    let report = run_with(
        Some(TelemetryConfig {
            jsonl_path: Some(path.to_str().unwrap().to_string()),
            ..TelemetryConfig::full_run()
        }),
        7,
        4.0,
    );
    let snap = report.telemetry.as_ref().expect("bus was enabled");
    assert_eq!(snap.completions, report.completed.len() as u64);
    assert_eq!(report.unfinished, 0);
    assert_eq!(snap.open_flows, 0, "drained run must close every flow");

    let text = std::fs::read_to_string(&path).expect("jsonl sink wrote the flow log");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), report.completed.len());
    for line in &lines {
        validate_json_line(line).expect("flow record line must be valid JSON");
    }
    // Spot-check identity: every completed request id appears in the log.
    for c in &report.completed {
        let needle = format!("\"req_id\":{},", c.id.0);
        assert!(
            text.contains(&needle),
            "completion {} missing from flow log",
            c.id.0
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The convergence gate: full-run windows feed the *same* latency samples
/// through the *same* percentile function as the report, so streaming
/// per-class percentiles equal report percentiles exactly — not within a
/// tolerance, `==`.
#[test]
fn full_run_streaming_p99_matches_report_exactly() {
    let report = run_with(Some(TelemetryConfig::full_run()), 1234, 6.0);
    let snap = report.telemetry.as_ref().expect("bus was enabled");
    let mut checked = 0;
    for s in report.class_stats() {
        if s.completed == 0 {
            continue;
        }
        let c = snap
            .class(s.class)
            .expect("class with completions has stats");
        assert_eq!(c.ttft.count, s.completed, "window holds every sample");
        assert_eq!(
            snap.p99_ttft(s.class),
            Some(s.p99_ttft),
            "streaming p99 TTFT diverged for {:?}",
            s.class
        );
        checked += 1;
    }
    assert!(checked > 0, "no class completed anything");
    // Cross-class totals line up too.
    let total: usize = snap.classes.iter().map(|c| c.ttft.count).sum();
    assert_eq!(total, report.completed.len());
    let _ = SloClass::ALL; // (imported for readers grepping class order)
}

/// The periodic tick populates the operational series: per-instance queue
/// depths and a cluster KV-occupancy sample, all timestamped within the
/// run; disabling the tick (`sample_period: 0.0`) leaves them empty while
/// lifecycle edges still flow.
#[test]
fn periodic_tick_samples_queues_and_kv() {
    let ticked = run_with(Some(TelemetryConfig::default()), 42, 5.0);
    let snap = ticked.telemetry.as_ref().unwrap();
    assert_eq!(snap.queue_depths.len(), 1, "one instance in the topo");
    let q = &snap.queue_depths[0];
    assert!(q.time > 0.0 && q.time <= snap.now);
    let kv = snap.kv.expect("tick samples KV occupancy");
    assert!(kv.pool_bytes > 0);
    assert!(kv.utilization() >= 0.0 && kv.utilization() <= 1.0);

    let untick = run_with(
        Some(TelemetryConfig {
            sample_period: 0.0,
            ..TelemetryConfig::default()
        }),
        42,
        5.0,
    );
    let snap = untick.telemetry.as_ref().unwrap();
    assert!(snap.queue_depths.is_empty());
    assert!(snap.kv.is_none());
    assert!(snap.completions > 0, "lifecycle edges still flow untick'd");
}
