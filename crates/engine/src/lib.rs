//! Discrete-event LLM serving engine with continuous batching.
//!
//! This crate replaces the vLLM runtime the paper builds on. It simulates,
//! at iteration granularity, a set of data-parallel serving instances, each
//! a pipeline of tensor-parallel stages over the calibrated cluster model:
//!
//! * **continuous batching** — prefill-priority scheduling with a token
//!   budget, per-cohort microbatches keeping every pipeline stage busy
//!   (vLLM's "virtual engines"),
//! * **chunked prefill & SLO scheduling** — long prompts optionally
//!   split into token-budget chunks interleaved with decode iterations
//!   or fused with them into single mixed microbatches, and an
//!   admission queue ordered by TTFT slack instead of FIFO
//!   (see [`config::EngineConfig::prefill_chunk_tokens`],
//!   [`config::EngineConfig::fused_microbatches`] and
//!   [`config::AdmissionPolicy`]),
//! * **fine-grained paged KV admission** — byte-accurate per-device
//!   pools with block rounding; under chunking, admission reserves only
//!   the first chunk + decode headroom and the reservation grows with
//!   each completed chunk (`grow_tokens`); decode steps allocate before
//!   running; both paths trigger the policy's preemption hooks on
//!   exhaustion,
//! * **head placements** — every request carries a per-stage map of which
//!   device computes which query heads (trivially stage-local for the
//!   baselines; LP-dispatched for Hetis),
//! * **metrics** — TTFT / TPOT / normalized latency, per-SLO-class
//!   attainment and goodput, per-module latency contributions
//!   (max-stage × stage-count, the paper's Fig. 13 metric), and
//!   time-series traces of cache usage and head counts (Fig. 14).
//!
//! Systems plug in through the [`policy::Policy`] trait: the engine owns
//! execution and accounting, policies own decisions (topology, routing,
//! placement, re-dispatch, victim selection).

pub mod churn;
pub mod config;
pub mod control;
pub mod engine;
pub mod memory;
pub mod metrics;
pub mod policy;
pub mod prefix;
pub mod request;
pub mod stage;
pub mod topology;

pub use churn::{
    ClusterEvent, ClusterEventKind, DeviceHealth, HealthView, ReplanRecord, ReplanResponse,
};
pub use config::{AdmissionPolicy, EngineConfig};
pub use control::{ClosedLoopConfig, ControlAction, ControlRecord, ControlResponse};
pub use engine::{run, run_with_churn, Engine};
pub use memory::{DeviceKv, KvAllocError, KvState};
pub use metrics::{ClassStats, CompletedRequest, CostReport, ModuleSample, RunReport, TraceSample};
pub use policy::{
    Handoff, KvView, Policy, PolicyCtx, PrefixView, RedispatchOp, RequestsView, VictimAction,
};
pub use prefix::{PrefixCache, PrefixEntry};
pub use request::{Phase, RunningRequest};
pub use stage::{
    decode_stage_breakdown, fused_stage_breakdown, prefill_stage_breakdown, AttnLoad,
    StageBreakdown,
};
pub use topology::{HeadPlacement, InstanceRole, InstanceTopo, StageTopo, Topology};
