//! Engine-level prefix/KV reuse: the byte-ledger analogue of the block
//! mechanics in `hetis-kvcache` (radix-keyed trie + copy-on-write
//! refcounts). The engine tracks KV as opaque per-request byte
//! reservations, so its reuse model is a *session cache*: when turn `t`
//! of a multi-turn session finishes, its final context is remembered as
//! a reusable prefix for turn `t + 1`, whose prompt replays that context
//! verbatim (see `hetis_workload::sessions`).
//!
//! # Memory model
//!
//! Cached prefixes live in **free** memory. A finished request's KV is
//! freed from the ledger as always; the cache only remembers how many
//! bytes per device the prefix *would* re-occupy, and admission of the
//! follow-up turn reserves warm + cold tokens exactly like a cold
//! request of the same length. Real residents therefore always win over
//! cached prefixes, and the invariant "a device's cached bytes never
//! exceed its free bytes" is enforced lazily at probe time by evicting
//! the oldest entries touching the pressured device — registration
//! order `(SimTime, RequestId)` is a deterministic total order, and the
//! per-device scoping keeps shard groups (device-disjoint by
//! construction) bit-identical to the sequential engine.
//!
//! A hit pins the follow-up turn to the cached placement: the warm KV
//! blocks sit on specific devices, so the head groups that attend to
//! them are pinned there (the dispatcher sees this constraint through
//! [`crate::policy::PolicyCtx::prefix`] and by the engine bypassing
//! `place_batch` for hits).

use crate::topology::HeadPlacement;
use hetis_cluster::DeviceId;
use hetis_sim::SimTime;
use hetis_workload::RequestId;
use std::collections::HashMap;

/// One reusable prefix: the final context of a finished session turn.
#[derive(Debug, Clone)]
pub struct PrefixEntry {
    /// Context length of the finished turn (prompt + generated) — the
    /// token span a follow-up turn can adopt without recompute.
    pub tokens: u32,
    /// Instance that served the turn (warm KV only exists there).
    pub instance: usize,
    /// The turn's head placement. A hit reuses it verbatim — the warm
    /// blocks pin their head groups to these devices.
    pub placement: HeadPlacement,
    /// Bytes the prefix occupied per device at finish time (ledger
    /// `request_bytes`, summed over stages).
    pub bytes: Vec<(DeviceId, u64)>,
    /// `(finish time, request id)` — a deterministic total order used
    /// as the eviction clock (oldest first).
    pub registered: (SimTime, RequestId),
}

impl PrefixEntry {
    /// Devices the cached prefix touches.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.bytes.iter().map(|&(d, _)| d)
    }

    /// Total cached bytes across devices.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|&(_, b)| b).sum()
    }
}

/// Session-keyed prefix cache: `(session, turn) → PrefixEntry`, with
/// per-device cached-byte totals for pressure eviction.
#[derive(Debug, Default)]
pub struct PrefixCache {
    entries: HashMap<(u64, u32), PrefixEntry>,
    /// Cached bytes per device index (length = cluster device count).
    cached: Vec<u64>,
}

impl PrefixCache {
    /// An empty cache over `devices` cluster devices.
    pub fn new(devices: usize) -> Self {
        PrefixCache {
            entries: HashMap::new(),
            cached: vec![0; devices],
        }
    }

    /// Number of cached prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cached bytes currently attributed to `d`.
    pub fn cached_bytes(&self, d: DeviceId) -> u64 {
        self.cached[d.index()]
    }

    /// The cached prefix of `(session, turn)`, if any.
    pub fn get(&self, session: u64, turn: u32) -> Option<&PrefixEntry> {
        self.entries.get(&(session, turn))
    }

    /// Registers the finished turn's context, superseding the session's
    /// previous turn (a strict prefix of this one — keeping both would
    /// double-count bytes the new entry already covers) **only when the
    /// predecessor lives on the same instance**. A predecessor served by
    /// another instance is left to pressure eviction: shard groups hold
    /// device-disjoint instance subsets, so a cross-instance predecessor
    /// may sit in another group's cache where this registration cannot
    /// see it — superseding it here (but not there) would break the
    /// sharded runner's bit-identity with the sequential engine.
    pub fn insert(&mut self, session: u64, turn: u32, entry: PrefixEntry) {
        if turn > 0
            && self
                .get(session, turn - 1)
                .is_some_and(|prev| prev.instance == entry.instance)
        {
            self.take(session, turn - 1);
        }
        self.take(session, turn); // re-registration replaces
        for &(d, b) in &entry.bytes {
            self.cached[d.index()] += b;
        }
        self.entries.insert((session, turn), entry);
    }

    /// Removes and returns `(session, turn)` — consume-on-hit, and the
    /// internal eviction primitive.
    pub fn take(&mut self, session: u64, turn: u32) -> Option<PrefixEntry> {
        let e = self.entries.remove(&(session, turn))?;
        for &(d, b) in &e.bytes {
            self.cached[d.index()] -= b;
        }
        Some(e)
    }

    /// Evicts oldest-first (by `registered`) among entries touching `d`
    /// until `d`'s cached bytes fit within `free` — the lazy pressure
    /// sweep run before a probe answers. Returns entries evicted.
    pub fn enforce_pressure(&mut self, d: DeviceId, free: u64) -> usize {
        let mut evicted = 0;
        while self.cached[d.index()] > free {
            let Some(&key) = self
                .entries
                .iter()
                .filter(|(_, e)| e.bytes.iter().any(|&(dev, _)| dev == d))
                .min_by_key(|(_, e)| e.registered)
                .map(|(k, _)| k)
            else {
                break;
            };
            self.take(key.0, key.1);
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry (topology changed: worker pools reshaped or a
    /// device died, so cached placements may no longer be valid).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cached.iter_mut().for_each(|b| *b = 0);
    }

    /// Drains every `(key, entry)` pair, leaving the cache empty — the
    /// shard split/absorb hand-over.
    pub fn drain_entries(&mut self) -> Vec<((u64, u32), PrefixEntry)> {
        self.cached.iter_mut().for_each(|b| *b = 0);
        self.entries.drain().collect()
    }

    /// Re-inserts a drained entry verbatim (no predecessor superseding —
    /// split/absorb must move entries without re-running registration
    /// semantics).
    pub fn restore(&mut self, key: (u64, u32), entry: PrefixEntry) {
        for &(d, b) in &entry.bytes {
            self.cached[d.index()] += b;
        }
        self.entries.insert(key, entry);
    }

    /// Iterates all entries (arbitrary order — callers must not depend
    /// on it; used for invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (&(u64, u32), &PrefixEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement() -> HeadPlacement {
        HeadPlacement {
            per_stage: vec![vec![(DeviceId(0), 40)]],
        }
    }

    fn entry(tokens: u32, bytes: &[(u32, u64)], at: f64, rid: u64) -> PrefixEntry {
        PrefixEntry {
            tokens,
            instance: 0,
            placement: placement(),
            bytes: bytes.iter().map(|&(d, b)| (DeviceId(d), b)).collect(),
            registered: (SimTime::from_secs(at), RequestId(rid)),
        }
    }

    #[test]
    fn insert_supersedes_previous_turn() {
        let mut c = PrefixCache::new(2);
        c.insert(7, 0, entry(100, &[(0, 1000)], 1.0, 1));
        assert_eq!(c.cached_bytes(DeviceId(0)), 1000);
        c.insert(7, 1, entry(250, &[(0, 2500)], 2.0, 2));
        assert!(c.get(7, 0).is_none(), "turn 0 is a strict prefix of turn 1");
        assert_eq!(c.get(7, 1).unwrap().tokens, 250);
        assert_eq!(c.cached_bytes(DeviceId(0)), 2500);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cross_instance_predecessor_is_left_to_eviction() {
        // A session that hopped instances between turns: the new turn's
        // registration must NOT supersede the other instance's entry (a
        // shard group could not see it), only pressure eviction may.
        let mut c = PrefixCache::new(2);
        c.insert(7, 0, entry(100, &[(0, 1000)], 1.0, 1)); // instance 0
        let mut hopped = entry(250, &[(1, 2500)], 2.0, 2);
        hopped.instance = 1;
        c.insert(7, 1, hopped);
        assert!(c.get(7, 0).is_some(), "cross-instance predecessor stays");
        assert_eq!(c.len(), 2);
        assert_eq!(c.cached_bytes(DeviceId(0)), 1000);
        assert_eq!(c.cached_bytes(DeviceId(1)), 2500);
        assert_eq!(c.enforce_pressure(DeviceId(0), 0), 1);
        assert!(c.get(7, 0).is_none());
    }

    #[test]
    fn take_is_consume_once() {
        let mut c = PrefixCache::new(1);
        c.insert(3, 2, entry(64, &[(0, 640)], 5.0, 9));
        assert_eq!(c.take(3, 2).unwrap().tokens, 64);
        assert!(c.take(3, 2).is_none());
        assert_eq!(c.cached_bytes(DeviceId(0)), 0);
    }

    #[test]
    fn pressure_evicts_oldest_first_per_device() {
        let mut c = PrefixCache::new(2);
        c.insert(1, 0, entry(10, &[(0, 100)], 1.0, 1)); // oldest on dev 0
        c.insert(2, 0, entry(10, &[(0, 100), (1, 50)], 2.0, 2));
        c.insert(3, 0, entry(10, &[(1, 50)], 3.0, 3)); // dev 1 only
                                                       // Device 0 holds 200 cached bytes; free = 150 forces out the
                                                       // oldest dev-0 entry only.
        assert_eq!(c.enforce_pressure(DeviceId(0), 150), 1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some() && c.get(3, 0).is_some());
        assert_eq!(c.cached_bytes(DeviceId(0)), 100);
        // Device 1 pressure never touches dev-0-only entries.
        assert_eq!(c.enforce_pressure(DeviceId(1), 0), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn pressure_is_a_noop_when_within_free() {
        let mut c = PrefixCache::new(1);
        c.insert(1, 0, entry(10, &[(0, 100)], 1.0, 1));
        assert_eq!(c.enforce_pressure(DeviceId(0), 100), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn drain_and_restore_round_trip() {
        let mut c = PrefixCache::new(2);
        c.insert(1, 3, entry(10, &[(0, 100)], 1.0, 1));
        c.insert(2, 5, entry(20, &[(1, 200)], 2.0, 2));
        let drained = c.drain_entries();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
        assert_eq!(c.cached_bytes(DeviceId(0)), 0);
        let mut other = PrefixCache::new(2);
        for (k, e) in drained {
            other.restore(k, e);
        }
        assert_eq!(other.len(), 2);
        assert_eq!(other.cached_bytes(DeviceId(1)), 200);
        assert_eq!(other.get(1, 3).unwrap().tokens, 10);
    }

    #[test]
    fn clear_resets_accounting() {
        let mut c = PrefixCache::new(1);
        c.insert(1, 0, entry(10, &[(0, 100)], 1.0, 1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.cached_bytes(DeviceId(0)), 0);
    }
}
