//! Serving topology: instances, stages, attention workers, and per-request
//! head placements.

use hetis_cluster::DeviceId;
use hetis_parallel::StageConfig;

/// Role of an instance — Splitwise splits phases across instances; every
/// other system serves both phases everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceRole {
    /// Serves prefill and decode (default).
    Both,
    /// Prefill-only (Splitwise's high-end pool).
    PrefillOnly,
    /// Decode-only (Splitwise's low-end pool).
    DecodeOnly,
    /// Out of service: a device of its primary TP group died (cluster
    /// churn). Down instances schedule nothing and accept no routes; a
    /// later `Join` of the lost device may revive them.
    Down,
}

/// One pipeline stage of an instance: the primary TP group plus any
/// attention workers pooled behind it (Hetis; empty for baselines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTopo {
    /// Primary TP group and its layer count.
    pub primary: StageConfig,
    /// Attention workers multiplexed by this stage (decode attention +
    /// KV hosting only).
    pub attention_workers: Vec<DeviceId>,
}

impl StageTopo {
    /// A stage with no attention workers.
    pub fn plain(primary: StageConfig) -> Self {
        StageTopo {
            primary,
            attention_workers: Vec::new(),
        }
    }

    /// All devices that can hold this stage's KV or compute its attention:
    /// primary TP group first, then attention workers.
    pub fn attention_devices(&self) -> Vec<DeviceId> {
        let mut v = self.primary.devices.clone();
        v.extend(self.attention_workers.iter().copied());
        v
    }
}

/// One data-parallel serving instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceTopo {
    /// Pipeline stages in order.
    pub stages: Vec<StageTopo>,
    /// Phase role.
    pub role: InstanceRole,
}

impl InstanceTopo {
    /// Pipeline depth.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }
}

/// A complete serving topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// The instances.
    pub instances: Vec<InstanceTopo>,
}

impl Topology {
    /// Indices of instances that accept new requests (route targets).
    pub fn entry_instances(&self) -> Vec<usize> {
        let prefill: Vec<usize> = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.role != InstanceRole::DecodeOnly && i.role != InstanceRole::Down)
            .map(|(k, _)| k)
            .collect();
        prefill
    }
}

/// Where one request's query heads live, per pipeline stage:
/// `per_stage[s]` lists `(device, query_heads)` with heads summing to the
/// model's head count and each entry a multiple of the GQA ratio.
///
/// Baselines use [`HeadPlacement::stage_local`]; Hetis builds these from
/// the dispatch LP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadPlacement {
    /// Per stage: (device, query heads) with nonzero head counts only.
    pub per_stage: Vec<Vec<(DeviceId, u32)>>,
}

impl HeadPlacement {
    /// The conventional TP placement: each stage's heads split evenly
    /// across its primary devices.
    pub fn stage_local(stages: &[StageTopo], num_heads: u32) -> Self {
        let per_stage = stages
            .iter()
            .map(|s| {
                let tp = s.primary.tp() as u32;
                let per = num_heads / tp;
                s.primary
                    .devices
                    .iter()
                    .map(|&d| (d, per))
                    .collect::<Vec<_>>()
            })
            .collect();
        HeadPlacement { per_stage }
    }

    /// Total heads in stage `s`.
    pub fn heads_in_stage(&self, s: usize) -> u32 {
        self.per_stage[s].iter().map(|&(_, h)| h).sum()
    }

    /// Heads of stage `s` on `device` (0 if absent).
    pub fn heads_on(&self, s: usize, device: DeviceId) -> u32 {
        self.per_stage[s]
            .iter()
            .find(|&&(d, _)| d == device)
            .map(|&(_, h)| h)
            .unwrap_or(0)
    }

    /// Devices used anywhere in the placement, deduplicated, sorted.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .per_stage
            .iter()
            .flat_map(|s| s.iter().map(|&(d, _)| d))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Validates the placement against head count and group ratio.
    pub fn validate(&self, num_heads: u32, r: u32) -> Result<(), String> {
        for (s, stage) in self.per_stage.iter().enumerate() {
            let sum: u32 = stage.iter().map(|&(_, h)| h).sum();
            if sum != num_heads {
                return Err(format!("stage {s}: {sum} heads, expected {num_heads}"));
            }
            for &(d, h) in stage {
                if h == 0 {
                    return Err(format!("stage {s}: zero-head entry on {d}"));
                }
                if h % r != 0 {
                    return Err(format!(
                        "stage {s}: {h} heads on {d} not a multiple of r={r}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(devs: &[u32], layers: u32) -> StageTopo {
        StageTopo::plain(StageConfig {
            devices: devs.iter().map(|&i| DeviceId(i)).collect(),
            layers,
        })
    }

    #[test]
    fn stage_local_placement() {
        let stages = vec![stage(&[0, 1], 20), stage(&[2, 3], 20)];
        let p = HeadPlacement::stage_local(&stages, 40);
        assert_eq!(p.heads_in_stage(0), 40);
        assert_eq!(p.heads_on(0, DeviceId(0)), 20);
        assert_eq!(p.heads_on(0, DeviceId(2)), 0);
        assert_eq!(p.heads_on(1, DeviceId(2)), 20);
        p.validate(40, 1).unwrap();
        assert_eq!(p.devices().len(), 4);
    }

    #[test]
    fn validate_catches_bad_sum_and_ratio() {
        let p = HeadPlacement {
            per_stage: vec![vec![(DeviceId(0), 30), (DeviceId(1), 20)]],
        };
        assert!(p.validate(40, 1).is_err());
        let p2 = HeadPlacement {
            per_stage: vec![vec![(DeviceId(0), 36), (DeviceId(1), 28)]],
        };
        // 64 heads, r=8: 36 not a multiple of 8.
        assert!(p2.validate(64, 8).is_err());
        let p3 = HeadPlacement {
            per_stage: vec![vec![(DeviceId(0), 32), (DeviceId(1), 32)]],
        };
        p3.validate(64, 8).unwrap();
    }

    #[test]
    fn entry_instances_exclude_decode_only() {
        let topo = Topology {
            instances: vec![
                InstanceTopo {
                    stages: vec![stage(&[0], 40)],
                    role: InstanceRole::PrefillOnly,
                },
                InstanceTopo {
                    stages: vec![stage(&[1], 40)],
                    role: InstanceRole::DecodeOnly,
                },
            ],
        };
        assert_eq!(topo.entry_instances(), vec![0]);
    }

    #[test]
    fn attention_devices_order() {
        let mut s = stage(&[0, 1], 40);
        s.attention_workers = vec![DeviceId(5), DeviceId(6)];
        assert_eq!(
            s.attention_devices(),
            vec![DeviceId(0), DeviceId(1), DeviceId(5), DeviceId(6)]
        );
    }
}
