//! Stage-time decomposition: per-module components of one iteration on one
//! pipeline stage, including Hetis's distributed-attention phase.
//!
//! The per-module split matters beyond fidelity: Fig. 13 reports P95 MLP
//! and Attention latency contributions separately, defined as *max stage
//! time × number of stages*; this module provides the components the
//! metrics layer aggregates.

use crate::topology::StageTopo;
use hetis_cluster::{
    all_reduce_time, attn_decode_time, attn_prefill_time, dense_decode_time, dense_prefill_time,
    AttnWork, Cluster, DenseWork, DeviceId,
};
use hetis_model::{DenseOp, ModelSpec, ModuleCosts};
use hetis_parallel::PrefillBatch;

/// Per-layer attention work placed on one device during a decode
/// iteration.
#[derive(Debug, Clone, Copy)]
pub struct AttnLoad {
    /// The device computing these heads.
    pub device: DeviceId,
    /// Per-layer work (query heads and KV bytes of this microbatch).
    pub work: AttnWork,
    /// True when the device is an attention worker reached over the
    /// network (adds the Eq. 4 transfer term).
    pub remote: bool,
}

/// One stage-iteration's time, decomposed by module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBreakdown {
    /// QKV + output projection time (whole stage).
    pub proj: f64,
    /// MLP time (whole stage).
    pub mlp: f64,
    /// Attention phase (max across participating devices, incl. transfer).
    pub attn: f64,
    /// Communication: TP all-reduces + LM head stream + inter-stage P2P is
    /// accounted by the engine separately.
    pub comm: f64,
    /// Sum of the above.
    pub total: f64,
}

impl StageBreakdown {
    /// Zero time.
    pub const ZERO: StageBreakdown = StageBreakdown {
        proj: 0.0,
        mlp: 0.0,
        attn: 0.0,
        comm: 0.0,
        total: 0.0,
    };
}

/// Decode-iteration breakdown for one stage.
///
/// * `dense_tokens` — sequences in the microbatch (one token each).
/// * `attn_loads` — per-device attention work for this microbatch,
///   already split per the requests' head placements. The attention phase
///   is their max: primaries and workers compute in parallel and the stage
///   blocks on the slowest (Eq. 7a's max).
pub fn decode_stage_breakdown(
    cluster: &Cluster,
    model: &ModelSpec,
    stage: &StageTopo,
    dense_tokens: u64,
    attn_loads: &[AttnLoad],
    lm_head: bool,
) -> StageBreakdown {
    if dense_tokens == 0 {
        return StageBreakdown::ZERO;
    }
    let costs = ModuleCosts::new(model);
    let (proj, mlp) = dense_phase_max(cluster, &costs, stage, dense_tokens, DensePhase::Decode);
    let attn = decode_attn_max(cluster, &costs, stage, attn_loads);
    assemble_breakdown(
        cluster,
        model,
        &costs,
        stage,
        proj,
        mlp,
        attn,
        dense_tokens,
        lm_head,
    )
}

/// Which kernel regime times the dense modules of an iteration.
#[derive(Clone, Copy)]
enum DensePhase {
    /// Weight-streaming-bound one-token-per-sequence regime.
    Decode,
    /// Compute-bound regime (prefill chunks, and fused iterations whose
    /// decode tokens ride the chunk's pass).
    Prefill,
}

/// Projection and MLP times over the primary TP group: max across
/// devices (heterogeneous groups are legal even if the searches rarely
/// pick them).
fn dense_phase_max(
    cluster: &Cluster,
    costs: &ModuleCosts<'_>,
    stage: &StageTopo,
    tokens: u64,
    phase: DensePhase,
) -> (f64, f64) {
    let tp = stage.primary.tp() as f64;
    let mut proj = 0.0_f64;
    let mut mlp = 0.0_f64;
    for &d in &stage.primary.devices {
        let spec = cluster.spec(d);
        let proj_work = DenseWork {
            flops: (costs.dense_flops(DenseOp::Qkv, tokens)
                + costs.dense_flops(DenseOp::OutProj, tokens))
                / tp,
            weight_bytes: (costs.dense_weight_bytes(DenseOp::Qkv)
                + costs.dense_weight_bytes(DenseOp::OutProj)) as f64
                / tp,
        };
        let mlp_work = DenseWork {
            flops: costs.dense_flops(DenseOp::Mlp, tokens) / tp,
            weight_bytes: costs.dense_weight_bytes(DenseOp::Mlp) as f64 / tp,
        };
        let (t_proj, t_mlp) = match phase {
            DensePhase::Decode => (
                dense_decode_time(spec, proj_work, 2),
                dense_decode_time(spec, mlp_work, 1),
            ),
            DensePhase::Prefill => (
                dense_prefill_time(spec, proj_work, 2),
                dense_prefill_time(spec, mlp_work, 1),
            ),
        };
        proj = proj.max(t_proj);
        mlp = mlp.max(t_mlp);
    }
    (proj, mlp)
}

/// Decode-attention phase: parallel across participating devices, max
/// governs (Eq. 7a), remote workers pay the Eq. 4 transfer.
fn decode_attn_max(
    cluster: &Cluster,
    costs: &ModuleCosts<'_>,
    stage: &StageTopo,
    attn_loads: &[AttnLoad],
) -> f64 {
    let anchor = stage.primary.devices[0];
    let mut attn = 0.0_f64;
    for load in attn_loads {
        if load.work.is_zero() {
            continue;
        }
        let spec = cluster.spec(load.device);
        let mut t = attn_decode_time(spec, load.work);
        if load.remote {
            let link = cluster.link(anchor, load.device);
            let bytes = costs.attn_transfer_bytes(load.work.query_heads as u64);
            t += link.alpha + link.beta * bytes;
        }
        attn = attn.max(t);
    }
    attn
}

/// Chunk (quadratic prefill) attention on the primary TP group: max
/// across devices of the batch's total attention FLOPs / tp.
fn prefill_attn_max(
    cluster: &Cluster,
    model: &ModelSpec,
    stage: &StageTopo,
    batch: &PrefillBatch,
) -> f64 {
    let tp = stage.primary.tp() as f64;
    let attn_flops_total = 2.0 * model.num_heads as f64 * model.head_dim as f64 * batch.sq_sum;
    let mut attn = 0.0_f64;
    for &d in &stage.primary.devices {
        attn = attn.max(attn_prefill_time(cluster.spec(d), attn_flops_total / tp));
    }
    attn
}

/// Folds per-layer module times into the stage breakdown: TP all-reduces
/// (one after attention projection, one after MLP) over `comm_tokens`
/// of activations, the LM-head stream when this is the last stage, and
/// the layer multiplication.
#[allow(clippy::too_many_arguments)]
fn assemble_breakdown(
    cluster: &Cluster,
    model: &ModelSpec,
    costs: &ModuleCosts<'_>,
    stage: &StageTopo,
    proj: f64,
    mlp: f64,
    attn: f64,
    comm_tokens: u64,
    lm_head: bool,
) -> StageBreakdown {
    let tp = stage.primary.tp() as f64;
    let comm_layer = if stage.primary.tp() > 1 {
        2.0 * all_reduce_time(
            cluster.worst_link(&stage.primary.devices),
            stage.primary.tp(),
            costs.activation_bytes(comm_tokens) as f64,
        )
    } else {
        0.0
    };

    let layers = stage.primary.layers as f64;
    let lm = if lm_head {
        lm_head_time(cluster, model, stage, tp)
    } else {
        0.0
    };
    let proj_total = proj * layers;
    let mlp_total = mlp * layers;
    let attn_total = attn * layers;
    let comm_total = comm_layer * layers + lm;
    StageBreakdown {
        proj: proj_total,
        mlp: mlp_total,
        attn: attn_total,
        comm: comm_total,
        total: proj_total + mlp_total + attn_total + comm_total,
    }
}

/// Prefill-iteration breakdown for one stage. Prefill attention runs on
/// the primary TP group (Hetis keeps compute-intensive prefill attention
/// with the dense modules — design idea I1).
pub fn prefill_stage_breakdown(
    cluster: &Cluster,
    model: &ModelSpec,
    stage: &StageTopo,
    batch: &PrefillBatch,
    lm_head: bool,
) -> StageBreakdown {
    if batch.tokens == 0 {
        return StageBreakdown::ZERO;
    }
    let costs = ModuleCosts::new(model);
    let (proj, mlp) = dense_phase_max(cluster, &costs, stage, batch.tokens, DensePhase::Prefill);
    let attn = prefill_attn_max(cluster, model, stage, batch);
    assemble_breakdown(
        cluster,
        model,
        &costs,
        stage,
        proj,
        mlp,
        attn,
        batch.tokens,
        lm_head,
    )
}

/// Fused prefill+decode iteration breakdown for one stage — the cost
/// model of vLLM-style chunked prefill's mixed batches.
///
/// The decode batch's `dense_tokens` ride the chunk's dense pass: one
/// projection/MLP kernel runs over `batch.tokens + dense_tokens` tokens
/// with the layer weights streamed **once** (in the alternating loop the
/// same work pays the weight stream and launch overheads twice, plus two
/// all-reduce rounds and two LM-head streams — that duplicated fixed cost
/// is exactly the TPOT the fusion claws back). The attention phase runs
/// the chunk's quadratic kernel on the primary TP group and then the
/// decode batch's distributed kernels (max across participating devices),
/// sequentially — they are distinct kernels over disjoint query sets.
///
/// Degenerates exactly to [`prefill_stage_breakdown`] when the decode
/// batch is empty and to [`decode_stage_breakdown`] when the chunk is.
pub fn fused_stage_breakdown(
    cluster: &Cluster,
    model: &ModelSpec,
    stage: &StageTopo,
    batch: &PrefillBatch,
    dense_tokens: u64,
    attn_loads: &[AttnLoad],
    lm_head: bool,
) -> StageBreakdown {
    if batch.tokens == 0 {
        return decode_stage_breakdown(cluster, model, stage, dense_tokens, attn_loads, lm_head);
    }
    if dense_tokens == 0 {
        return prefill_stage_breakdown(cluster, model, stage, batch, lm_head);
    }
    let costs = ModuleCosts::new(model);
    let combined = batch.tokens + dense_tokens;
    let (proj, mlp) = dense_phase_max(cluster, &costs, stage, combined, DensePhase::Prefill);
    // The attention phase stacks both kernels: the chunk's quadratic
    // kernel on the primaries, then the decode batch's distributed
    // kernels — distinct kernels over disjoint query sets.
    let attn = prefill_attn_max(cluster, model, stage, batch)
        + decode_attn_max(cluster, &costs, stage, attn_loads);
    assemble_breakdown(
        cluster, model, &costs, stage, proj, mlp, attn, combined, lm_head,
    )
}

fn lm_head_time(cluster: &Cluster, model: &ModelSpec, stage: &StageTopo, tp: f64) -> f64 {
    let lm_bytes = (model.vocab_size * model.hidden_size * model.dtype.bytes()) as f64 / tp;
    let worst_bw = stage
        .primary
        .devices
        .iter()
        .map(|&d| cluster.spec(d).decode_stream_bw)
        .fold(f64::INFINITY, f64::min);
    lm_bytes / worst_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_cluster::GpuType;
    use hetis_model::llama_70b;
    use hetis_parallel::StageConfig;

    fn a100_stage(c: &Cluster, layers: u32) -> StageTopo {
        StageTopo::plain(StageConfig {
            devices: c.devices_of_type(GpuType::A100),
            layers,
        })
    }

    fn local_loads(
        _c: &Cluster,
        stage: &StageTopo,
        m: &ModelSpec,
        seqs: u64,
        ctx: u64,
    ) -> Vec<AttnLoad> {
        let costs = ModuleCosts::new(m);
        let tp = stage.primary.tp() as f64;
        stage
            .primary
            .devices
            .iter()
            .map(|&d| AttnLoad {
                device: d,
                work: AttnWork {
                    query_heads: seqs as f64 * m.num_heads as f64 / tp,
                    kv_bytes: seqs as f64 * costs.attn_decode_kv_bytes(m.num_heads as u64, ctx)
                        / tp,
                },
                remote: false,
            })
            .collect()
    }

    #[test]
    fn breakdown_sums_to_total() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        let loads = local_loads(&c, &s, &m, 32, 1000);
        let b = decode_stage_breakdown(&c, &m, &s, 32, &loads, true);
        assert!((b.total - (b.proj + b.mlp + b.attn + b.comm)).abs() < 1e-12);
        assert!(b.mlp > b.proj, "MLP dominates dense time");
        assert!(b.attn > 0.0 && b.comm > 0.0);
    }

    #[test]
    fn remote_attention_adds_transfer() {
        let c = paper_cluster();
        let m = llama_70b();
        let mut s = a100_stage(&c, 80);
        let p100 = c.devices_of_type(GpuType::P100)[0];
        s.attention_workers.push(p100);
        let work = AttnWork {
            query_heads: 512.0,
            kv_bytes: 5e8,
        };
        let local = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[AttnLoad {
                device: s.primary.devices[0],
                work,
                remote: false,
            }],
            false,
        );
        let remote = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[AttnLoad {
                device: p100,
                work,
                remote: true,
            }],
            false,
        );
        assert!(
            remote.attn > local.attn,
            "{} vs {}",
            remote.attn,
            local.attn
        );
    }

    #[test]
    fn attention_phase_is_max_not_sum() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        let w = AttnWork {
            query_heads: 1000.0,
            kv_bytes: 1e9,
        };
        let one = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[AttnLoad {
                device: s.primary.devices[0],
                work: w,
                remote: false,
            }],
            false,
        );
        let two_balanced = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[
                AttnLoad {
                    device: s.primary.devices[0],
                    work: AttnWork {
                        query_heads: 500.0,
                        kv_bytes: 5e8,
                    },
                    remote: false,
                },
                AttnLoad {
                    device: s.primary.devices[1],
                    work: AttnWork {
                        query_heads: 500.0,
                        kv_bytes: 5e8,
                    },
                    remote: false,
                },
            ],
            false,
        );
        assert!(
            two_balanced.attn < one.attn,
            "balancing halves the phase: {} vs {}",
            two_balanced.attn,
            one.attn
        );
    }

    #[test]
    fn prefill_attention_quadratic_in_length() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        // Long prompts so per-kernel launch overhead is negligible.
        let b1 = prefill_stage_breakdown(&c, &m, &s, &PrefillBatch::uniform(1, 4096), false);
        let b2 = prefill_stage_breakdown(&c, &m, &s, &PrefillBatch::uniform(1, 8192), false);
        // Dense doubles, attention quadruples.
        assert!(b2.mlp / b1.mlp > 1.8 && b2.mlp / b1.mlp < 2.3);
        assert!(b2.attn / b1.attn > 3.5 && b2.attn / b1.attn < 4.5);
    }

    #[test]
    fn fused_degenerates_to_pure_phases() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        let batch = PrefillBatch::uniform(2, 512);
        let loads = local_loads(&c, &s, &m, 16, 800);
        // Empty decode side ⇒ exactly the prefill breakdown.
        assert_eq!(
            fused_stage_breakdown(&c, &m, &s, &batch, 0, &[], true),
            prefill_stage_breakdown(&c, &m, &s, &batch, true)
        );
        // Empty chunk ⇒ exactly the decode breakdown.
        assert_eq!(
            fused_stage_breakdown(&c, &m, &s, &PrefillBatch::default(), 16, &loads, true),
            decode_stage_breakdown(&c, &m, &s, 16, &loads, true)
        );
    }

    #[test]
    fn fused_beats_back_to_back_iterations() {
        // The fusion claim: one combined iteration is cheaper than a chunk
        // iteration followed by a decode iteration (weights streamed once,
        // one comm round, one LM head), yet dearer than either alone.
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        let batch = PrefillBatch::uniform(1, 512);
        let loads = local_loads(&c, &s, &m, 32, 1500);
        let fused = fused_stage_breakdown(&c, &m, &s, &batch, 32, &loads, true);
        let prefill = prefill_stage_breakdown(&c, &m, &s, &batch, true);
        let decode = decode_stage_breakdown(&c, &m, &s, 32, &loads, true);
        assert!(
            fused.total < prefill.total + decode.total,
            "fused {} vs sequential {}",
            fused.total,
            prefill.total + decode.total
        );
        assert!(fused.total > prefill.total);
        assert!(fused.total > decode.total);
        // The attention phase stacks both kernels.
        assert!(fused.attn > prefill.attn && fused.attn > decode.attn);
    }

    #[test]
    fn zero_batch_is_free() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        assert_eq!(
            decode_stage_breakdown(&c, &m, &s, 0, &[], true),
            StageBreakdown::ZERO
        );
    }
}
