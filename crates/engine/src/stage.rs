//! Stage-time decomposition: per-module components of one iteration on one
//! pipeline stage, including Hetis's distributed-attention phase.
//!
//! The per-module split matters beyond fidelity: Fig. 13 reports P95 MLP
//! and Attention latency contributions separately, defined as *max stage
//! time × number of stages*; this module provides the components the
//! metrics layer aggregates.

use crate::topology::StageTopo;
use hetis_cluster::{
    all_reduce_time, attn_decode_time, attn_prefill_time, dense_decode_time, dense_prefill_time,
    AttnWork, Cluster, DenseWork, DeviceId,
};
use hetis_model::{DenseOp, ModelSpec, ModuleCosts};
use hetis_parallel::PrefillBatch;

/// Per-layer attention work placed on one device during a decode
/// iteration.
#[derive(Debug, Clone, Copy)]
pub struct AttnLoad {
    /// The device computing these heads.
    pub device: DeviceId,
    /// Per-layer work (query heads and KV bytes of this microbatch).
    pub work: AttnWork,
    /// True when the device is an attention worker reached over the
    /// network (adds the Eq. 4 transfer term).
    pub remote: bool,
}

/// One stage-iteration's time, decomposed by module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBreakdown {
    /// QKV + output projection time (whole stage).
    pub proj: f64,
    /// MLP time (whole stage).
    pub mlp: f64,
    /// Attention phase (max across participating devices, incl. transfer).
    pub attn: f64,
    /// Communication: TP all-reduces + LM head stream + inter-stage P2P is
    /// accounted by the engine separately.
    pub comm: f64,
    /// Sum of the above.
    pub total: f64,
}

impl StageBreakdown {
    /// Zero time.
    pub const ZERO: StageBreakdown = StageBreakdown {
        proj: 0.0,
        mlp: 0.0,
        attn: 0.0,
        comm: 0.0,
        total: 0.0,
    };
}

/// Decode-iteration breakdown for one stage.
///
/// * `dense_tokens` — sequences in the microbatch (one token each).
/// * `attn_loads` — per-device attention work for this microbatch,
///   already split per the requests' head placements. The attention phase
///   is their max: primaries and workers compute in parallel and the stage
///   blocks on the slowest (Eq. 7a's max).
pub fn decode_stage_breakdown(
    cluster: &Cluster,
    model: &ModelSpec,
    stage: &StageTopo,
    dense_tokens: u64,
    attn_loads: &[AttnLoad],
    lm_head: bool,
) -> StageBreakdown {
    if dense_tokens == 0 {
        return StageBreakdown::ZERO;
    }
    let costs = ModuleCosts::new(model);
    let tp = stage.primary.tp() as f64;

    // Dense modules on the TP group (max across devices — heterogeneous
    // groups are legal even if the searches rarely pick them).
    let mut proj = 0.0_f64;
    let mut mlp = 0.0_f64;
    for &d in &stage.primary.devices {
        let spec = cluster.spec(d);
        let proj_work = DenseWork {
            flops: (costs.dense_flops(DenseOp::Qkv, dense_tokens)
                + costs.dense_flops(DenseOp::OutProj, dense_tokens))
                / tp,
            weight_bytes: (costs.dense_weight_bytes(DenseOp::Qkv)
                + costs.dense_weight_bytes(DenseOp::OutProj)) as f64
                / tp,
        };
        let mlp_work = DenseWork {
            flops: costs.dense_flops(DenseOp::Mlp, dense_tokens) / tp,
            weight_bytes: costs.dense_weight_bytes(DenseOp::Mlp) as f64 / tp,
        };
        proj = proj.max(dense_decode_time(spec, proj_work, 2));
        mlp = mlp.max(dense_decode_time(spec, mlp_work, 1));
    }

    // Attention phase: parallel across devices; max governs.
    let anchor = stage.primary.devices[0];
    let mut attn = 0.0_f64;
    for load in attn_loads {
        if load.work.is_zero() {
            continue;
        }
        let spec = cluster.spec(load.device);
        let mut t = attn_decode_time(spec, load.work);
        if load.remote {
            let link = cluster.link(anchor, load.device);
            let bytes = costs.attn_transfer_bytes(load.work.query_heads as u64);
            t += link.alpha + link.beta * bytes;
        }
        attn = attn.max(t);
    }

    // TP all-reduces (one after attention projection, one after MLP).
    let comm_layer = if stage.primary.tp() > 1 {
        2.0 * all_reduce_time(
            cluster.worst_link(&stage.primary.devices),
            stage.primary.tp(),
            costs.activation_bytes(dense_tokens) as f64,
        )
    } else {
        0.0
    };

    let layers = stage.primary.layers as f64;
    let lm = if lm_head {
        lm_head_time(cluster, model, stage, tp)
    } else {
        0.0
    };
    let proj_total = proj * layers;
    let mlp_total = mlp * layers;
    let attn_total = attn * layers;
    let comm_total = comm_layer * layers + lm;
    StageBreakdown {
        proj: proj_total,
        mlp: mlp_total,
        attn: attn_total,
        comm: comm_total,
        total: proj_total + mlp_total + attn_total + comm_total,
    }
}

/// Prefill-iteration breakdown for one stage. Prefill attention runs on
/// the primary TP group (Hetis keeps compute-intensive prefill attention
/// with the dense modules — design idea I1).
pub fn prefill_stage_breakdown(
    cluster: &Cluster,
    model: &ModelSpec,
    stage: &StageTopo,
    batch: &PrefillBatch,
    lm_head: bool,
) -> StageBreakdown {
    if batch.tokens == 0 {
        return StageBreakdown::ZERO;
    }
    let costs = ModuleCosts::new(model);
    let tp = stage.primary.tp() as f64;

    let mut proj = 0.0_f64;
    let mut mlp = 0.0_f64;
    let mut attn = 0.0_f64;
    let attn_flops_total = 2.0 * model.num_heads as f64 * model.head_dim as f64 * batch.sq_sum;
    for &d in &stage.primary.devices {
        let spec = cluster.spec(d);
        let proj_work = DenseWork {
            flops: (costs.dense_flops(DenseOp::Qkv, batch.tokens)
                + costs.dense_flops(DenseOp::OutProj, batch.tokens))
                / tp,
            weight_bytes: (costs.dense_weight_bytes(DenseOp::Qkv)
                + costs.dense_weight_bytes(DenseOp::OutProj)) as f64
                / tp,
        };
        let mlp_work = DenseWork {
            flops: costs.dense_flops(DenseOp::Mlp, batch.tokens) / tp,
            weight_bytes: costs.dense_weight_bytes(DenseOp::Mlp) as f64 / tp,
        };
        proj = proj.max(dense_prefill_time(spec, proj_work, 2));
        mlp = mlp.max(dense_prefill_time(spec, mlp_work, 1));
        attn = attn.max(attn_prefill_time(spec, attn_flops_total / tp));
    }

    let comm_layer = if stage.primary.tp() > 1 {
        2.0 * all_reduce_time(
            cluster.worst_link(&stage.primary.devices),
            stage.primary.tp(),
            costs.activation_bytes(batch.tokens) as f64,
        )
    } else {
        0.0
    };

    let layers = stage.primary.layers as f64;
    let lm = if lm_head {
        lm_head_time(cluster, model, stage, tp)
    } else {
        0.0
    };
    let proj_total = proj * layers;
    let mlp_total = mlp * layers;
    let attn_total = attn * layers;
    let comm_total = comm_layer * layers + lm;
    StageBreakdown {
        proj: proj_total,
        mlp: mlp_total,
        attn: attn_total,
        comm: comm_total,
        total: proj_total + mlp_total + attn_total + comm_total,
    }
}

fn lm_head_time(cluster: &Cluster, model: &ModelSpec, stage: &StageTopo, tp: f64) -> f64 {
    let lm_bytes = (model.vocab_size * model.hidden_size * model.dtype.bytes()) as f64 / tp;
    let worst_bw = stage
        .primary
        .devices
        .iter()
        .map(|&d| cluster.spec(d).decode_stream_bw)
        .fold(f64::INFINITY, f64::min);
    lm_bytes / worst_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_cluster::GpuType;
    use hetis_model::llama_70b;
    use hetis_parallel::StageConfig;

    fn a100_stage(c: &Cluster, layers: u32) -> StageTopo {
        StageTopo::plain(StageConfig {
            devices: c.devices_of_type(GpuType::A100),
            layers,
        })
    }

    fn local_loads(
        _c: &Cluster,
        stage: &StageTopo,
        m: &ModelSpec,
        seqs: u64,
        ctx: u64,
    ) -> Vec<AttnLoad> {
        let costs = ModuleCosts::new(m);
        let tp = stage.primary.tp() as f64;
        stage
            .primary
            .devices
            .iter()
            .map(|&d| AttnLoad {
                device: d,
                work: AttnWork {
                    query_heads: seqs as f64 * m.num_heads as f64 / tp,
                    kv_bytes: seqs as f64 * costs.attn_decode_kv_bytes(m.num_heads as u64, ctx)
                        / tp,
                },
                remote: false,
            })
            .collect()
    }

    #[test]
    fn breakdown_sums_to_total() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        let loads = local_loads(&c, &s, &m, 32, 1000);
        let b = decode_stage_breakdown(&c, &m, &s, 32, &loads, true);
        assert!((b.total - (b.proj + b.mlp + b.attn + b.comm)).abs() < 1e-12);
        assert!(b.mlp > b.proj, "MLP dominates dense time");
        assert!(b.attn > 0.0 && b.comm > 0.0);
    }

    #[test]
    fn remote_attention_adds_transfer() {
        let c = paper_cluster();
        let m = llama_70b();
        let mut s = a100_stage(&c, 80);
        let p100 = c.devices_of_type(GpuType::P100)[0];
        s.attention_workers.push(p100);
        let work = AttnWork {
            query_heads: 512.0,
            kv_bytes: 5e8,
        };
        let local = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[AttnLoad {
                device: s.primary.devices[0],
                work,
                remote: false,
            }],
            false,
        );
        let remote = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[AttnLoad {
                device: p100,
                work,
                remote: true,
            }],
            false,
        );
        assert!(
            remote.attn > local.attn,
            "{} vs {}",
            remote.attn,
            local.attn
        );
    }

    #[test]
    fn attention_phase_is_max_not_sum() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        let w = AttnWork {
            query_heads: 1000.0,
            kv_bytes: 1e9,
        };
        let one = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[AttnLoad {
                device: s.primary.devices[0],
                work: w,
                remote: false,
            }],
            false,
        );
        let two_balanced = decode_stage_breakdown(
            &c,
            &m,
            &s,
            32,
            &[
                AttnLoad {
                    device: s.primary.devices[0],
                    work: AttnWork {
                        query_heads: 500.0,
                        kv_bytes: 5e8,
                    },
                    remote: false,
                },
                AttnLoad {
                    device: s.primary.devices[1],
                    work: AttnWork {
                        query_heads: 500.0,
                        kv_bytes: 5e8,
                    },
                    remote: false,
                },
            ],
            false,
        );
        assert!(
            two_balanced.attn < one.attn,
            "balancing halves the phase: {} vs {}",
            two_balanced.attn,
            one.attn
        );
    }

    #[test]
    fn prefill_attention_quadratic_in_length() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        // Long prompts so per-kernel launch overhead is negligible.
        let b1 = prefill_stage_breakdown(&c, &m, &s, &PrefillBatch::uniform(1, 4096), false);
        let b2 = prefill_stage_breakdown(&c, &m, &s, &PrefillBatch::uniform(1, 8192), false);
        // Dense doubles, attention quadruples.
        assert!(b2.mlp / b1.mlp > 1.8 && b2.mlp / b1.mlp < 2.3);
        assert!(b2.attn / b1.attn > 3.5 && b2.attn / b1.attn < 4.5);
    }

    #[test]
    fn zero_batch_is_free() {
        let c = paper_cluster();
        let m = llama_70b();
        let s = a100_stage(&c, 80);
        assert_eq!(
            decode_stage_breakdown(&c, &m, &s, 0, &[], true),
            StageBreakdown::ZERO
        );
    }
}
