//! Sharded parallel simulation: conservative windows over per-instance
//! event queues, with a bit-identity contract against the sequential
//! engine (DESIGN.md §P).
//!
//! # Protocol
//!
//! The serving topology statically partitions work: an instance's events
//! (`UbatchDone`, `MigrationDone`) only read and write that instance's
//! queues, cohorts, requests and KV devices. Instances that share a
//! device are fused into one *component* (union-find); components are
//! round-robined onto `G = min(sim_shards, components)` **shard
//! groups**, each owning its instances' full state inside a husk
//! [`Engine`] that runs on its own OS thread.
//!
//! Every event left on the coordinator's queue is a **barrier**:
//!
//! * `Arrival` is a *thin* barrier — the coordinator routes it on the
//!   original policy over cross-shard [`KvView::Sharded`] /
//!   [`RequestsView::Sharded`] views and hands the admission to the
//!   owning group, without merging any state.
//! * `Sample`, `TelemetryTick`, `ClusterChange`, `DrainDeadline` and
//!   promoted dirty `UbatchDone`s (a churn-invalidated participant) are
//!   *merge* barriers: every group is absorbed back, the unmodified
//!   sequential handler runs, and the state is re-split.
//!
//! Between barriers each group advances independently through every
//! event whose `(time, seq)` key is strictly below the next barrier's
//! key — the conservative window. Order-sensitive side effects produced
//! inside windows (telemetry taps, completion records, `migrated_bytes`
//! f64 increments, module samples) are not applied on the group; they
//! are captured tagged with the generating event's key and replayed
//! globally key-sorted at the next merge, which reproduces the
//! sequential engine's accumulation order bit-for-bit.
//!
//! # Sequence numbering
//!
//! At each split, group `g`'s insertion counter is raised to
//! `base + (g+1) · 2³²` where `base` is the coordinator counter, so
//! window-scheduled events order *after* every pre-split event. At the
//! next merge, window-scheduled events (seq ≥ `base`) are renumbered —
//! in global `(time, seq)` order — onto the coordinator counter, so
//! they also order *before* anything the barrier handler schedules
//! afterwards, exactly as in the sequential engine where
//! chronologically-earlier scheduling always yields a smaller seq. The
//! one residual caveat: two *window*-scheduled events from different
//! groups at the exact same f64 instant tie-break by group rank instead
//! of the sequential interleaving. Every pinned scenario digests
//! identically, so no such tie occurs in practice; a scenario engineered
//! to hit one would still be a valid serving trajectory, just not the
//! sequential one.
//!
//! # Fallbacks (always exact)
//!
//! `sim_shards ≤ 1`, a policy whose [`Policy::fork`] returns `None`,
//! a topology with fewer than two device-disjoint components (including
//! every Splitwise-style prefill/decode split, whose hand-offs cross
//! instances), or any live request whose placement escapes its
//! instance's component — all fall back to the byte-identical
//! sequential path.

use super::*;
use hetis_sim::ScheduledEvent;

/// One order-sensitive side effect recorded inside a shard window.
#[derive(Debug, Clone)]
pub(super) enum Captured {
    /// A telemetry flow event ([`Engine::tap`]).
    Flow(FlowEvent),
    /// A telemetry completion record ([`Engine::finish`]).
    Completion(FlowCompletion),
    /// A completed-request row — the digest folds these in push order.
    Completed(CompletedRequest),
    /// A `migrated_bytes` increment — f64 addition is not associative,
    /// so the global sum must fold in sequential event order.
    Migrated(f64),
    /// A Fig. 13 module sample (chronological series).
    Module(ModuleSample),
}

/// Capture buffer installed on a shard-group engine for the duration of
/// its windows (see the [`Engine::capture`] field).
#[derive(Debug)]
pub(super) struct ShardCapture {
    /// `(time, seq)` key of the event currently dispatching.
    pub(super) key: (SimTime, u64),
    /// Whether the coordinator runs with telemetry enabled — gates
    /// flow/completion capture exactly like `telemetry.is_some()` gates
    /// publishing on the sequential path.
    pub(super) telemetry_on: bool,
    /// Captured side effects, keyed by generating event.
    pub(super) items: Vec<((SimTime, u64), Captured)>,
}

impl ShardCapture {
    /// Records one side effect under the current event key.
    pub(super) fn push(&mut self, item: Captured) {
        self.items.push((self.key, item));
    }
}

/// What one shard group owns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ShardClaim {
    /// Owned instance indices (sorted).
    instances: Vec<usize>,
    /// Owned device indices (sorted) — the union of the owned
    /// instances' stage devices and attention workers.
    devices: Vec<usize>,
}

/// The static ownership plan, recomputed after every merge barrier
/// (cluster churn and closed-loop replans can reshape worker pools).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardPlan {
    /// Instance index → group rank.
    group_of_instance: Vec<usize>,
    /// Device index → owning part for the cross-shard views: 0 is the
    /// coordinator (devices no instance claims), `g + 1` is group `g`.
    part_of_device: Vec<u32>,
    /// Per-group claims, in rank order.
    claims: Vec<ShardClaim>,
}

/// A shard group: its claim plus the husk engine owning the claimed
/// state between barriers.
struct ShardGroup<'a> {
    claim: ShardClaim,
    engine: Engine<'a, Box<dyn Policy + Send>>,
    /// Migration-stream stats at the last split, so the merge can fold
    /// the window's delta (`MigrationStream::absorb_shard`).
    mig_base_count: u64,
    mig_base_bytes: f64,
}

impl<'a, P: Policy> Engine<'a, P> {
    /// Runs the simulation to completion on `shards` parallel shard
    /// groups, producing the exact state (and therefore
    /// [`RunReport::digest`]) of [`Engine::run_to_completion`]. Call on
    /// a freshly constructed engine. Any condition the protocol cannot
    /// express falls back to the sequential path — sharding is a pure
    /// execution strategy, never a behavior change.
    pub fn run_sharded(&mut self, shards: usize) {
        if shards <= 1 {
            return self.run_to_completion();
        }
        let Some(mut plan) = self.compute_shard_plan(shards) else {
            return self.run_to_completion();
        };
        if !self.shard_plan_holds(&plan) {
            return self.run_to_completion();
        }
        // Template for husk KV states: the pre-run pools (weights only).
        // Devices a group does not claim keep this pristine copy, which
        // is never meaningfully read (a request's KV lives only on its
        // instance's claimed devices).
        let pristine = self.kv.clone();
        let Some(mut groups) = self.make_shard_groups(&plan, &pristine) else {
            return self.run_to_completion();
        };
        let deadline = self.last_arrival + self.cfg.drain_timeout;
        // Arrivals are thin barriers that never leave the coordinator,
        // yet they dominate the pending queue (the whole trace is
        // scheduled up front). Pull them into a sorted side-channel
        // ONCE, so each re-split's `drain_sorted` touches only the
        // residual queue (samples, ticks, churn, pass-throughs) —
        // O(live events) per merge barrier instead of O(trace length),
        // which would make million-request runs quadratic in barriers.
        let mut arrivals: VecDeque<ScheduledEvent<Event>> = VecDeque::new();
        for se in self.events.drain_sorted() {
            if matches!(se.event, Event::Arrival(_)) {
                arrivals.push_back(se);
            } else {
                self.events.push_scheduled(se);
            }
        }
        self.shard_external_pending = arrivals.len();
        // Finished requests leave `self.requests` for this archive so the
        // per-barrier split/absorb drains (and the liveness scan) touch
        // only LIVE requests — O(live) per merge barrier instead of
        // O(everything ever completed), which would be quadratic over a
        // long trace. Re-attached before any sequential handoff or exit.
        let mut done: HashMap<hetis_workload::RequestId, RunningRequest> = HashMap::new();
        let mut split_base = match self.split_shards(&plan, &mut groups, &mut done) {
            Some(base) => base,
            None => {
                self.reattach_pending(arrivals, done);
                return self.run_to_completion();
            }
        };
        loop {
            let qkey = self.events.peek_key();
            let akey = arrivals.front().map(|se| (se.at, se.seq));
            let barrier = match (qkey, akey) {
                (Some(q), Some(a)) => Some(q.min(a)),
                (q, a) => q.or(a),
            };
            run_windows(&mut groups, barrier, deadline);
            if barrier.is_none() {
                // Quiescence: groups drained to empty (or the deadline).
                self.absorb_shards(&mut groups, split_base, &mut done);
                self.reattach_pending(arrivals, done);
                return;
            }
            // Pop the globally earliest barrier from whichever channel
            // holds it; keys are unique, so strict comparison suffices.
            let se = match (qkey, akey) {
                (Some(q), Some(a)) if a < q => arrivals.pop_front().expect("peeked"),
                (None, Some(_)) => arrivals.pop_front().expect("peeked"),
                _ => self.events.pop_scheduled().expect("peeked above"),
            };
            self.shard_external_pending = arrivals.len();
            if se.at.as_secs() > deadline {
                // The sequential loop stops at the first event beyond
                // the drain deadline without processing it; unprocessed
                // arrivals stay queued, exactly as sequentially.
                self.absorb_shards(&mut groups, split_base, &mut done);
                self.reattach_pending(arrivals, done);
                return;
            }
            if let Event::Arrival(i) = se.event {
                self.clock.advance_to(se.at);
                self.thin_arrival(i, se.at, se.seq, &plan, &mut groups);
                continue;
            }
            // Merge barrier: absorb, run the sequential handler, re-split.
            self.absorb_shards(&mut groups, split_base, &mut done);
            self.clock.advance_to(se.at);
            self.dispatch_event(se.event);
            match self.compute_shard_plan(shards) {
                Some(p) if self.shard_plan_holds(&p) => {
                    if p != plan {
                        // Ownership changed (replan reshaped worker
                        // pools): rebuild the husks around the new claims.
                        let Some(g) = self.make_shard_groups(&p, &pristine) else {
                            self.reattach_pending(arrivals, done);
                            return self.run_to_completion();
                        };
                        groups = g;
                        plan = p;
                    }
                    match self.split_shards(&plan, &mut groups, &mut done) {
                        Some(base) => split_base = base,
                        None => {
                            self.reattach_pending(arrivals, done);
                            return self.run_to_completion();
                        }
                    }
                }
                // The topology no longer partitions (or a placement
                // escaped its component): finish sequentially. All
                // state is already on `self`, and the pending arrivals
                // return to the real queue.
                _ => {
                    self.reattach_pending(arrivals, done);
                    return self.run_to_completion();
                }
            }
        }
    }

    /// Returns state the sharded coordinator held outside the engine —
    /// the pending-arrival side channel and the finished-request archive
    /// — so the sequential path (fallback or post-run inspection) sees
    /// exactly the state a sequential run would have.
    fn reattach_pending(
        &mut self,
        arrivals: VecDeque<ScheduledEvent<Event>>,
        done: HashMap<hetis_workload::RequestId, RunningRequest>,
    ) {
        for se in arrivals {
            self.events.push_scheduled(se);
        }
        self.requests.extend(done);
        self.shard_external_pending = 0;
    }

    /// Computes the static ownership plan, or `None` when the topology
    /// does not partition into ≥ 2 device-disjoint components.
    fn compute_shard_plan(&self, shards: usize) -> Option<ShardPlan> {
        let n = self.topo.instances.len();
        if n < 2 {
            return None;
        }
        // Phase-split roles hand requests across instances after
        // prefill, which a window cannot express.
        if self
            .topo
            .instances
            .iter()
            .any(|i| matches!(i.role, InstanceRole::PrefillOnly | InstanceRole::DecodeOnly))
        {
            return None;
        }
        let dcount = self.kv.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        // Union instances through shared devices.
        let mut dev_claimant: Vec<Option<usize>> = vec![None; dcount];
        for (i, it) in self.topo.instances.iter().enumerate() {
            for s in &it.stages {
                for d in s.attention_devices() {
                    match dev_claimant[d.index()] {
                        None => dev_claimant[d.index()] = Some(i),
                        Some(j) => {
                            let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                            if a != b {
                                parent[a.max(b)] = a.min(b);
                            }
                        }
                    }
                }
            }
        }
        // Components in order of smallest member instance.
        let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            let c = *comp_of_root.entry(r).or_insert_with(|| {
                comps.push(Vec::new());
                comps.len() - 1
            });
            comps[c].push(i);
        }
        if comps.len() < 2 {
            return None;
        }
        let g_count = shards.min(comps.len());
        let mut claims = vec![ShardClaim::default(); g_count];
        let mut group_of_instance = vec![0usize; n];
        for (ci, comp) in comps.iter().enumerate() {
            let gr = ci % g_count;
            for &i in comp {
                group_of_instance[i] = gr;
                claims[gr].instances.push(i);
            }
        }
        let mut part_of_device = vec![0u32; dcount];
        for (d, claimant) in dev_claimant.iter().enumerate() {
            if let Some(i) = claimant {
                let gr = group_of_instance[*i];
                part_of_device[d] = gr as u32 + 1;
                claims[gr].devices.push(d);
            }
        }
        for c in &mut claims {
            c.instances.sort_unstable();
            c.devices.sort_unstable();
        }
        Some(ShardPlan {
            group_of_instance,
            part_of_device,
            claims,
        })
    }

    /// True when every live request's placement (and in-flight migration
    /// sources) stay within its instance's component — the invariant
    /// that makes windows race-free. Placements are produced per
    /// instance from its stage devices and workers, so this holds by
    /// construction; the check is the safety valve for any policy that
    /// violates the contract.
    fn shard_plan_holds(&self, plan: &ShardPlan) -> bool {
        let requests_ok = self.requests.values().all(|r| {
            if r.phase == Phase::Done {
                return true;
            }
            let part = plan.group_of_instance[r.instance] as u32 + 1;
            let placed_ok = r
                .placement
                .as_ref()
                .map(|p| {
                    p.devices()
                        .iter()
                        .all(|d| plan.part_of_device[d.index()] == part)
                })
                .unwrap_or(true);
            placed_ok
                && r.migration_sources
                    .iter()
                    .all(|d| plan.part_of_device[d.index()] == part)
        });
        // Cached prefixes carry the same invariant as live placements:
        // an entry's bytes must stay inside its instance's component so
        // the per-instance cache partition reproduces the sequential
        // per-device pressure sweeps. Entries always satisfy this by
        // construction (they are finished requests' placements, and
        // churn/replan barriers clear the cache), so like the request
        // check this is a safety valve, not a policy.
        requests_ok
            && self.prefix.iter().all(|(_, e)| {
                let part = plan.group_of_instance[e.instance] as u32 + 1;
                e.devices().all(|d| plan.part_of_device[d.index()] == part)
            })
    }

    /// Fresh per-instance state containers (the shapes
    /// [`Engine::new_with_churn`] builds), swapped against the real
    /// state at each split.
    fn husk_instances(&self) -> Vec<InstanceState> {
        self.topo
            .instances
            .iter()
            .map(|i| InstanceState {
                waiting: WaitQueue::new(self.cfg.admission),
                pending_handoff: FifoQueue::new(),
                cohorts: (0..i.depth())
                    .map(|_| Cohort {
                        load: vec![HashMap::new(); i.depth()],
                        ..Cohort::default()
                    })
                    .collect(),
                stage_free_at: vec![SimTime::ZERO; i.depth()],
                running: 0,
            })
            .collect()
    }

    /// Builds one husk engine per claim. `None` when the policy cannot
    /// fork.
    fn make_shard_groups(
        &mut self,
        plan: &ShardPlan,
        pristine: &KvState,
    ) -> Option<Vec<ShardGroup<'a>>> {
        let mut groups = Vec::with_capacity(plan.claims.len());
        for claim in &plan.claims {
            let policy = self.policy.fork()?;
            let engine = Engine {
                cluster: self.cluster,
                model: self.model,
                cfg: self.cfg.clone(),
                policy,
                topo: self.topo.clone(),
                kv: pristine.clone(),
                requests: HashMap::new(),
                instances: self.husk_instances(),
                events: EventQueue::new(),
                clock: self.clock.clone(),
                // Placeholder streams; the real per-instance streams are
                // swapped in with the owned instances at every split, so
                // a group draws exactly the sequential values.
                jitter: per_instance_jitter(self.cfg.seed, self.topo.instances.len()),
                migration: self.migration.clone(),
                trace_requests: Vec::new(),
                last_arrival: self.last_arrival,
                health: self.health.clone(),
                original_roles: self.original_roles.clone(),
                churn: Vec::new(),
                attributed_pending: Vec::new(),
                completed: Vec::new(),
                module_samples: Vec::new(),
                trace_samples: Vec::new(),
                preemptions: 0,
                migrations: 0,
                migrated_bytes: 0.0,
                replans: Vec::new(),
                lost_tokens: 0,
                churn_evictions: 0,
                prefill_tokens: 0,
                prefill_iterations: 0,
                max_prefill_iter_tokens: 0,
                events_processed: 0,
                peak_kv_reserved_bytes: 0,
                fused_iterations: 0,
                kv_growths: 0,
                kv_grow_failures: 0,
                prefix: crate::prefix::PrefixCache::new(self.kv.len()),
                prefix_probes: 0,
                prefix_hits: 0,
                prefix_hit_tokens: 0,
                shared_kv_bytes: 0,
                telemetry: None,
                sampling_pending: 0,
                shard_external_pending: 0,
                throttle_admission: self.throttle_admission,
                pace_chunk_tokens: self.pace_chunk_tokens,
                control_log: Vec::new(),
                capture: Some(ShardCapture {
                    key: (SimTime::ZERO, 0),
                    telemetry_on: self.telemetry.is_some(),
                    items: Vec::new(),
                }),
            };
            groups.push(ShardGroup {
                claim: claim.clone(),
                engine,
                mig_base_count: 0,
                mig_base_bytes: 0.0,
            });
        }
        Some(groups)
    }

    /// Moves owned events and state out to the groups. Returns the
    /// coordinator's sequence counter at the split (the renumbering
    /// watermark for the next merge), or `None` when a policy fork
    /// fails — in which case nothing has been moved.
    fn split_shards(
        &mut self,
        plan: &ShardPlan,
        groups: &mut [ShardGroup<'a>],
        done: &mut HashMap<hetis_workload::RequestId, RunningRequest>,
    ) -> Option<u64> {
        // Fresh forks every split; window hooks must see the policy
        // state as of this barrier.
        for g in groups.iter_mut() {
            g.engine.policy = self.policy.fork()?;
        }
        // Route pending events: instance events to their owner, barriers
        // (and dirty microbatch completions) stay here.
        let pending = self.events.drain_sorted();
        for se in pending {
            let dest = match &se.event {
                Event::UbatchDone { inst, cohort } => {
                    let dirty = self.instances[*inst]
                        .cohorts
                        .get(*cohort)
                        .and_then(|c| c.in_flight.as_ref())
                        .map(|ub| {
                            ub.reqs
                                .iter()
                                .chain(ub.decode_reqs.iter())
                                .any(|&rid| self.churn_invalidated(rid))
                        })
                        .unwrap_or(false);
                    // A dirty completion churn-evicts and re-routes
                    // across instances — promote it to a merge barrier.
                    if dirty {
                        None
                    } else {
                        Some(plan.group_of_instance[*inst])
                    }
                }
                Event::MigrationDone { req, .. } => self
                    .requests
                    .get(req)
                    .map(|r| plan.group_of_instance[r.instance]),
                _ => None,
            };
            match dest {
                Some(gr) => groups[gr].engine.events.push_scheduled(se),
                None => self.events.push_scheduled(se),
            }
        }
        // Stride the group counters so window-scheduled events order
        // after everything already queued anywhere.
        let base = self.events.next_seq();
        for (gi, g) in groups.iter_mut().enumerate() {
            g.engine
                .events
                .raise_seq_floor(base + ((gi as u64 + 1) << 32));
        }
        // Hand the owned state over and refresh barrier-mutable context.
        for g in groups.iter_mut() {
            for &i in &g.claim.instances {
                std::mem::swap(&mut self.instances[i], &mut g.engine.instances[i]);
                std::mem::swap(&mut self.jitter[i], &mut g.engine.jitter[i]);
            }
            for &d in &g.claim.devices {
                let d = DeviceId(d as u32);
                std::mem::swap(self.kv.device_mut(d), g.engine.kv.device_mut(d));
            }
            g.engine.clock = self.clock.clone();
            g.engine.topo = self.topo.clone();
            g.engine.health.clone_from(&self.health);
            g.engine.original_roles.clone_from(&self.original_roles);
            g.engine.throttle_admission = self.throttle_admission;
            g.engine.pace_chunk_tokens = self.pace_chunk_tokens;
            g.engine.migration = self.migration.clone();
            g.mig_base_count = self.migration.count();
            g.mig_base_bytes = self.migration.total_bytes();
        }
        for (rid, r) in std::mem::take(&mut self.requests) {
            if r.phase == Phase::Done {
                done.insert(rid, r);
            } else {
                groups[plan.group_of_instance[r.instance]]
                    .engine
                    .requests
                    .insert(rid, r);
            }
        }
        // Prefix-cache entries partition exactly like requests: by the
        // owning instance. `shard_plan_holds` already verified every
        // entry's devices stay inside that instance's component, so a
        // group's pressure sweeps see precisely the sequential
        // per-device state.
        for (key, e) in self.prefix.drain_entries() {
            groups[plan.group_of_instance[e.instance]]
                .engine
                .prefix
                .restore(key, e);
        }
        Some(base)
    }

    /// Folds every group back into the coordinator: events, state,
    /// counters, the migration streams, and the key-ordered replay of
    /// captured side effects. `split_base` is the sequence watermark
    /// returned by the matching [`Engine::split_shards`].
    fn absorb_shards(
        &mut self,
        groups: &mut [ShardGroup<'a>],
        split_base: u64,
        done: &mut HashMap<hetis_workload::RequestId, RunningRequest>,
    ) {
        let mut window_events: Vec<ScheduledEvent<Event>> = Vec::new();
        let mut items: Vec<((SimTime, u64), Captured)> = Vec::new();
        let mut max_clock = self.clock.now();
        for g in groups.iter_mut() {
            let e = &mut g.engine;
            for se in e.events.drain_sorted() {
                if se.seq >= split_base {
                    // Scheduled inside the window: renumber below so it
                    // orders before anything the barrier schedules next.
                    window_events.push(se);
                } else {
                    // Pre-split event passing through untouched: keep
                    // its original tie-breaking position.
                    self.events.push_scheduled(se);
                }
            }
            for &i in &g.claim.instances {
                std::mem::swap(&mut self.instances[i], &mut e.instances[i]);
                std::mem::swap(&mut self.jitter[i], &mut e.jitter[i]);
            }
            for &d in &g.claim.devices {
                let d = DeviceId(d as u32);
                std::mem::swap(self.kv.device_mut(d), e.kv.device_mut(d));
            }
            for (rid, r) in std::mem::take(&mut e.requests) {
                if r.phase == Phase::Done {
                    done.insert(rid, r);
                } else {
                    self.requests.insert(rid, r);
                }
            }
            self.events_processed += std::mem::take(&mut e.events_processed);
            self.preemptions += std::mem::take(&mut e.preemptions);
            self.migrations += std::mem::take(&mut e.migrations);
            self.lost_tokens += std::mem::take(&mut e.lost_tokens);
            self.churn_evictions += std::mem::take(&mut e.churn_evictions);
            self.prefill_tokens += std::mem::take(&mut e.prefill_tokens);
            self.prefill_iterations += std::mem::take(&mut e.prefill_iterations);
            self.fused_iterations += std::mem::take(&mut e.fused_iterations);
            self.kv_growths += std::mem::take(&mut e.kv_growths);
            self.kv_grow_failures += std::mem::take(&mut e.kv_grow_failures);
            self.prefix_probes += std::mem::take(&mut e.prefix_probes);
            self.prefix_hits += std::mem::take(&mut e.prefix_hits);
            self.prefix_hit_tokens += std::mem::take(&mut e.prefix_hit_tokens);
            self.shared_kv_bytes += std::mem::take(&mut e.shared_kv_bytes);
            for (key, entry) in e.prefix.drain_entries() {
                self.prefix.restore(key, entry);
            }
            self.max_prefill_iter_tokens = self
                .max_prefill_iter_tokens
                .max(std::mem::take(&mut e.max_prefill_iter_tokens));
            self.peak_kv_reserved_bytes = self
                .peak_kv_reserved_bytes
                .max(std::mem::take(&mut e.peak_kv_reserved_bytes));
            debug_assert_eq!(e.migrated_bytes, 0.0, "groups must capture, not sum");
            debug_assert!(e.completed.is_empty(), "groups must capture completions");
            debug_assert!(e.module_samples.is_empty(), "groups must capture samples");
            self.migration
                .absorb_shard(&e.migration, g.mig_base_count, g.mig_base_bytes);
            max_clock = max_clock.max(e.clock.now());
            items.append(&mut e.capture.as_mut().expect("shard engines capture").items);
        }
        if max_clock > self.clock.now() {
            self.clock.advance_to(max_clock);
        }
        // Renumber window-scheduled events in global key order onto the
        // coordinator counter (see module docs on sequence numbering).
        window_events.sort_unstable_by_key(|e| (e.at, e.seq));
        for se in window_events {
            self.events.schedule(se.at, se.event);
        }
        // Replay side effects in the order the sequential engine would
        // have produced them. `sort_by_key` is stable, so the several
        // effects of one event keep their generation order.
        items.sort_by_key(|&(key, _)| key);
        for (_, item) in items {
            match item {
                Captured::Flow(ev) => {
                    if let Some(bus) = self.telemetry.as_mut() {
                        bus.publish(ev);
                    }
                }
                Captured::Completion(fc) => {
                    if let Some(bus) = self.telemetry.as_mut() {
                        bus.complete(&fc);
                    }
                }
                Captured::Completed(rec) => self.completed.push(rec),
                Captured::Migrated(bytes) => self.migrated_bytes += bytes,
                Captured::Module(sample) => self.module_samples.push(sample),
            }
        }
    }

    /// Handles an `Arrival` barrier without merging: route on the
    /// original policy over cross-shard views, then admit on the owner
    /// group under the arrival's own event key.
    fn thin_arrival(
        &mut self,
        idx: usize,
        at: SimTime,
        seq: u64,
        plan: &ShardPlan,
        groups: &mut [ShardGroup<'a>],
    ) {
        let req = self.trace_requests[idx];
        let inst = {
            let kv_parts: Vec<&KvState> = std::iter::once(&self.kv)
                .chain(groups.iter().map(|g| &g.engine.kv))
                .collect();
            let req_parts: Vec<&HashMap<RequestId, RunningRequest>> =
                std::iter::once(&self.requests)
                    .chain(groups.iter().map(|g| &g.engine.requests))
                    .collect();
            let prefix_parts: Vec<&crate::prefix::PrefixCache> = std::iter::once(&self.prefix)
                .chain(groups.iter().map(|g| &g.engine.prefix))
                .collect();
            // Prefix affinity wins over the policy, exactly as in
            // `Engine::on_arrival` — the lookup spans every group's
            // cache (the coordinator's own is empty mid-window).
            let affinity =
                self.prefix_affinity(&req, |s, t| prefix_parts.iter().find_map(|c| c.get(s, t)));
            let ctx = PolicyCtx {
                cluster: self.cluster,
                model: self.model,
                now: self.clock.now().as_secs(),
                kv: crate::policy::KvView::Sharded {
                    parts: &kv_parts,
                    owner: &plan.part_of_device,
                },
                requests: crate::policy::RequestsView::Sharded(&req_parts),
                topology: &self.topo,
                prefill_chunk_tokens: self.cfg.prefill_chunk_tokens,
                prefix: if self.cfg.prefix_reuse {
                    crate::policy::PrefixView::Sharded(&prefix_parts)
                } else {
                    crate::policy::PrefixView::Empty
                },
            };
            // Mirror `route_surviving` with `park = 0`.
            let entries = self.topo.entry_instances();
            match (affinity, entries.first()) {
                (Some(inst), _) => inst,
                (None, None) => 0,
                (None, Some(&fallback)) => {
                    let inst = self.policy.route(&req, &ctx);
                    assert!(
                        inst < self.topo.instances.len(),
                        "routed to unknown instance"
                    );
                    if self.topo.instances[inst].role != InstanceRole::Down {
                        inst
                    } else {
                        fallback
                    }
                }
            }
        };
        let ge = &mut groups[plan.group_of_instance[inst]].engine;
        // The group finished its window strictly below this key, so its
        // clock is at most `at`.
        ge.clock.advance_to(at);
        ge.events_processed += 1;
        ge.capture.as_mut().expect("shard engines capture").key = (at, seq);
        ge.admit_routed(req, inst);
    }
}

/// Advances one group through its conservative window: every owned
/// event strictly below `barrier` (all of them when `barrier` is
/// `None`), stopping — like the sequential loop — at the first event
/// beyond the drain `deadline`, which is pushed back untouched.
fn run_window(
    engine: &mut Engine<'_, Box<dyn Policy + Send>>,
    barrier: Option<(SimTime, u64)>,
    deadline: f64,
) {
    loop {
        let se = match barrier {
            Some(key) => engine.events.pop_before(key),
            None => engine.events.pop_scheduled(),
        };
        let Some(se) = se else { return };
        if se.at.as_secs() > deadline {
            engine.events.push_scheduled(se);
            return;
        }
        engine.clock.advance_to(se.at);
        engine.capture.as_mut().expect("shard engines capture").key = (se.at, se.seq);
        // Only instance-local events ever reach a group queue
        // (`UbatchDone` / `MigrationDone`); anything else would panic
        // loudly inside the handler on the husk's empty trace/churn.
        engine.dispatch_event(se.event);
    }
}

/// Runs every group's window, on real threads when more than one group
/// has work before the barrier.
fn run_windows(groups: &mut [ShardGroup<'_>], barrier: Option<(SimTime, u64)>, deadline: f64) {
    let mut active: Vec<&mut ShardGroup<'_>> = groups
        .iter_mut()
        .filter(|g| match (g.engine.events.peek_key(), barrier) {
            (None, _) => false,
            (Some(k), Some(b)) => k < b,
            (Some(_), None) => true,
        })
        .collect();
    match active.len() {
        0 => {}
        1 => run_window(&mut active[0].engine, barrier, deadline),
        _ => rayon::scope(|s| {
            for g in active {
                s.spawn(move || run_window(&mut g.engine, barrier, deadline));
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_model::llama_13b;
    use hetis_parallel::StageConfig;
    use hetis_workload::{DatasetKind, Request, SloClass, TenantId, Trace};

    fn two_instance_topo() -> Topology {
        Topology {
            instances: vec![
                crate::topology::InstanceTopo {
                    stages: vec![crate::topology::StageTopo::plain(StageConfig {
                        devices: vec![DeviceId(0), DeviceId(1)],
                        layers: 40,
                    })],
                    role: InstanceRole::Both,
                },
                crate::topology::InstanceTopo {
                    stages: vec![crate::topology::StageTopo::plain(StageConfig {
                        devices: vec![DeviceId(2), DeviceId(3)],
                        layers: 40,
                    })],
                    role: InstanceRole::Both,
                },
            ],
        }
    }

    fn small_trace(n: u64) -> Trace {
        let reqs: Vec<Request> = (0..n)
            .map(|i| Request {
                id: hetis_workload::RequestId(i),
                arrival: 0.05 * i as f64,
                input_len: 64 + (i % 7) as u32 * 33,
                output_len: 24 + (i % 5) as u32 * 11,
                class: SloClass::default(),
                tenant: TenantId(0),
                session: None,
            })
            .collect();
        Trace::from_requests(reqs, DatasetKind::ShareGpt)
    }

    #[test]
    fn plan_partitions_disjoint_instances() {
        let cluster = paper_cluster();
        let model = llama_13b();
        let topo = two_instance_topo();
        let policy = StaticPolicy::new("s", topo.clone());
        let trace = small_trace(1);
        let engine = Engine::new(
            policy,
            &cluster,
            &model,
            EngineConfig::default(),
            topo,
            &trace,
        );
        let plan = engine.compute_shard_plan(2).expect("two components");
        assert_eq!(plan.claims.len(), 2);
        assert_eq!(plan.group_of_instance, vec![0, 1]);
        assert_eq!(plan.claims[0].instances, vec![0]);
        assert_eq!(plan.claims[1].instances, vec![1]);
        assert_eq!(plan.claims[0].devices, vec![0, 1]);
        assert_eq!(plan.claims[1].devices, vec![2, 3]);
        // Unclaimed devices belong to part 0; claimed to rank + 1.
        assert_eq!(plan.part_of_device[0], 1);
        assert_eq!(plan.part_of_device[3], 2);
        assert!(plan.part_of_device[4..].iter().all(|&p| p == 0));
    }

    #[test]
    fn shared_device_fuses_components() {
        let cluster = paper_cluster();
        let model = llama_13b();
        let mut topo = two_instance_topo();
        // Instance 1 pools a worker from instance 0's TP group.
        topo.instances[1].stages[0].attention_workers = vec![DeviceId(1)];
        let policy = StaticPolicy::new("s", topo.clone());
        let trace = small_trace(1);
        let engine = Engine::new(
            policy,
            &cluster,
            &model,
            EngineConfig::default(),
            topo,
            &trace,
        );
        assert!(engine.compute_shard_plan(2).is_none(), "single component");
    }

    #[test]
    fn sharded_matches_sequential_digest() {
        let cluster = paper_cluster();
        let model = llama_13b();
        let topo = two_instance_topo();
        let trace = small_trace(40);
        let seq = {
            let policy = StaticPolicy::new("s", topo.clone());
            let mut e = Engine::new(
                policy,
                &cluster,
                &model,
                EngineConfig::default(),
                topo.clone(),
                &trace,
            );
            e.run_to_completion();
            e.into_report()
        };
        for shards in [2usize, 4, 8] {
            let policy = StaticPolicy::new("s", topo.clone());
            let mut e = Engine::new(
                policy,
                &cluster,
                &model,
                EngineConfig::default(),
                topo.clone(),
                &trace,
            );
            e.run_sharded(shards);
            let rep = e.into_report();
            assert_eq!(
                rep.digest(),
                seq.digest(),
                "shards={shards} diverged from sequential"
            );
            assert_eq!(rep.completed.len(), seq.completed.len());
        }
    }

    #[test]
    fn unforkable_policy_falls_back() {
        // A policy with the default `fork` (None) must still complete
        // and match sequential exactly via the fallback path.
        struct NoFork(StaticPolicy);
        impl Policy for NoFork {
            fn name(&self) -> String {
                self.0.name()
            }
            fn topology(&mut self, c: &Cluster, m: &ModelSpec, cfg: &EngineConfig) -> Topology {
                self.0.topology(c, m, cfg)
            }
            fn route(&mut self, r: &hetis_workload::Request, ctx: &PolicyCtx<'_>) -> usize {
                self.0.route(r, ctx)
            }
            fn place_batch(
                &mut self,
                i: usize,
                reqs: &[(RequestId, u32)],
                ctx: &PolicyCtx<'_>,
            ) -> Vec<Option<HeadPlacement>> {
                self.0.place_batch(i, reqs, ctx)
            }
            fn select_victim(
                &mut self,
                i: usize,
                d: DeviceId,
                b: RequestId,
                ctx: &PolicyCtx<'_>,
            ) -> VictimAction {
                self.0.select_victim(i, d, b, ctx)
            }
        }
        let cluster = paper_cluster();
        let model = llama_13b();
        let topo = two_instance_topo();
        let trace = small_trace(12);
        let seq = {
            let mut e = Engine::new(
                StaticPolicy::new("s", topo.clone()),
                &cluster,
                &model,
                EngineConfig::default(),
                topo.clone(),
                &trace,
            );
            e.run_to_completion();
            e.into_report()
        };
        let mut e = Engine::new(
            NoFork(StaticPolicy::new("s", topo.clone())),
            &cluster,
            &model,
            EngineConfig::default(),
            topo.clone(),
            &trace,
        );
        e.run_sharded(4);
        assert_eq!(e.into_report().digest(), seq.digest());
    }
}
