//! Byte-accurate per-device KV accounting with block-granularity rounding.
//!
//! The engine tracks, for every device, which *(request, stage)* pairs hold
//! KV there, with how many head groups and tokens. Bytes are rounded up to
//! whole blocks (`block_size` tokens × one head group × one layer is the
//! unit), so capacity behaves exactly like the block allocators in
//! `hetis-kvcache`; the engine keeps the byte ledger and defers the
//! block-table mechanics to that crate's benches/tests.

use hetis_cluster::{Cluster, DeviceId, MemoryLedger};
use hetis_model::ModelSpec;
use hetis_workload::RequestId;
use std::collections::HashMap;

/// KV allocation failure on one device: the byte pool cannot hold the
/// operation. Carries requested vs. available bytes so admission and
/// growth failure logs are actionable (the block allocators'
/// `hetis_kvcache::AllocError` carries the block-count analogue; the
/// engine is deliberately independent of the block-cache crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvAllocError {
    /// Bytes the failing operation needed.
    pub requested: u64,
    /// Bytes that were free.
    pub available: u64,
}

impl std::fmt::Display for KvAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KV pool exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for KvAllocError {}

/// KV held by one (request, stage) on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvEntry {
    /// KV head groups resident.
    pub groups: u32,
    /// Tokens cached.
    pub tokens: u32,
    /// Layers of the owning stage.
    pub layers: u32,
}

/// KV accounting for one device.
#[derive(Debug, Clone)]
pub struct DeviceKv {
    ledger: MemoryLedger,
    entries: HashMap<(RequestId, u16), KvEntry>,
    /// Bytes of one block unit: block_size tokens × one group × one layer.
    block_unit: u64,
    block_size: u32,
}

impl DeviceKv {
    fn blocks_for(&self, tokens: u32) -> u64 {
        tokens.div_ceil(self.block_size) as u64
    }

    fn entry_bytes(&self, e: &KvEntry) -> u64 {
        self.blocks_for(e.tokens) * e.groups as u64 * e.layers as u64 * self.block_unit
    }

    /// Bytes needed to hold `groups` groups × `tokens` tokens × `layers`.
    pub fn bytes_needed(&self, groups: u32, tokens: u32, layers: u32) -> u64 {
        self.blocks_for(tokens) * groups as u64 * layers as u64 * self.block_unit
    }

    /// KV bytes free.
    pub fn free_bytes(&self) -> u64 {
        self.ledger.kv_free()
    }

    /// KV bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.ledger.kv_used()
    }

    /// Total KV pool bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.ledger.kv_pool()
    }

    /// Pool utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.ledger.kv_utilization()
    }

    /// The resident entry for (request, stage).
    pub fn entry(&self, req: RequestId, stage: u16) -> Option<KvEntry> {
        self.entries.get(&(req, stage)).copied()
    }

    /// Requests with any residency here.
    pub fn resident_requests(&self) -> Vec<RequestId> {
        let mut v: Vec<RequestId> = self.entries.keys().map(|&(r, _)| r).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Registers an entry, allocating its bytes. Fails without side
    /// effects when the pool is short.
    pub fn allocate(
        &mut self,
        req: RequestId,
        stage: u16,
        groups: u32,
        tokens: u32,
        layers: u32,
    ) -> Result<(), KvAllocError> {
        assert!(groups > 0 && layers > 0);
        assert!(
            !self.entries.contains_key(&(req, stage)),
            "{req} stage {stage} already resident"
        );
        let e = KvEntry {
            groups,
            tokens,
            layers,
        };
        let bytes = self.entry_bytes(&e);
        self.ledger.alloc_kv(bytes).map_err(|err| KvAllocError {
            requested: bytes,
            available: err.available,
        })?;
        self.entries.insert((req, stage), e);
        Ok(())
    }

    /// Bytes that appending one token to every entry of `req` would newly
    /// consume (0 when no block boundary is crossed).
    pub fn append_cost(&self, req: RequestId) -> u64 {
        self.entries
            .iter()
            .filter(|&(&(r, _), _)| r == req)
            .map(|(_, e)| {
                let before = self.blocks_for(e.tokens);
                let after = self.blocks_for(e.tokens + 1);
                (after - before) * e.groups as u64 * e.layers as u64 * self.block_unit
            })
            .sum()
    }

    /// Appends one token to every entry of `req`. Fails without side
    /// effects when the pool is short.
    pub fn append_token(&mut self, req: RequestId) -> Result<(), KvAllocError> {
        let cost = self.append_cost(req);
        if cost > 0 {
            self.ledger.alloc_kv(cost).map_err(|e| KvAllocError {
                requested: cost,
                available: e.available,
            })?;
        }
        for (_, e) in self.entries.iter_mut().filter(|&(&(r, _), _)| r == req) {
            e.tokens += 1;
        }
        Ok(())
    }

    /// Bytes that growing every entry of `req` to `new_tokens` tokens
    /// would newly consume (0 when no entry gains a block).
    pub fn grow_cost(&self, req: RequestId, new_tokens: u32) -> u64 {
        self.entries
            .iter()
            .filter(|&(&(r, _), _)| r == req)
            .map(|(_, e)| {
                let before = self.blocks_for(e.tokens);
                let after = self.blocks_for(e.tokens.max(new_tokens));
                (after - before) * e.groups as u64 * e.layers as u64 * self.block_unit
            })
            .sum()
    }

    /// Grows every entry of `req` on this device to `new_tokens` tokens —
    /// the chunked-prefill reservation path: admission reserves the first
    /// chunk, each completed chunk grows to cover the next. Entries
    /// already at or past `new_tokens` are left alone. Fails without side
    /// effects when the pool is short.
    pub fn grow_tokens(&mut self, req: RequestId, new_tokens: u32) -> Result<(), KvAllocError> {
        let cost = self.grow_cost(req, new_tokens);
        if cost > 0 {
            self.ledger.alloc_kv(cost).map_err(|e| KvAllocError {
                requested: cost,
                available: e.available,
            })?;
        }
        for (_, e) in self.entries.iter_mut().filter(|&(&(r, _), _)| r == req) {
            e.tokens = e.tokens.max(new_tokens);
        }
        Ok(())
    }

    /// Frees every entry of `req`; returns bytes released.
    pub fn free_request(&mut self, req: RequestId) -> u64 {
        let keys: Vec<(RequestId, u16)> = self
            .entries
            .keys()
            .filter(|&&(r, _)| r == req)
            .copied()
            .collect();
        let mut released = 0;
        for k in keys {
            let e = self.entries.remove(&k).expect("key present");
            released += self.entry_bytes(&e);
        }
        self.ledger.free_kv(released);
        released
    }

    /// Frees `groups` groups from (req, stage) — partial migration away.
    /// Returns bytes released. Panics if more groups than resident.
    pub fn shrink_groups(&mut self, req: RequestId, stage: u16, groups: u32) -> u64 {
        let e = *self.entries.get(&(req, stage)).expect("entry must exist");
        assert!(groups <= e.groups, "shrinking {groups} of {}", e.groups);
        let per_group = self.blocks_for(e.tokens) * e.layers as u64 * self.block_unit;
        let released = per_group * groups as u64;
        if e.groups == groups {
            self.entries.remove(&(req, stage));
        } else {
            self.entries.get_mut(&(req, stage)).expect("present").groups -= groups;
        }
        self.ledger.free_kv(released);
        released
    }

    /// Adds `groups` groups to (req, stage), creating the entry if absent
    /// (migration in). Fails without side effects when short.
    pub fn grow_groups(
        &mut self,
        req: RequestId,
        stage: u16,
        groups: u32,
        tokens: u32,
        layers: u32,
    ) -> Result<(), KvAllocError> {
        if let Some(e) = self.entries.get(&(req, stage)).copied() {
            assert_eq!(e.tokens, tokens, "token mismatch on grow");
            let per_group = self.blocks_for(tokens) * layers as u64 * self.block_unit;
            let bytes = per_group * groups as u64;
            self.ledger.alloc_kv(bytes).map_err(|err| KvAllocError {
                requested: bytes,
                available: err.available,
            })?;
            self.entries.get_mut(&(req, stage)).expect("present").groups += groups;
            Ok(())
        } else {
            self.allocate(req, stage, groups, tokens, layers)
        }
    }

    /// Total KV bytes attributable to `req` on this device.
    pub fn request_bytes(&self, req: RequestId) -> u64 {
        self.entries
            .iter()
            .filter(|&(&(r, _), _)| r == req)
            .map(|(_, e)| self.entry_bytes(&e.clone()))
            .sum()
    }

    /// Sum over entries of `groups × r` — the device's resident query-head
    /// count `h_i` (per layer), given the model's group ratio.
    pub fn resident_query_heads(&self, r: u32) -> u64 {
        self.entries
            .values()
            .map(|e| e.groups as u64 * r as u64)
            .sum()
    }

    /// Resident query heads for one pipeline stage only — the Dispatcher's
    /// `h_i(t)` (the LP of Eq. 7 runs per stage).
    pub fn stage_query_heads(&self, stage: u16, r: u32) -> u64 {
        self.entries
            .iter()
            .filter(|&(&(_, s), _)| s == stage)
            .map(|(_, e)| e.groups as u64 * r as u64)
            .sum()
    }

    /// Per-layer KV bytes resident for one stage — the Dispatcher's
    /// `g_i(t)` (what one attention kernel invocation reads).
    pub fn stage_kv_bytes_per_layer(&self, stage: u16) -> f64 {
        self.entries
            .iter()
            .filter(|&(&(_, s), _)| s == stage)
            .map(|(_, e)| (self.entry_bytes(e) / e.layers as u64) as f64)
            .sum()
    }

    /// The most recently useful victim query: requests resident on this
    /// device for a given stage, with their entry token counts.
    pub fn stage_residents(&self, stage: u16) -> Vec<(RequestId, KvEntry)> {
        let mut v: Vec<(RequestId, KvEntry)> = self
            .entries
            .iter()
            .filter(|&(&(_, s), _)| s == stage)
            .map(|(&(r, _), &e)| (r, e))
            .collect();
        v.sort_by_key(|&(r, _)| r);
        v
    }
}

/// Cluster-wide KV state: one [`DeviceKv`] per device.
#[derive(Debug, Clone)]
pub struct KvState {
    devices: Vec<DeviceKv>,
}

impl KvState {
    /// Builds the state: reserves `weights[d]` on each device and sizes
    /// the pools. Devices without weights get their full pool.
    pub fn new(
        cluster: &Cluster,
        model: &ModelSpec,
        block_size: u32,
        weights: &HashMap<DeviceId, u64>,
    ) -> Result<KvState, String> {
        let block_unit = block_size as u64 * 2 * model.head_dim * model.dtype.bytes();
        let mut devices = Vec::with_capacity(cluster.len());
        for d in cluster.devices() {
            let mut ledger = MemoryLedger::new(d.spec.mem_bytes);
            if let Some(&w) = weights.get(&d.id) {
                ledger
                    .reserve_weights(w)
                    .map_err(|e| format!("{}: {e}", d.id))?;
            }
            devices.push(DeviceKv {
                ledger,
                entries: HashMap::new(),
                block_unit,
                block_size,
            });
        }
        Ok(KvState { devices })
    }

    /// Accessor for one device.
    pub fn device(&self, d: DeviceId) -> &DeviceKv {
        &self.devices[d.index()]
    }

    /// Mutable accessor for one device.
    pub fn device_mut(&mut self, d: DeviceId) -> &mut DeviceKv {
        &mut self.devices[d.index()]
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices exist.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total KV pool across a device subset.
    pub fn total_pool(&self, subset: &[DeviceId]) -> u64 {
        subset.iter().map(|&d| self.device(d).pool_bytes()).sum()
    }

    /// Total used KV across a device subset.
    pub fn total_used(&self, subset: &[DeviceId]) -> u64 {
        subset.iter().map(|&d| self.device(d).used_bytes()).sum()
    }
}

/// *Usable* KV capacity of a topology, in bytes of whole-model cache —
/// the Fig. 11 metric.
///
/// A request's KV splits across pipeline stages in proportion to their
/// layer counts. For stage-local systems each stage's share can only live
/// on that stage's primary devices, so capacity is set by the bottleneck
/// stage — exactly the "unused cache space due to computation–memory
/// imbalance" of Fig. 1b. Hetis's shared attention-worker pool absorbs
/// any stage's overflow, so its capacity is the largest `T` (tokens) with
/// `Σ_s max(0, T·c_s − P_s) ≤ W`, where `c_s` is stage `s`'s per-token
/// bytes, `P_s` its primary pool and `W` the shared worker pool.
/// Prefill-only instances contribute nothing (their pools never hold
/// decode working set) — Fig. 1a's replicated-parameter cost.
pub fn usable_kv_bytes(model: &ModelSpec, topo: &crate::topology::Topology, kv: &KvState) -> u64 {
    use crate::topology::InstanceRole;
    let per_layer = hetis_model::KvFootprint::new(model).bytes_per_token_per_layer();
    let mut usable = 0u64;
    for inst in &topo.instances {
        if inst.role == InstanceRole::PrefillOnly || inst.role == InstanceRole::Down {
            continue;
        }
        let primary_pools: Vec<u64> = inst
            .stages
            .iter()
            .map(|s| {
                s.primary
                    .devices
                    .iter()
                    .map(|&d| kv.device(d).pool_bytes())
                    .sum()
            })
            .collect();
        let per_token: Vec<u64> = inst
            .stages
            .iter()
            .map(|s| per_layer * s.primary.layers as u64)
            .collect();
        // Shared worker pool: union of the instance's attention workers.
        let mut workers: Vec<_> = inst
            .stages
            .iter()
            .flat_map(|s| s.attention_workers.iter().copied())
            .collect();
        workers.sort();
        workers.dedup();
        let shared: u64 = workers.iter().map(|&d| kv.device(d).pool_bytes()).sum();
        let tokens = max_tokens_with_overflow_pool(&primary_pools, &per_token, shared);
        usable += tokens.saturating_mul(per_layer * model.num_layers as u64);
    }
    usable
}

/// Largest `T` with `Σ_s max(0, T·cost_s − pool_s) ≤ shared` (binary
/// search over a monotone predicate).
pub fn max_tokens_with_overflow_pool(pools: &[u64], costs: &[u64], shared: u64) -> u64 {
    let fits = |t: u64| -> bool {
        let mut overflow: u128 = 0;
        for (&p, &c) in pools.iter().zip(costs) {
            let need = t as u128 * c as u128;
            overflow += need.saturating_sub(p as u128);
        }
        overflow <= shared as u128
    };
    let mut lo = 0u64;
    // Upper bound: all memory in one pot.
    let total: u128 = pools.iter().map(|&p| p as u128).sum::<u128>() + shared as u128;
    let per_token: u128 = costs.iter().map(|&c| c as u128).sum::<u128>().max(1);
    let mut hi = (total / per_token + 1) as u64;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetis_cluster::cluster::paper_cluster;
    use hetis_model::llama_70b;

    fn state() -> KvState {
        let c = paper_cluster();
        let m = llama_70b();
        KvState::new(&c, &m, 16, &HashMap::new()).unwrap()
    }

    #[test]
    fn allocate_append_free_roundtrip() {
        let mut s = state();
        let d = DeviceId(0);
        let r = RequestId(1);
        s.device_mut(d).allocate(r, 0, 8, 100, 80).unwrap();
        let used = s.device(d).used_bytes();
        // 7 blocks × 8 groups × 80 layers × block_unit(16×2×128×2)
        assert_eq!(used, 7 * 8 * 80 * (16 * 2 * 128 * 2));
        // Appending inside the 7th block costs nothing (100 → 101 < 112).
        assert_eq!(s.device(d).append_cost(r), 0);
        s.device_mut(d).append_token(r).unwrap();
        assert_eq!(s.device(d).used_bytes(), used);
        // Push to the boundary: 112 tokens → next append opens block 8.
        for _ in 0..11 {
            s.device_mut(d).append_token(r).unwrap();
        }
        assert!(s.device(d).append_cost(r) > 0);
        s.device_mut(d).append_token(r).unwrap();
        assert!(s.device(d).used_bytes() > used);
        let released = s.device_mut(d).free_request(r);
        assert_eq!(s.device(d).used_bytes(), 0);
        assert!(released > used);
    }

    #[test]
    fn grow_tokens_matches_atomic_reservation() {
        let mut grown = state();
        let mut atomic = state();
        let d = DeviceId(1);
        let r = RequestId(3);
        // Chunk schedule 300 + 300 + 177 vs one 777-token allocation.
        grown.device_mut(d).allocate(r, 0, 8, 300, 40).unwrap();
        grown.device_mut(d).allocate(r, 1, 4, 300, 40).unwrap();
        for target in [600, 777] {
            assert!(
                grown.device_mut(d).grow_cost(r, target) > 0,
                "each chunk adds blocks"
            );
            grown.device_mut(d).grow_tokens(r, target).unwrap();
        }
        atomic.device_mut(d).allocate(r, 0, 8, 777, 40).unwrap();
        atomic.device_mut(d).allocate(r, 1, 4, 777, 40).unwrap();
        assert_eq!(grown.device(d).used_bytes(), atomic.device(d).used_bytes());
        assert_eq!(grown.device(d).entry(r, 0).unwrap().tokens, 777);
        assert_eq!(grown.device(d).entry(r, 1).unwrap().tokens, 777);
        // Shrinking targets are no-ops.
        assert_eq!(grown.device(d).grow_cost(r, 100), 0);
        grown.device_mut(d).grow_tokens(r, 100).unwrap();
        assert_eq!(grown.device(d).used_bytes(), atomic.device(d).used_bytes());
    }

    #[test]
    fn grow_tokens_exhaustion_has_no_side_effects() {
        let c = paper_cluster();
        let m = llama_70b();
        let mut weights = HashMap::new();
        let p100 = c.devices_of_type(hetis_cluster::GpuType::P100)[0];
        weights.insert(p100, 10_000_000_000);
        let mut s = KvState::new(&c, &m, 16, &weights).unwrap();
        s.device_mut(p100)
            .allocate(RequestId(1), 0, 8, 64, 80)
            .unwrap();
        let used = s.device(p100).used_bytes();
        let res = s.device_mut(p100).grow_tokens(RequestId(1), 1_000_000);
        assert!(res.is_err());
        assert_eq!(s.device(p100).used_bytes(), used);
        assert_eq!(s.device(p100).entry(RequestId(1), 0).unwrap().tokens, 64);
        // Terminal zero: freeing the request balances the ledger exactly.
        let released = s.device_mut(p100).free_request(RequestId(1));
        assert_eq!(released, used);
        assert_eq!(s.device(p100).used_bytes(), 0);
    }

    #[test]
    fn shrink_and_grow_groups() {
        let mut s = state();
        let d = DeviceId(2);
        let r = RequestId(7);
        s.device_mut(d).allocate(r, 1, 8, 64, 40).unwrap();
        let full = s.device(d).used_bytes();
        let released = s.device_mut(d).shrink_groups(r, 1, 3);
        assert_eq!(released, full * 3 / 8);
        assert_eq!(s.device(d).entry(r, 1).unwrap().groups, 5);
        s.device_mut(d).grow_groups(r, 1, 3, 64, 40).unwrap();
        assert_eq!(s.device(d).used_bytes(), full);
        // Shrinking to zero removes the entry.
        s.device_mut(d).shrink_groups(r, 1, 8);
        assert!(s.device(d).entry(r, 1).is_none());
        assert_eq!(s.device(d).used_bytes(), 0);
    }

    #[test]
    fn exhaustion_has_no_side_effects() {
        let c = paper_cluster();
        let m = llama_70b();
        let mut weights = HashMap::new();
        // Nearly fill a P100 (12 GB) with weights.
        let p100 = c.devices_of_type(hetis_cluster::GpuType::P100)[0];
        weights.insert(p100, 10_000_000_000);
        let mut s = KvState::new(&c, &m, 16, &weights).unwrap();
        let free = s.device(p100).free_bytes();
        // An allocation bigger than the pool fails cleanly.
        let need_groups = (free / (16 * 2 * 128 * 2) / 80 + 2) as u32;
        let res = s
            .device_mut(p100)
            .allocate(RequestId(1), 0, need_groups, 16, 80);
        assert!(res.is_err());
        assert_eq!(s.device(p100).used_bytes(), 0);
        assert_eq!(s.device(p100).free_bytes(), free);
    }

    #[test]
    fn alloc_error_carries_requested_and_available() {
        let c = paper_cluster();
        let m = llama_70b();
        let mut weights = HashMap::new();
        let p100 = c.devices_of_type(hetis_cluster::GpuType::P100)[0];
        weights.insert(p100, 10_000_000_000);
        let mut s = KvState::new(&c, &m, 16, &weights).unwrap();
        let available = s.device(p100).free_bytes();
        let requested = s.device(p100).bytes_needed(8, 1_000_000, 80);
        assert!(requested > available, "setup must exhaust the pool");
        let err = s
            .device_mut(p100)
            .allocate(RequestId(1), 0, 8, 1_000_000, 80)
            .unwrap_err();
        assert_eq!(
            err,
            KvAllocError {
                requested,
                available
            }
        );
        assert!(err.to_string().contains(&format!("{requested} bytes")));
        // Growth failures report the *delta* they asked for.
        s.device_mut(p100)
            .allocate(RequestId(1), 0, 8, 64, 80)
            .unwrap();
        let delta = s.device(p100).grow_cost(RequestId(1), 1_000_000);
        let err = s
            .device_mut(p100)
            .grow_tokens(RequestId(1), 1_000_000)
            .unwrap_err();
        assert_eq!(err.requested, delta);
        assert_eq!(err.available, s.device(p100).free_bytes());
    }

    #[test]
    fn resident_bookkeeping() {
        let mut s = state();
        let d = DeviceId(4);
        s.device_mut(d)
            .allocate(RequestId(1), 0, 2, 50, 40)
            .unwrap();
        s.device_mut(d)
            .allocate(RequestId(2), 0, 4, 30, 40)
            .unwrap();
        s.device_mut(d)
            .allocate(RequestId(1), 1, 1, 50, 40)
            .unwrap();
        assert_eq!(
            s.device(d).resident_requests(),
            vec![RequestId(1), RequestId(2)]
        );
        assert_eq!(s.device(d).resident_query_heads(8), (2 + 4 + 1) * 8);
        assert!(s.device(d).request_bytes(RequestId(1)) > 0);
        let _ = s.device_mut(d).free_request(RequestId(1));
        assert_eq!(s.device(d).resident_requests(), vec![RequestId(2)]);
    }

    #[test]
    fn overflow_pool_token_math() {
        // Two stages, per-token costs 2 and 1, pools 10 and 50, shared 6:
        // T=20 → needs (40,20): overflow (30,0)=30 > 6. T=12 → (24,12):
        // overflow (14,0)=14 > 6. T=8 → (16,8): overflow 6 ≤ 6 ✓.
        assert_eq!(max_tokens_with_overflow_pool(&[10, 50], &[2, 1], 6), 8);
        // No shared pool: pure bottleneck min(10/2, 50/1) = 5.
        assert_eq!(max_tokens_with_overflow_pool(&[10, 50], &[2, 1], 0), 5);
        // Everything in the shared pool.
        assert_eq!(max_tokens_with_overflow_pool(&[0, 0], &[2, 1], 30), 10);
        // Degenerate: zero memory.
        assert_eq!(max_tokens_with_overflow_pool(&[0], &[1], 0), 0);
    }

    #[test]
    fn usable_cache_counts_shared_workers_and_skips_prefill_only() {
        use crate::topology::{InstanceRole, InstanceTopo, StageTopo, Topology};
        use hetis_parallel::StageConfig;
        let c = paper_cluster();
        let m = llama_70b();
        let s = KvState::new(&c, &m, 16, &HashMap::new()).unwrap();
        let mk = |devs: &[u32], layers: u32, workers: &[u32]| {
            let mut st = StageTopo::plain(StageConfig {
                devices: devs.iter().map(|&i| DeviceId(i)).collect(),
                layers,
            });
            st.attention_workers = workers.iter().map(|&i| DeviceId(i)).collect();
            st
        };
        // One normal instance without workers vs the same with P100
        // workers: workers must strictly increase usable capacity.
        let plain = Topology {
            instances: vec![InstanceTopo {
                stages: vec![mk(&[0, 1], 40, &[]), mk(&[4, 5], 40, &[])],
                role: InstanceRole::Both,
            }],
        };
        let with_workers = Topology {
            instances: vec![InstanceTopo {
                stages: vec![mk(&[0, 1], 40, &[8, 9]), mk(&[4, 5], 40, &[8, 9])],
                role: InstanceRole::Both,
            }],
        };
        let u_plain = usable_kv_bytes(&m, &plain, &s);
        let u_workers = usable_kv_bytes(&m, &with_workers, &s);
        assert!(u_workers > u_plain, "{u_workers} vs {u_plain}");
        // A prefill-only instance contributes nothing.
        let prefill_only = Topology {
            instances: vec![InstanceTopo {
                stages: vec![mk(&[0, 1, 2, 3], 80, &[])],
                role: InstanceRole::PrefillOnly,
            }],
        };
        assert_eq!(usable_kv_bytes(&m, &prefill_only, &s), 0);
    }

    #[test]
    fn total_pool_accounting() {
        let s = state();
        let c = paper_cluster();
        let all: Vec<DeviceId> = c.devices().iter().map(|d| d.id).collect();
        // No weights: pools = memory minus activation reserve.
        let total = s.total_pool(&all);
        assert!(total > 400_000_000_000);
        assert_eq!(s.total_used(&all), 0);
    }
}
