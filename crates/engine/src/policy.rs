//! The policy interface: systems decide, the engine executes.
//!
//! Hetis, HexGen and Splitwise differ only in these hooks — topology
//! construction, request routing, head placement, post-prefill hand-off,
//! re-dispatching, and victim selection. The engine owns the event loop,
//! memory accounting and metric collection so the comparison between
//! systems is apples-to-apples.

use crate::config::EngineConfig;
use crate::memory::{DeviceKv, KvState};
use crate::prefix::{PrefixCache, PrefixEntry};
use crate::request::RunningRequest;
use crate::topology::{HeadPlacement, Topology};
use hetis_cluster::{Cluster, DeviceId};
use hetis_model::ModelSpec;
use hetis_workload::{Request, RequestId};
use std::collections::hash_map;
use std::collections::HashMap;

/// Read-only, zero-copy view over one or more KV-state partitions.
///
/// The sequential engine always hands hooks the `Single` variant (its own
/// [`KvState`] — same cost as the old `&KvState` field). At a sharded
/// barrier the coordinator builds the `Sharded` variant over every shard
/// group's partition plus a device→group map, so cross-instance hooks
/// (routing, replanning) see the exact global state without merging.
#[derive(Clone, Copy)]
pub enum KvView<'a> {
    /// One engine's complete KV state (the hot path).
    Single(&'a KvState),
    /// Per-shard-group partitions; `owner[device.0]` names the partition
    /// whose entry for that device is authoritative.
    Sharded {
        /// One `KvState` per shard group, in group-rank order.
        parts: &'a [&'a KvState],
        /// Device index → index into `parts`.
        owner: &'a [u32],
    },
}

impl<'a> KvView<'a> {
    /// View over a single engine's state.
    #[inline]
    pub fn single(kv: &'a KvState) -> Self {
        KvView::Single(kv)
    }

    /// The authoritative per-device KV state for `d`.
    #[inline]
    pub fn device(&self, d: DeviceId) -> &'a DeviceKv {
        match *self {
            KvView::Single(kv) => kv.device(d),
            KvView::Sharded { parts, owner } => parts[owner[d.0 as usize] as usize].device(d),
        }
    }
}

/// Read-only, zero-copy view over one or more live-request maps — the
/// request-side analogue of [`KvView`], with the map API policy hooks
/// actually use (`get`, indexing, `values`, `len`).
#[derive(Clone, Copy)]
pub enum RequestsView<'a> {
    /// One engine's complete request map (the hot path).
    Single(&'a HashMap<RequestId, RunningRequest>),
    /// Per-shard-group request maps in group-rank order; a request lives
    /// in exactly one part.
    Sharded(&'a [&'a HashMap<RequestId, RunningRequest>]),
}

impl<'a> RequestsView<'a> {
    /// View over a single engine's request map.
    #[inline]
    pub fn single(requests: &'a HashMap<RequestId, RunningRequest>) -> Self {
        RequestsView::Single(requests)
    }

    /// Looks up a request by id across all parts.
    #[inline]
    pub fn get(&self, id: &RequestId) -> Option<&'a RunningRequest> {
        match *self {
            RequestsView::Single(m) => m.get(id),
            RequestsView::Sharded(parts) => parts.iter().find_map(|m| m.get(id)),
        }
    }

    /// Total number of live requests.
    pub fn len(&self) -> usize {
        match *self {
            RequestsView::Single(m) => m.len(),
            RequestsView::Sharded(parts) => parts.iter().map(|m| m.len()).sum(),
        }
    }

    /// True when no requests are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every live request (parts in group-rank order; within a
    /// part, map order — callers must not depend on ordering, exactly as
    /// with the underlying `HashMap`).
    pub fn values(&self) -> RequestsValues<'a> {
        fn part_values<'b>(
            m: &&'b HashMap<RequestId, RunningRequest>,
        ) -> hash_map::Values<'b, RequestId, RunningRequest> {
            m.values()
        }
        match *self {
            RequestsView::Single(m) => RequestsValues::One(m.values()),
            RequestsView::Sharded(parts) => {
                RequestsValues::Many(parts.iter().flat_map(part_values))
            }
        }
    }
}

/// Flattened iterator over the per-part request maps of a sharded view.
type PartsValues<'a> = std::iter::FlatMap<
    std::slice::Iter<'a, &'a HashMap<RequestId, RunningRequest>>,
    hash_map::Values<'a, RequestId, RunningRequest>,
    fn(&&'a HashMap<RequestId, RunningRequest>) -> hash_map::Values<'a, RequestId, RunningRequest>,
>;

/// Iterator over [`RequestsView::values`].
pub enum RequestsValues<'a> {
    /// Single-map fast path.
    One(hash_map::Values<'a, RequestId, RunningRequest>),
    /// Chained multi-part iteration.
    Many(PartsValues<'a>),
}

impl<'a> Iterator for RequestsValues<'a> {
    type Item = &'a RunningRequest;
    #[inline]
    fn next(&mut self) -> Option<&'a RunningRequest> {
        match self {
            RequestsValues::One(it) => it.next(),
            RequestsValues::Many(it) => it.next(),
        }
    }
}

impl std::ops::Index<&RequestId> for RequestsView<'_> {
    type Output = RunningRequest;
    #[inline]
    fn index(&self, id: &RequestId) -> &RunningRequest {
        self.get(id).expect("no running request with this id")
    }
}

/// Read-only view over the engine's prefix cache(s) — the session-keyed
/// warm-KV index of [`crate::prefix::PrefixCache`], exposed so policies
/// can see the *head-group pinning constraint*: a request whose session
/// predecessor is cached will be admitted with the cached placement
/// verbatim (the warm KV physically sits on those devices), so its head
/// groups are pinned and `place_batch` is never consulted for it.
/// Routing policies can likewise use [`PrefixView::get`] to keep a
/// follow-up turn on the instance that holds its warm prefix.
#[derive(Clone, Copy)]
pub enum PrefixView<'a> {
    /// No prefix information (reuse disabled, or a context built outside
    /// the engine, e.g. controller tests).
    Empty,
    /// One engine's cache (the hot path).
    Single(&'a PrefixCache),
    /// Per-shard-group caches in group-rank order; a session's entry
    /// lives in exactly one part (caches partition by instance, and a
    /// session's turns stay on one instance while its entry survives).
    Sharded(&'a [&'a PrefixCache]),
}

impl<'a> PrefixView<'a> {
    /// View over a single engine's cache.
    #[inline]
    pub fn single(cache: &'a PrefixCache) -> Self {
        PrefixView::Single(cache)
    }

    /// Looks up the cached prefix of `(session, turn)` across all parts.
    pub fn get(&self, session: u64, turn: u32) -> Option<&'a PrefixEntry> {
        match *self {
            PrefixView::Empty => None,
            PrefixView::Single(c) => c.get(session, turn),
            PrefixView::Sharded(parts) => parts.iter().find_map(|c| c.get(session, turn)),
        }
    }

    /// Total cached prefixes across parts.
    pub fn len(&self) -> usize {
        match *self {
            PrefixView::Empty => 0,
            PrefixView::Single(c) => c.len(),
            PrefixView::Sharded(parts) => parts.iter().map(|c| c.len()).sum(),
        }
    }

    /// True when no prefix is cached anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Read-only view of engine state handed to policy hooks.
pub struct PolicyCtx<'a> {
    /// The cluster.
    pub cluster: &'a Cluster,
    /// The served model.
    pub model: &'a ModelSpec,
    /// Current simulated time.
    pub now: f64,
    /// Per-device KV state.
    pub kv: KvView<'a>,
    /// All live requests (waiting, running, migrating).
    pub requests: RequestsView<'a>,
    /// The serving topology.
    pub topology: &'a Topology,
    /// The engine's chunked-prefill cap (`None` = atomic prefill).
    /// Placement policies can use it to bound the *per-iteration* compute
    /// load a long prompt contributes, while sizing KV for the full
    /// prompt.
    pub prefill_chunk_tokens: Option<u64>,
    /// The engine's prefix cache(s) ([`PrefixView::Empty`] when prefix
    /// reuse is off). A hit pins a request's head groups to the cached
    /// placement's devices — see [`PrefixView`].
    pub prefix: PrefixView<'a>,
}

/// Post-prefill hand-off decision (Splitwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// Instance that will decode the request.
    pub target_instance: usize,
}

/// A re-dispatch: replace a request's placement (the engine migrates the
/// KV difference and pauses the request until the transfer lands).
#[derive(Debug, Clone)]
pub struct RedispatchOp {
    /// The request to re-dispatch.
    pub req: RequestId,
    /// The new placement.
    pub new_placement: HeadPlacement,
}

/// Response to a KV-exhaustion callback.
#[derive(Debug, Clone)]
pub enum VictimAction {
    /// Recompute-preempt this request (vLLM's default path).
    Evict(RequestId),
    /// Re-dispatch this request to the given placement instead of evicting
    /// (Hetis §5.3.2 — uses free memory elsewhere in the cluster).
    Redispatch(RequestId, HeadPlacement),
    /// Nothing can be done; the caller skips the blocked request this
    /// iteration.
    Stall,
}

/// A serving system.
pub trait Policy {
    /// Short name for reports.
    fn name(&self) -> String;

    /// Builds the serving topology once at startup.
    fn topology(&mut self, cluster: &Cluster, model: &ModelSpec, cfg: &EngineConfig) -> Topology;

    /// Routes an arriving request to an instance index.
    fn route(&mut self, req: &Request, ctx: &PolicyCtx<'_>) -> usize;

    /// Places a batch of admission candidates on `instance` (the paper's
    /// J(t) — all newly dispatched requests are placed jointly, Eq. 7).
    /// `None` for a request defers it (stays waiting).
    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)], // (id, effective prompt length)
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>>;

    /// Called when a request finishes prefill; `Some` hands it to another
    /// instance for decoding (Splitwise).
    fn after_prefill(
        &mut self,
        _instance: usize,
        _req: RequestId,
        _ctx: &PolicyCtx<'_>,
    ) -> Option<Handoff> {
        None
    }

    /// Called before decode microbatches are formed on `instance`;
    /// returns re-dispatch operations to execute (Hetis §5.3.1).
    fn before_decode(&mut self, _instance: usize, _ctx: &PolicyCtx<'_>) -> Vec<RedispatchOp> {
        Vec::new()
    }

    /// Called when device `device` cannot fit the next decode token of
    /// `blocked`; must name a victim or stall.
    fn select_victim(
        &mut self,
        instance: usize,
        device: DeviceId,
        blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction;

    /// Called after the engine applied a cluster-change event (`health`
    /// already reflects it, dead devices are already pruned from
    /// attention-worker lists and lost instances marked `Down`). Return a
    /// [`crate::churn::ReplanResponse`] to re-plan the topology and/or drain KV off
    /// draining devices; the default does nothing (a static system).
    fn on_cluster_change(
        &mut self,
        _event: &crate::churn::ClusterEvent,
        _health: &crate::churn::HealthView,
        _ctx: &PolicyCtx<'_>,
    ) -> crate::churn::ReplanResponse {
        crate::churn::ReplanResponse::default()
    }

    /// Called at every periodic telemetry tick — but only when
    /// [`crate::config::EngineConfig::closed_loop`] is set — with a fresh
    /// bus snapshot. Return a [`crate::control::ControlResponse`] to
    /// actuate (scale replan, admission throttle, chunk pacing); the
    /// default keeps the loop open. A no-op response leaves the engine
    /// untouched (no dispatch sweep, nothing logged), so quiet
    /// controllers are digest-neutral.
    fn on_telemetry_tick(
        &mut self,
        _snapshot: &hetis_telemetry::TelemetrySnapshot,
        _closed_loop: &crate::control::ClosedLoopConfig,
        _health: &crate::churn::HealthView,
        _ctx: &PolicyCtx<'_>,
    ) -> crate::control::ControlResponse {
        crate::control::ControlResponse::default()
    }

    /// Returns an independent copy of this policy for one shard group of
    /// the sharded simulation runner, or `None` when the policy cannot be
    /// forked — the engine then falls back to the exact sequential path,
    /// so `None` (the default) is always safe.
    ///
    /// Contract for implementers: only the *window* hooks (`place_batch`,
    /// `after_prefill`, `before_decode`, `select_victim`) ever run on a
    /// fork, and only against the forking group's own instances. Routing
    /// and the barrier hooks (`route`, `on_cluster_change`,
    /// `on_telemetry_tick`) stay on the original policy, so fork state
    /// that only those hooks mutate (round-robin cursors, controllers)
    /// may go stale on the fork without affecting behavior. Forks are
    /// taken fresh at every shard re-split and discarded at the next
    /// merge.
    fn fork(&self) -> Option<Box<dyn Policy + Send>> {
        None
    }
}

/// Boxed policies forward every hook, so shard groups can run
/// `Box<dyn Policy + Send>` through the same generic engine.
impl<T: Policy + ?Sized> Policy for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn topology(&mut self, cluster: &Cluster, model: &ModelSpec, cfg: &EngineConfig) -> Topology {
        (**self).topology(cluster, model, cfg)
    }
    fn route(&mut self, req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        (**self).route(req, ctx)
    }
    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>> {
        (**self).place_batch(instance, reqs, ctx)
    }
    fn after_prefill(
        &mut self,
        instance: usize,
        req: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> Option<Handoff> {
        (**self).after_prefill(instance, req, ctx)
    }
    fn before_decode(&mut self, instance: usize, ctx: &PolicyCtx<'_>) -> Vec<RedispatchOp> {
        (**self).before_decode(instance, ctx)
    }
    fn select_victim(
        &mut self,
        instance: usize,
        device: DeviceId,
        blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        (**self).select_victim(instance, device, blocked, ctx)
    }
    fn on_cluster_change(
        &mut self,
        event: &crate::churn::ClusterEvent,
        health: &crate::churn::HealthView,
        ctx: &PolicyCtx<'_>,
    ) -> crate::churn::ReplanResponse {
        (**self).on_cluster_change(event, health, ctx)
    }
    fn on_telemetry_tick(
        &mut self,
        snapshot: &hetis_telemetry::TelemetrySnapshot,
        closed_loop: &crate::control::ClosedLoopConfig,
        health: &crate::churn::HealthView,
        ctx: &PolicyCtx<'_>,
    ) -> crate::control::ControlResponse {
        (**self).on_telemetry_tick(snapshot, closed_loop, health, ctx)
    }
    fn fork(&self) -> Option<Box<dyn Policy + Send>> {
        (**self).fork()
    }
}

/// The simplest complete policy: a fixed topology, round-robin routing,
/// stage-local placement, LIFO eviction. This is "plain vLLM on a given
/// parallel config" — the building block both baselines specialize, and
/// the engine's own test harness.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    /// Name for reports.
    pub label: String,
    /// The fixed topology.
    pub topo: Topology,
    next_inst: usize,
}

impl StaticPolicy {
    /// A static policy serving `topo`.
    pub fn new(label: impl Into<String>, topo: Topology) -> Self {
        StaticPolicy {
            label: label.into(),
            topo,
            next_inst: 0,
        }
    }

    /// LIFO victim on an instance: the most recently admitted request that
    /// is decoding, not in flight, and actually resident on `device`.
    pub fn lifo_victim_on_device(
        instance: usize,
        device: DeviceId,
        ctx: &PolicyCtx<'_>,
    ) -> Option<RequestId> {
        ctx.requests
            .values()
            .filter(|r| {
                r.instance == instance
                    && !r.in_flight
                    && matches!(r.phase, crate::request::Phase::Decoding)
                    && ctx.kv.device(device).request_bytes(r.req.id) > 0
            })
            .max_by(|a, b| {
                a.admitted_at
                    .unwrap_or(0.0)
                    .partial_cmp(&b.admitted_at.unwrap_or(0.0))
                    .unwrap()
                    .then(a.req.id.cmp(&b.req.id))
            })
            .map(|r| r.req.id)
    }

    /// Plain LIFO on an instance regardless of device residency — the
    /// vLLM-style eviction the paper criticizes (§5.3.2): the newest
    /// request may not even touch the exhausted device.
    pub fn lifo_victim_anywhere(instance: usize, ctx: &PolicyCtx<'_>) -> Option<RequestId> {
        ctx.requests
            .values()
            .filter(|r| {
                r.instance == instance
                    && !r.in_flight
                    && matches!(r.phase, crate::request::Phase::Decoding)
            })
            .max_by(|a, b| {
                a.admitted_at
                    .unwrap_or(0.0)
                    .partial_cmp(&b.admitted_at.unwrap_or(0.0))
                    .unwrap()
                    .then(a.req.id.cmp(&b.req.id))
            })
            .map(|r| r.req.id)
    }
}

impl Policy for StaticPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn topology(&mut self, _: &Cluster, _: &ModelSpec, _: &EngineConfig) -> Topology {
        self.topo.clone()
    }

    fn route(&mut self, _req: &Request, ctx: &PolicyCtx<'_>) -> usize {
        let entries = ctx.topology.entry_instances();
        let pick = entries[self.next_inst % entries.len()];
        self.next_inst += 1;
        pick
    }

    fn place_batch(
        &mut self,
        instance: usize,
        reqs: &[(RequestId, u32)],
        ctx: &PolicyCtx<'_>,
    ) -> Vec<Option<HeadPlacement>> {
        let stages = &ctx.topology.instances[instance].stages;
        let p = HeadPlacement::stage_local(stages, ctx.model.num_heads);
        reqs.iter().map(|_| Some(p.clone())).collect()
    }

    fn select_victim(
        &mut self,
        instance: usize,
        device: DeviceId,
        _blocked: RequestId,
        ctx: &PolicyCtx<'_>,
    ) -> VictimAction {
        match Self::lifo_victim_on_device(instance, device, ctx) {
            Some(v) => VictimAction::Evict(v),
            None => VictimAction::Stall,
        }
    }

    fn fork(&self) -> Option<Box<dyn Policy + Send>> {
        // The only mutable state is the routing cursor, which never runs
        // on a fork (routing stays on the original).
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{InstanceRole, InstanceTopo, StageTopo};
    use hetis_parallel::StageConfig;

    #[test]
    fn static_policy_round_robins() {
        use hetis_cluster::cluster::paper_cluster;
        use hetis_model::llama_13b;
        let cluster = paper_cluster();
        let model = llama_13b();
        let topo = Topology {
            instances: vec![
                InstanceTopo {
                    stages: vec![StageTopo::plain(StageConfig {
                        devices: vec![DeviceId(0), DeviceId(1)],
                        layers: 40,
                    })],
                    role: InstanceRole::Both,
                },
                InstanceTopo {
                    stages: vec![StageTopo::plain(StageConfig {
                        devices: vec![DeviceId(2), DeviceId(3)],
                        layers: 40,
                    })],
                    role: InstanceRole::Both,
                },
            ],
        };
        let kv = KvState::new(&cluster, &model, 16, &HashMap::new()).unwrap();
        let requests = HashMap::new();
        let mut p = StaticPolicy::new("static", topo.clone());
        let ctx = PolicyCtx {
            cluster: &cluster,
            model: &model,
            now: 0.0,
            kv: KvView::single(&kv),
            requests: RequestsView::single(&requests),
            topology: &topo,
            prefill_chunk_tokens: None,
            prefix: PrefixView::Empty,
        };
        let r = Request {
            id: RequestId(0),
            arrival: 0.0,
            input_len: 10,
            output_len: 5,
            class: Default::default(),
            tenant: Default::default(),
            session: None,
        };
        assert_eq!(p.route(&r, &ctx), 0);
        assert_eq!(p.route(&r, &ctx), 1);
        assert_eq!(p.route(&r, &ctx), 0);
        // Placement is stage-local.
        let placements = p.place_batch(0, &[(RequestId(0), 10)], &ctx);
        let hp = placements[0].as_ref().unwrap();
        hp.validate(model.num_heads, model.gqa_ratio()).unwrap();
        assert_eq!(hp.heads_on(0, DeviceId(0)), 20);
    }
}
