//! Engine tuning knobs.

/// How the admission queue is ordered when prefill batches are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order (the pre-SLO behavior).
    #[default]
    Fifo,
    /// Least TTFT slack first: requests are ordered by
    /// `class.ttft_slack(arrival, now)` ascending, so latency-critical
    /// classes overtake queued long-context work whose deadline is far
    /// away. Ties break by arrival then id, keeping runs deterministic.
    SloSlack,
}

/// Engine configuration, mirroring vLLM's serving knobs where they exist.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Tokens per KV block (vLLM default 16).
    pub block_size: u32,
    /// Prefill token budget per iteration (vLLM `max_num_batched_tokens`).
    pub max_batch_tokens: u64,
    /// Chunked prefill: cap on prompt tokens one request contributes to a
    /// single prefill iteration (vLLM `long_prefill_token_threshold`
    /// family). `None` prefills prompts atomically (the pre-chunking
    /// behavior); `Some(c)` splits longer prompts into `c`-token chunks
    /// interleaved with decode iterations, bounding the head-of-line
    /// blocking a long prompt can inflict. A chunk size at or above the
    /// longest effective prompt is bit-identical to `None`.
    pub prefill_chunk_tokens: Option<u64>,
    /// Admission-queue ordering.
    pub admission: AdmissionPolicy,
    /// Maximum concurrently running sequences per instance.
    pub max_running: usize,
    /// Multiplicative kernel-time jitter amplitude (0 = deterministic).
    /// The profiling-accuracy experiment raises this.
    pub kernel_jitter: f64,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Period of cache/head time-series sampling, seconds (Fig. 14).
    pub trace_sample_period: f64,
    /// Stop simulating this long after the last arrival even if requests
    /// are still running (guards against pathological stalls).
    pub drain_timeout: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            block_size: 16,
            max_batch_tokens: 8192,
            prefill_chunk_tokens: None,
            admission: AdmissionPolicy::Fifo,
            max_running: 512,
            kernel_jitter: 0.0,
            seed: 0xC0FFEE,
            trace_sample_period: 1.0,
            drain_timeout: 600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = EngineConfig::default();
        assert_eq!(c.block_size, 16);
        assert!(c.max_batch_tokens >= 2048);
        assert!(c.kernel_jitter == 0.0);
        assert_eq!(c.prefill_chunk_tokens, None);
        assert_eq!(c.admission, AdmissionPolicy::Fifo);
    }
}
