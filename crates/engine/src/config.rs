//! Engine tuning knobs.

/// Engine configuration, mirroring vLLM's serving knobs where they exist.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Tokens per KV block (vLLM default 16).
    pub block_size: u32,
    /// Prefill token budget per iteration (vLLM `max_num_batched_tokens`).
    pub max_batch_tokens: u64,
    /// Maximum concurrently running sequences per instance.
    pub max_running: usize,
    /// Multiplicative kernel-time jitter amplitude (0 = deterministic).
    /// The profiling-accuracy experiment raises this.
    pub kernel_jitter: f64,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Period of cache/head time-series sampling, seconds (Fig. 14).
    pub trace_sample_period: f64,
    /// Stop simulating this long after the last arrival even if requests
    /// are still running (guards against pathological stalls).
    pub drain_timeout: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            block_size: 16,
            max_batch_tokens: 8192,
            max_running: 512,
            kernel_jitter: 0.0,
            seed: 0xC0FFEE,
            trace_sample_period: 1.0,
            drain_timeout: 600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = EngineConfig::default();
        assert_eq!(c.block_size, 16);
        assert!(c.max_batch_tokens >= 2048);
        assert!(c.kernel_jitter == 0.0);
    }
}
