//! Engine tuning knobs.

use hetis_telemetry::TelemetryConfig;

/// How the admission queue is ordered when prefill batches are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order (the pre-SLO behavior).
    #[default]
    Fifo,
    /// Least TTFT slack first: requests are ordered by
    /// `class.ttft_slack(arrival, now)` ascending, so latency-critical
    /// classes overtake queued long-context work whose deadline is far
    /// away. Ties break by arrival then id, keeping runs deterministic.
    SloSlack,
}

/// Engine configuration, mirroring vLLM's serving knobs where they exist.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Tokens per KV block (vLLM default 16).
    pub block_size: u32,
    /// Prefill token budget per iteration (vLLM `max_num_batched_tokens`).
    pub max_batch_tokens: u64,
    /// Chunked prefill: cap on prompt tokens one request contributes to a
    /// single prefill iteration (vLLM `long_prefill_token_threshold`
    /// family). `None` prefills prompts atomically (the pre-chunking
    /// behavior); `Some(c)` splits longer prompts into `c`-token chunks
    /// interleaved with decode iterations, bounding the head-of-line
    /// blocking a long prompt can inflict. A chunk size at or above the
    /// longest effective prompt schedules identically to `None`
    /// (digest-pinned on uncontended pools); its KV reservation still
    /// carries `decode_headroom_tokens` on top of the prompt, so under
    /// memory pressure victim timing can differ from atomic mode.
    pub prefill_chunk_tokens: Option<u64>,
    /// Fused prefill+decode microbatches (vLLM-style chunked prefill's
    /// mixed batches): when chunking is on, each cohort iteration runs
    /// ONE breakdown combining the current prefill chunk(s) with the
    /// resident decode batch — weights stream once, decode tokens ride
    /// the chunk's dense pass — instead of alternating chunk and decode
    /// iterations. Cuts decode TPOT during long prefills at a small TTFT
    /// cost. Ignored when `prefill_chunk_tokens` is `None` (atomic
    /// prefills keep the legacy prefill-priority loop).
    pub fused_microbatches: bool,
    /// Decode-headroom tokens reserved at admission on top of the first
    /// chunk under incremental KV growth. The reservation *prepays* the
    /// first `headroom` decode appends after prefill completion: they
    /// consume the cushion instead of allocating, so they can never hit
    /// the victim path. Only meaningful when `prefill_chunk_tokens` is
    /// `Some`; atomic admission reserves exactly the effective prompt
    /// (whose context has already outgrown it at the first append).
    pub decode_headroom_tokens: u32,
    /// Admission-queue ordering.
    pub admission: AdmissionPolicy,
    /// Maximum concurrently running sequences per instance.
    pub max_running: usize,
    /// Multiplicative kernel-time jitter amplitude (0 = deterministic).
    /// The profiling-accuracy experiment raises this.
    pub kernel_jitter: f64,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Period of cache/head time-series sampling, seconds (Fig. 14).
    pub trace_sample_period: f64,
    /// Stop simulating this long after the last arrival even if requests
    /// are still running (guards against pathological stalls).
    pub drain_timeout: f64,
    /// Streaming telemetry bus (`None` = off, the default). When `Some`,
    /// the engine taps every request lifecycle edge onto a
    /// [`hetis_telemetry::TelemetryBus`] and samples queue depths / KV
    /// occupancy on the config's tick. Strictly zero-cost when `None`:
    /// no bus is constructed, no event is published, and the run's
    /// behavior digest is bit-identical either way (DESIGN.md §T).
    pub telemetry: Option<TelemetryConfig>,
    /// Closed-loop control on the telemetry bus (`None` = open loop, the
    /// default). When `Some`, every periodic telemetry tick hands the
    /// policy a fresh snapshot via
    /// [`crate::policy::Policy::on_telemetry_tick`] and applies the
    /// returned actuations (scale replans, admission throttling, chunk
    /// pacing — see [`crate::control`]). Requires `telemetry` to be
    /// `Some` with a positive `sample_period` (the loop is tick-edge
    /// driven). `None` is bit-identical to pre-closed-loop behavior:
    /// the hook is never called.
    pub closed_loop: Option<crate::control::ClosedLoopConfig>,
    /// Simulation shards: worker threads the event loop may fan serving
    /// instances across (DESIGN.md §P). `1` (the default) is the exact
    /// sequential engine; `> 1` runs device-disjoint instance groups on
    /// real threads inside conservative windows, falling back to the
    /// sequential path whenever the scenario cannot shard safely
    /// (a policy without [`crate::Policy::fork`], phase-coupled
    /// topologies, or a single connected component; kernel jitter is
    /// fine — its RNG is pre-split per instance). The
    /// `HETIS_SIM_SHARDS` environment variable overrides this at
    /// [`crate::engine::run`] time. Behavior digests are bit-identical
    /// for any shard count.
    pub sim_shards: usize,
    /// Radix-keyed prefix/KV reuse (automatic prefix caching). When on,
    /// a finished request's KV stays probe-able in *free* pool memory
    /// keyed by its session turn; a returning turn that extends that
    /// context routes to the holding instance, re-admits only the cold
    /// suffix (warm full blocks skip both the chunk-prefill iterations
    /// and their KV reservations — `RunReport::prefix_hit_tokens`), and
    /// shares the warm bytes copy-free. Cached entries are evicted
    /// oldest-first per device whenever live allocations need the
    /// memory, so reuse never displaces live KV. `false` (the default)
    /// is bit-identical to the pre-reuse engine.
    pub prefix_reuse: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            block_size: 16,
            max_batch_tokens: 8192,
            prefill_chunk_tokens: None,
            fused_microbatches: false,
            decode_headroom_tokens: 16,
            admission: AdmissionPolicy::Fifo,
            max_running: 512,
            kernel_jitter: 0.0,
            seed: 0xC0FFEE,
            trace_sample_period: 1.0,
            drain_timeout: 600.0,
            telemetry: None,
            closed_loop: None,
            sim_shards: 1,
            prefix_reuse: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = EngineConfig::default();
        assert_eq!(c.block_size, 16);
        assert!(c.max_batch_tokens >= 2048);
        assert!(c.kernel_jitter == 0.0);
        assert_eq!(c.prefill_chunk_tokens, None);
        assert!(!c.fused_microbatches);
        assert_eq!(c.decode_headroom_tokens, 16);
        assert_eq!(c.admission, AdmissionPolicy::Fifo);
        assert!(c.telemetry.is_none(), "telemetry is opt-in");
        assert!(c.closed_loop.is_none(), "closed loop is opt-in");
        assert!(!c.prefix_reuse, "prefix reuse is opt-in");
    }
}
