//! Metric collection and reporting.
//!
//! All figures of the paper's evaluation reduce to quantities defined
//! here: normalized end-to-end latency (s/token, Figs. 8–10), P95
//! TTFT/TPOT (Fig. 12), per-module latency contributions (Fig. 13, the
//! max-stage × stage-count metric), KV-pool totals (Fig. 11) and resource
//! time series (Fig. 14).

use hetis_cluster::DeviceId;
use hetis_sim::{percentile, Summary};
use hetis_workload::RequestId;

/// Metrics of one completed request.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// Request id.
    pub id: RequestId,
    /// Arrival time.
    pub arrival: f64,
    /// Time the first output token appeared (prefill completion).
    pub first_token: f64,
    /// Completion time (last token).
    pub completion: f64,
    /// Prompt length.
    pub input_len: u32,
    /// Output length.
    pub output_len: u32,
    /// Recompute preemptions suffered.
    pub preemptions: u32,
    /// Re-dispatches applied.
    pub redispatches: u32,
}

impl CompletedRequest {
    /// Time to first token: queueing + prefill.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// Mean time per output token after the first.
    pub fn tpot(&self) -> f64 {
        if self.output_len <= 1 {
            0.0
        } else {
            (self.completion - self.first_token) / (self.output_len - 1) as f64
        }
    }

    /// End-to-end latency normalized by output length (the Figs. 8–10
    /// y-axis, s/token).
    pub fn normalized_latency(&self) -> f64 {
        (self.completion - self.arrival) / self.output_len as f64
    }
}

/// One decode iteration's per-module latency contribution:
/// max stage time × number of stages (the Fig. 13 definition, which
/// charges pipeline bubbles to the slowest stage).
#[derive(Debug, Clone, Copy)]
pub struct ModuleSample {
    /// Simulated time of the iteration.
    pub time: f64,
    /// MLP contribution (s).
    pub mlp: f64,
    /// Attention contribution (s).
    pub attn: f64,
}

/// A point of the per-device resource time series (Fig. 14).
#[derive(Debug, Clone)]
pub struct TraceSample {
    /// Sample time.
    pub time: f64,
    /// Per device: (device, cache-pool utilization in `[0,1]`, resident
    /// query heads per layer).
    pub devices: Vec<(DeviceId, f64, u64)>,
}

/// Full output of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Policy name ("hetis", "hexgen", "splitwise", …).
    pub policy: String,
    /// Per-request metrics for completed requests.
    pub completed: Vec<CompletedRequest>,
    /// Requests still unfinished at simulation end.
    pub unfinished: usize,
    /// Per-decode-iteration module samples.
    pub module_samples: Vec<ModuleSample>,
    /// Resource time series.
    pub trace: Vec<TraceSample>,
    /// Simulated makespan (time of the last event).
    pub duration: f64,
    /// Total raw KV pool across all devices used by the topology.
    pub total_kv_pool_bytes: u64,
    /// *Usable* KV capacity (bottleneck-stage-limited; prefill-only pools
    /// excluded) — Fig. 11's "cache space". See
    /// [`crate::memory::usable_kv_bytes`].
    pub usable_kv_bytes: u64,
    /// Recompute preemptions executed.
    pub preemptions: u64,
    /// Cache migrations executed (scatter / handoff / re-dispatch).
    pub migrations: u64,
    /// Bytes moved by migrations.
    pub migrated_bytes: f64,
    /// One record per executed cluster-change event (empty without churn).
    pub replans: Vec<crate::churn::ReplanRecord>,
    /// Context tokens whose KV was destroyed by churn and had to be
    /// re-prefilled (the "lost work" of preemptions).
    pub lost_tokens: u64,
    /// Recompute preemptions forced by cluster churn (subset of
    /// `preemptions`).
    pub churn_evictions: u64,
}

impl RunReport {
    /// Normalized latencies of all completed requests.
    pub fn normalized_latencies(&self) -> Vec<f64> {
        self.completed
            .iter()
            .map(|c| c.normalized_latency())
            .collect()
    }

    /// Mean normalized latency (s/token); +inf when nothing completed —
    /// plot-friendly for saturated points.
    pub fn mean_normalized_latency(&self) -> f64 {
        let v = self.normalized_latencies();
        if v.is_empty() {
            f64::INFINITY
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// TTFT values.
    pub fn ttfts(&self) -> Vec<f64> {
        self.completed.iter().map(|c| c.ttft()).collect()
    }

    /// TPOT values (requests with ≥ 2 output tokens).
    pub fn tpots(&self) -> Vec<f64> {
        self.completed
            .iter()
            .filter(|c| c.output_len > 1)
            .map(|c| c.tpot())
            .collect()
    }

    /// P99 normalized latency (s/token) — the churn scenarios' headline
    /// tail metric; +inf when nothing completed.
    pub fn p99_normalized_latency(&self) -> f64 {
        percentile(&self.normalized_latencies(), 99.0).unwrap_or(f64::INFINITY)
    }

    /// Total simulated seconds spent re-planning across all cluster
    /// events.
    pub fn total_replan_latency(&self) -> f64 {
        self.replans.iter().map(|r| r.replan_latency).sum()
    }

    /// Bit-stable fingerprint of the run, for determinism assertions:
    /// same seed + same scenario ⇒ identical digest. Folds every
    /// completed request's exact times (via `f64::to_bits`), the churn
    /// records, and the headline counters into an FNV-1a hash.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        };
        fold(self.completed.len() as u64);
        for c in &self.completed {
            fold(c.id.0);
            fold(c.arrival.to_bits());
            fold(c.first_token.to_bits());
            fold(c.completion.to_bits());
            fold(c.preemptions as u64);
            fold(c.redispatches as u64);
        }
        fold(self.unfinished as u64);
        fold(self.preemptions);
        fold(self.migrations);
        fold(self.migrated_bytes.to_bits());
        fold(self.lost_tokens);
        fold(self.churn_evictions);
        fold(self.replans.len() as u64);
        for r in &self.replans {
            fold(r.time.to_bits());
            fold(r.event.len() as u64);
            fold(r.replan_latency.to_bits());
            fold(r.evicted as u64);
            fold(r.lost_tokens);
        }
        h
    }

    /// P95 TTFT.
    pub fn p95_ttft(&self) -> f64 {
        percentile(&self.ttfts(), 95.0).unwrap_or(f64::INFINITY)
    }

    /// P95 TPOT.
    pub fn p95_tpot(&self) -> f64 {
        percentile(&self.tpots(), 95.0).unwrap_or(f64::INFINITY)
    }

    /// P95 of the per-iteration MLP latency contribution.
    pub fn p95_mlp(&self) -> f64 {
        let v: Vec<f64> = self.module_samples.iter().map(|s| s.mlp).collect();
        percentile(&v, 95.0).unwrap_or(0.0)
    }

    /// P95 of the per-iteration Attention latency contribution.
    pub fn p95_attn(&self) -> f64 {
        let v: Vec<f64> = self.module_samples.iter().map(|s| s.attn).collect();
        percentile(&v, 95.0).unwrap_or(0.0)
    }

    /// Completed requests per second of simulated time.
    pub fn throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.completed.len() as f64 / self.duration
        }
    }

    /// Output-token throughput (tokens/s).
    pub fn token_throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            return 0.0;
        }
        let tokens: u64 = self.completed.iter().map(|c| c.output_len as u64).sum();
        tokens as f64 / self.duration
    }

    /// Summary of normalized latency.
    pub fn latency_summary(&self) -> Summary {
        Summary::of(&self.normalized_latencies())
    }

    /// Fraction of issued requests that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.completed.len() + self.unfinished;
        if total == 0 {
            1.0
        } else {
            self.completed.len() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, first: f64, done: f64, out: u32) -> CompletedRequest {
        CompletedRequest {
            id: RequestId(0),
            arrival,
            first_token: first,
            completion: done,
            input_len: 100,
            output_len: out,
            preemptions: 0,
            redispatches: 0,
        }
    }

    #[test]
    fn per_request_metrics() {
        let c = req(0.0, 2.0, 11.0, 10);
        assert_eq!(c.ttft(), 2.0);
        assert_eq!(c.tpot(), 1.0);
        assert_eq!(c.normalized_latency(), 1.1);
        // Single-token output: TPOT degenerates to 0.
        assert_eq!(req(0.0, 1.0, 1.0, 1).tpot(), 0.0);
    }

    fn empty_report() -> RunReport {
        RunReport {
            policy: "test".into(),
            completed: vec![],
            unfinished: 0,
            module_samples: vec![],
            trace: vec![],
            duration: 10.0,
            total_kv_pool_bytes: 0,
            usable_kv_bytes: 0,
            preemptions: 0,
            migrations: 0,
            migrated_bytes: 0.0,
            replans: vec![],
            lost_tokens: 0,
            churn_evictions: 0,
        }
    }

    #[test]
    fn empty_report_is_safe() {
        let r = empty_report();
        assert!(r.mean_normalized_latency().is_infinite());
        assert!(r.p95_ttft().is_infinite());
        assert_eq!(r.p95_mlp(), 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.completion_rate(), 1.0);
    }

    #[test]
    fn aggregates() {
        let mut r = empty_report();
        r.completed = vec![
            req(0.0, 1.0, 5.0, 4),
            req(1.0, 2.0, 8.0, 7),
            req(2.0, 4.0, 6.0, 2),
        ];
        r.unfinished = 1;
        assert_eq!(r.ttfts(), vec![1.0, 1.0, 2.0]);
        assert!((r.throughput() - 0.3).abs() < 1e-12);
        assert_eq!(r.token_throughput(), 1.3);
        assert!((r.completion_rate() - 0.75).abs() < 1e-12);
        assert!(r.mean_normalized_latency() > 0.0);
        r.module_samples = vec![
            ModuleSample {
                time: 0.0,
                mlp: 0.010,
                attn: 0.002,
            },
            ModuleSample {
                time: 1.0,
                mlp: 0.020,
                attn: 0.004,
            },
        ];
        assert!(r.p95_mlp() > 0.019 && r.p95_mlp() <= 0.020);
        assert!(r.p95_attn() > 0.0);
    }
}
