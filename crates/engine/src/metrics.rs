//! Metric collection and reporting.
//!
//! All figures of the paper's evaluation reduce to quantities defined
//! here: normalized end-to-end latency (s/token, Figs. 8–10), P95
//! TTFT/TPOT (Fig. 12), per-module latency contributions (Fig. 13, the
//! max-stage × stage-count metric), KV-pool totals (Fig. 11) and resource
//! time series (Fig. 14).

use hetis_cluster::{DeviceId, GpuType};
use hetis_sim::{percentile, Summary};
use hetis_workload::{RequestId, SloClass, TenantId};

/// Metrics of one completed request.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// Request id.
    pub id: RequestId,
    /// Arrival time.
    pub arrival: f64,
    /// Time the first output token appeared (prefill completion).
    pub first_token: f64,
    /// Completion time (last token).
    pub completion: f64,
    /// Prompt length.
    pub input_len: u32,
    /// Output length.
    pub output_len: u32,
    /// Recompute preemptions suffered.
    pub preemptions: u32,
    /// Re-dispatches applied.
    pub redispatches: u32,
    /// SLO class the request is graded against.
    pub class: SloClass,
    /// Issuing tenant.
    pub tenant: TenantId,
}

impl CompletedRequest {
    /// Time to first token: queueing + prefill.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// Mean time per output token after the first.
    pub fn tpot(&self) -> f64 {
        if self.output_len <= 1 {
            0.0
        } else {
            (self.completion - self.first_token) / (self.output_len - 1) as f64
        }
    }

    /// End-to-end latency normalized by output length (the Figs. 8–10
    /// y-axis, s/token).
    pub fn normalized_latency(&self) -> f64 {
        (self.completion - self.arrival) / self.output_len as f64
    }

    /// True when the request met its class's TTFT and TPOT targets.
    pub fn slo_met(&self) -> bool {
        self.class.target().met(self.ttft(), self.tpot())
    }
}

/// Per-SLO-class aggregate of one run.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// The class.
    pub class: SloClass,
    /// Completed requests of this class.
    pub completed: usize,
    /// Completions that met both TTFT and TPOT targets.
    pub slo_met: usize,
    /// Output tokens of SLO-meeting completions (the goodput numerator).
    pub goodput_tokens: u64,
    /// P99 TTFT (+inf when nothing completed).
    pub p99_ttft: f64,
    /// P95 TTFT (+inf when nothing completed).
    pub p95_ttft: f64,
    /// P95 TPOT (+inf when nothing with ≥ 2 output tokens completed).
    pub p95_tpot: f64,
}

impl ClassStats {
    /// Fraction of this class's completions that met the SLO (1.0 when
    /// nothing completed, so empty classes read as unharmed).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

/// One decode iteration's per-module latency contribution:
/// max stage time × number of stages (the Fig. 13 definition, which
/// charges pipeline bubbles to the slowest stage).
#[derive(Debug, Clone, Copy)]
pub struct ModuleSample {
    /// Simulated time of the iteration.
    pub time: f64,
    /// MLP contribution (s).
    pub mlp: f64,
    /// Attention contribution (s).
    pub attn: f64,
}

/// A point of the per-device resource time series (Fig. 14).
#[derive(Debug, Clone)]
pub struct TraceSample {
    /// Sample time.
    pub time: f64,
    /// Per device: (device, cache-pool utilization in `[0,1]`, resident
    /// query heads per layer).
    pub devices: Vec<(DeviceId, f64, u64)>,
}

/// Dollar accounting of one run under a spot-price trace and an
/// acquisition policy (see `hetis-elastic`'s cost meter, which produces
/// these). Billing replays the churn schedule against the price trace —
/// it never perturbs the simulation, so two runs differing only in
/// acquisition policy have identical serving behavior and SLO attainment,
/// and [`RunReport::digest`] folds this block only when it is attached.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Dollars billed for intervals acquired on-demand (full rate).
    pub on_demand_dollars: f64,
    /// Dollars billed for intervals acquired on the spot market (rate ×
    /// integrated price multiplier).
    pub spot_dollars: f64,
    /// Dollars per GPU class, in cluster device order, classes with no
    /// billed time omitted.
    pub per_gpu_dollars: Vec<(GpuType, f64)>,
    /// Acquisitions decided as spot (initial fleet + churn replacements).
    pub spot_acquisitions: u64,
    /// Acquisitions decided as on-demand.
    pub on_demand_acquisitions: u64,
    /// Occupancy intervals ended by churn (preemption revocations and
    /// failures) rather than by the end of the run.
    pub revocations: u64,
    /// Total billed device-seconds across all intervals.
    pub billed_device_s: f64,
    /// Output tokens of SLO-meeting completions (the goodput numerator —
    /// matches [`ClassStats::goodput_tokens`] summed over classes).
    pub in_slo_tokens: u64,
    /// The headline economics metric: total dollars per in-SLO output
    /// token (+inf when the run served nothing within SLO).
    pub cost_per_in_slo_token: f64,
}

impl CostReport {
    /// Total dollars billed (spot + on-demand).
    pub fn total_dollars(&self) -> f64 {
        self.on_demand_dollars + self.spot_dollars
    }
}

/// Stable small integer code of a GPU class, for digest folding.
fn gpu_code(gpu: GpuType) -> u64 {
    match gpu {
        GpuType::A100 => 0,
        GpuType::Rtx3090 => 1,
        GpuType::P100 => 2,
        GpuType::Custom(i) => 100 + i as u64,
    }
}

/// Full output of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Policy name ("hetis", "hexgen", "splitwise", …).
    pub policy: String,
    /// Per-request metrics for completed requests.
    pub completed: Vec<CompletedRequest>,
    /// Requests still unfinished at simulation end.
    pub unfinished: usize,
    /// Per-decode-iteration module samples.
    pub module_samples: Vec<ModuleSample>,
    /// Resource time series.
    pub trace: Vec<TraceSample>,
    /// Simulated makespan (time of the last event).
    pub duration: f64,
    /// Total raw KV pool across all devices used by the topology.
    pub total_kv_pool_bytes: u64,
    /// *Usable* KV capacity (bottleneck-stage-limited; prefill-only pools
    /// excluded) — Fig. 11's "cache space". See
    /// [`crate::memory::usable_kv_bytes`].
    pub usable_kv_bytes: u64,
    /// Recompute preemptions executed.
    pub preemptions: u64,
    /// Cache migrations executed (scatter / handoff / re-dispatch).
    pub migrations: u64,
    /// Bytes moved by migrations.
    pub migrated_bytes: f64,
    /// One record per executed cluster-change event (empty without churn).
    pub replans: Vec<crate::churn::ReplanRecord>,
    /// Context tokens whose KV was destroyed by churn and had to be
    /// re-prefilled (the "lost work" of preemptions).
    pub lost_tokens: u64,
    /// Recompute preemptions forced by cluster churn (subset of
    /// `preemptions`).
    pub churn_evictions: u64,
    /// Total prompt tokens processed by prefill iterations (each chunk
    /// counted once). Chunking must conserve this against the atomic
    /// engine on preemption-free runs.
    pub prefill_tokens: u64,
    /// Number of prefill iterations executed (atomic prefills count 1;
    /// a chunked prompt counts once per chunk).
    pub prefill_iterations: u64,
    /// Largest token count of any single prefill iteration — the
    /// chunked-prefill budget invariant: with `prefill_chunk_tokens ≤
    /// max_batch_tokens` this never exceeds `max_batch_tokens`.
    pub max_prefill_iter_tokens: u64,
    /// Discrete events the engine processed (arrivals, microbatch
    /// completions, migrations, samples, churn). A throughput profile
    /// metric — deliberately *not* folded into [`RunReport::digest`],
    /// which pins serving behavior only: event counts shift with
    /// engine-internal mechanics (e.g. sampling cadence) without any
    /// behavioral meaning.
    pub events_processed: u64,
    /// Peak KV bytes reserved across all devices, observed at event
    /// boundaries. Under atomic admission this includes every admitted
    /// prompt's full KV; under incremental growth it tracks only the
    /// chunks reserved so far — the headline "fine-grained memory" win.
    /// A memory-profile metric, not folded into [`RunReport::digest`]
    /// (same policy as `events_processed`: the digest pins the serving
    /// schedule, and the schedule already determines this value).
    pub peak_kv_reserved_bytes: u64,
    /// Microbatch iterations that fused a prefill chunk with a non-empty
    /// decode batch (0 unless `EngineConfig::fused_microbatches`). A
    /// mechanics counter, not digested.
    pub fused_iterations: u64,
    /// Successful incremental KV reservation growths (one per chunk that
    /// extended a resident reservation). Not digested.
    pub kv_growths: u64,
    /// Reservation growths that failed after the victim loop and
    /// recompute-preempted the growing request (subset of `preemptions`).
    /// Not digested (the eviction itself is visible in the digested
    /// per-request preemption counts).
    pub kv_grow_failures: u64,
    /// Admission-time prefix-cache probes (waiting session turns whose
    /// predecessor key was looked up; 0 unless
    /// `EngineConfig::prefix_reuse`). A mechanics counter, not digested
    /// — but note `prefill_tokens` IS behavior-visible: reuse-on runs
    /// prefill only the cold tokens, so they pin their own digests.
    pub prefix_probes: u64,
    /// Probes whose warm prefix was consumed by a successful admission.
    /// Not digested.
    pub prefix_hits: u64,
    /// Prompt tokens adopted warm across all hits — compute the engine
    /// never spent re-prefilling replayed context. Not digested.
    pub prefix_hit_tokens: u64,
    /// KV bytes adopted warm across all hits — reservation traffic the
    /// prefill never wrote. Not digested.
    pub shared_kv_bytes: u64,
    /// Telemetry events overwritten on ring wrap (0 when telemetry is
    /// disabled or the ring never filled). An observability-mechanics
    /// counter, not digested (same policy as `events_processed`).
    pub telemetry_dropped: u64,
    /// End-of-run telemetry snapshot (`None` when telemetry is
    /// disabled). Not digested: the digest pins serving behavior, and
    /// the snapshot is derived from the same completions it already
    /// folds.
    pub telemetry: Option<hetis_telemetry::TelemetrySnapshot>,
    /// Every closed-loop control action applied, tick-stamped in event
    /// order (empty when `EngineConfig::closed_loop` is `None` — and
    /// when the controller stayed quiet for the whole run). Folded into
    /// [`RunReport::digest`] *only when non-empty*: pre-closed-loop
    /// digests stay bit-identical, a quiet closed-loop run digests
    /// identically to its open-loop twin, and two equal digests imply
    /// byte-identical actuation sequences.
    pub control_log: Vec<crate::control::ControlRecord>,
    /// Dollar accounting under a price trace + acquisition policy
    /// (`None` unless a cost meter attached one after the run). Folded
    /// into [`RunReport::digest`] *only when present* — the same
    /// only-when-enabled neutrality contract as `control_log` — so every
    /// costless pin stays bit-identical while costed runs pin their
    /// acquisition economics too.
    pub cost: Option<CostReport>,
}

impl RunReport {
    /// Normalized latencies of all completed requests.
    pub fn normalized_latencies(&self) -> Vec<f64> {
        self.completed
            .iter()
            .map(|c| c.normalized_latency())
            .collect()
    }

    /// Mean normalized latency (s/token); +inf when nothing completed —
    /// plot-friendly for saturated points.
    pub fn mean_normalized_latency(&self) -> f64 {
        let v = self.normalized_latencies();
        if v.is_empty() {
            f64::INFINITY
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// TTFT values.
    pub fn ttfts(&self) -> Vec<f64> {
        self.completed.iter().map(|c| c.ttft()).collect()
    }

    /// TPOT values (requests with ≥ 2 output tokens).
    pub fn tpots(&self) -> Vec<f64> {
        self.completed
            .iter()
            .filter(|c| c.output_len > 1)
            .map(|c| c.tpot())
            .collect()
    }

    /// P99 normalized latency (s/token) — the churn scenarios' headline
    /// tail metric; +inf when nothing completed.
    pub fn p99_normalized_latency(&self) -> f64 {
        percentile(&self.normalized_latencies(), 99.0).unwrap_or(f64::INFINITY)
    }

    /// Total simulated seconds spent re-planning across all cluster
    /// events.
    pub fn total_replan_latency(&self) -> f64 {
        self.replans.iter().map(|r| r.replan_latency).sum()
    }

    /// Fraction of prefix probes whose warm prefix was consumed by an
    /// admission (0 when nothing probed — reuse off or no sessions).
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.prefix_probes == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / self.prefix_probes as f64
        }
    }

    /// Completions of one SLO class.
    pub fn completed_of_class(&self, class: SloClass) -> Vec<&CompletedRequest> {
        self.completed.iter().filter(|c| c.class == class).collect()
    }

    /// Per-class aggregates, in [`SloClass::ALL`] order, classes with no
    /// completions omitted.
    pub fn class_stats(&self) -> Vec<ClassStats> {
        SloClass::ALL
            .iter()
            .filter_map(|&class| self.stats_of_class(class))
            .collect()
    }

    /// Stats of one class (None when it completed nothing). Aggregates
    /// only this class's completions — cheaper than filtering the full
    /// [`Self::class_stats`] table.
    pub fn stats_of_class(&self, class: SloClass) -> Option<ClassStats> {
        let reqs = self.completed_of_class(class);
        if reqs.is_empty() {
            return None;
        }
        let ttfts: Vec<f64> = reqs.iter().map(|c| c.ttft()).collect();
        let tpots: Vec<f64> = reqs
            .iter()
            .filter(|c| c.output_len > 1)
            .map(|c| c.tpot())
            .collect();
        let met: Vec<&&CompletedRequest> = reqs.iter().filter(|c| c.slo_met()).collect();
        Some(ClassStats {
            class,
            completed: reqs.len(),
            slo_met: met.len(),
            goodput_tokens: met.iter().map(|c| c.output_len as u64).sum(),
            p99_ttft: percentile(&ttfts, 99.0).unwrap_or(f64::INFINITY),
            p95_ttft: percentile(&ttfts, 95.0).unwrap_or(f64::INFINITY),
            p95_tpot: percentile(&tpots, 95.0).unwrap_or(f64::INFINITY),
        })
    }

    /// P99 TTFT of one class (+inf when it completed nothing).
    pub fn p99_ttft_of_class(&self, class: SloClass) -> f64 {
        self.stats_of_class(class)
            .map(|s| s.p99_ttft)
            .unwrap_or(f64::INFINITY)
    }

    /// Goodput: output tokens served *within SLO* per simulated second.
    /// For best-effort-only traces this equals [`Self::token_throughput`].
    pub fn goodput(&self) -> f64 {
        if self.duration <= 0.0 {
            return 0.0;
        }
        let tokens: u64 = self
            .completed
            .iter()
            .filter(|c| c.slo_met())
            .map(|c| c.output_len as u64)
            .sum();
        tokens as f64 / self.duration
    }

    /// Overall SLO attainment across every completion (1.0 when nothing
    /// completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed.is_empty() {
            return 1.0;
        }
        self.completed.iter().filter(|c| c.slo_met()).count() as f64 / self.completed.len() as f64
    }

    /// Bit-stable fingerprint of the run, for determinism assertions:
    /// same seed + same scenario ⇒ identical digest. Folds every
    /// completed request's exact times (via `f64::to_bits`), the churn
    /// records, and the headline counters into an FNV-1a hash.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        };
        fold(self.completed.len() as u64);
        for c in &self.completed {
            fold(c.id.0);
            fold(c.arrival.to_bits());
            fold(c.first_token.to_bits());
            fold(c.completion.to_bits());
            fold(c.preemptions as u64);
            fold(c.redispatches as u64);
            fold(c.class.index() as u64);
            fold(c.tenant.0 as u64);
        }
        fold(self.unfinished as u64);
        fold(self.preemptions);
        fold(self.migrations);
        fold(self.migrated_bytes.to_bits());
        fold(self.lost_tokens);
        fold(self.churn_evictions);
        fold(self.prefill_tokens);
        fold(self.prefill_iterations);
        fold(self.max_prefill_iter_tokens);
        // Per-class SLO metrics. Strictly these are derived from the
        // per-completion folds above; folding the full derived table too
        // makes the guarantee self-evident — a digest match means
        // identical attainment/goodput/percentile tables even if the
        // derivation changes.
        for s in self.class_stats() {
            fold(s.class.index() as u64);
            fold(s.completed as u64);
            fold(s.slo_met as u64);
            fold(s.goodput_tokens);
            fold(s.p99_ttft.to_bits());
            fold(s.p95_ttft.to_bits());
            fold(s.p95_tpot.to_bits());
        }
        fold(self.replans.len() as u64);
        for r in &self.replans {
            fold(r.time.to_bits());
            fold(r.event.len() as u64);
            fold(r.replan_latency.to_bits());
            fold(r.evicted as u64);
            fold(r.lost_tokens);
        }
        // Closed-loop actuation history — folded only when non-empty so
        // every pre-closed-loop pin stays bit-identical and a quiet
        // controller digests exactly like an open loop, while equal
        // digests of actuating runs imply identical action sequences.
        if !self.control_log.is_empty() {
            fold(self.control_log.len() as u64);
            for r in &self.control_log {
                fold(r.time.to_bits());
                let [a, b] = r.action.digest_words();
                fold(a);
                fold(b);
            }
        }
        // Cost accounting — folded only when a cost meter attached it, so
        // uncosted pins are untouched and equal digests of costed runs
        // imply identical dollars, acquisition decisions, and the
        // cost-per-in-SLO-token headline.
        if let Some(c) = &self.cost {
            fold(c.on_demand_dollars.to_bits());
            fold(c.spot_dollars.to_bits());
            fold(c.per_gpu_dollars.len() as u64);
            for &(gpu, d) in &c.per_gpu_dollars {
                fold(gpu_code(gpu));
                fold(d.to_bits());
            }
            fold(c.spot_acquisitions);
            fold(c.on_demand_acquisitions);
            fold(c.revocations);
            fold(c.billed_device_s.to_bits());
            fold(c.in_slo_tokens);
            fold(c.cost_per_in_slo_token.to_bits());
        }
        h
    }

    /// Dollars per in-SLO output token (+inf when no cost accounting is
    /// attached — an uncosted run has no defined price).
    pub fn cost_per_in_slo_token(&self) -> f64 {
        self.cost
            .as_ref()
            .map(|c| c.cost_per_in_slo_token)
            .unwrap_or(f64::INFINITY)
    }

    /// Total dollars billed (0 when no cost accounting is attached).
    pub fn total_dollars(&self) -> f64 {
        self.cost.as_ref().map(|c| c.total_dollars()).unwrap_or(0.0)
    }

    /// Closed-loop control actions of one kind (see
    /// [`crate::control::ControlAction::kind`]).
    pub fn control_actions_of_kind(&self, kind: &str) -> usize {
        self.control_log
            .iter()
            .filter(|r| r.action.kind() == kind)
            .count()
    }

    /// Scale-out proposals the closed loop emitted.
    pub fn scale_out_proposals(&self) -> usize {
        self.control_actions_of_kind("scale-out")
    }

    /// Scale-in proposals the closed loop emitted.
    pub fn scale_in_proposals(&self) -> usize {
        self.control_actions_of_kind("scale-in")
    }

    /// Times the closed loop engaged the admission throttle.
    pub fn throttle_engagements(&self) -> usize {
        self.control_actions_of_kind("throttle-on")
    }

    /// Times the closed loop engaged chunk pacing.
    pub fn pace_engagements(&self) -> usize {
        self.control_actions_of_kind("pace-on")
    }

    /// P95 TTFT.
    pub fn p95_ttft(&self) -> f64 {
        percentile(&self.ttfts(), 95.0).unwrap_or(f64::INFINITY)
    }

    /// P95 TPOT.
    pub fn p95_tpot(&self) -> f64 {
        percentile(&self.tpots(), 95.0).unwrap_or(f64::INFINITY)
    }

    /// P95 of the per-iteration MLP latency contribution.
    pub fn p95_mlp(&self) -> f64 {
        let v: Vec<f64> = self.module_samples.iter().map(|s| s.mlp).collect();
        percentile(&v, 95.0).unwrap_or(0.0)
    }

    /// P95 of the per-iteration Attention latency contribution.
    pub fn p95_attn(&self) -> f64 {
        let v: Vec<f64> = self.module_samples.iter().map(|s| s.attn).collect();
        percentile(&v, 95.0).unwrap_or(0.0)
    }

    /// Completed requests per second of simulated time.
    pub fn throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.completed.len() as f64 / self.duration
        }
    }

    /// Output-token throughput (tokens/s).
    pub fn token_throughput(&self) -> f64 {
        if self.duration <= 0.0 {
            return 0.0;
        }
        let tokens: u64 = self.completed.iter().map(|c| c.output_len as u64).sum();
        tokens as f64 / self.duration
    }

    /// Summary of normalized latency.
    pub fn latency_summary(&self) -> Summary {
        Summary::of(&self.normalized_latencies())
    }

    /// Fraction of issued requests that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.completed.len() + self.unfinished;
        if total == 0 {
            1.0
        } else {
            self.completed.len() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, first: f64, done: f64, out: u32) -> CompletedRequest {
        CompletedRequest {
            id: RequestId(0),
            arrival,
            first_token: first,
            completion: done,
            input_len: 100,
            output_len: out,
            preemptions: 0,
            redispatches: 0,
            class: SloClass::BestEffort,
            tenant: TenantId(0),
        }
    }

    #[test]
    fn per_request_metrics() {
        let c = req(0.0, 2.0, 11.0, 10);
        assert_eq!(c.ttft(), 2.0);
        assert_eq!(c.tpot(), 1.0);
        assert_eq!(c.normalized_latency(), 1.1);
        // Single-token output: TPOT degenerates to 0.
        assert_eq!(req(0.0, 1.0, 1.0, 1).tpot(), 0.0);
    }

    fn empty_report() -> RunReport {
        RunReport {
            policy: "test".into(),
            completed: vec![],
            unfinished: 0,
            module_samples: vec![],
            trace: vec![],
            duration: 10.0,
            total_kv_pool_bytes: 0,
            usable_kv_bytes: 0,
            preemptions: 0,
            migrations: 0,
            migrated_bytes: 0.0,
            replans: vec![],
            lost_tokens: 0,
            churn_evictions: 0,
            prefill_tokens: 0,
            prefill_iterations: 0,
            max_prefill_iter_tokens: 0,
            events_processed: 0,
            peak_kv_reserved_bytes: 0,
            fused_iterations: 0,
            kv_growths: 0,
            kv_grow_failures: 0,
            prefix_probes: 0,
            prefix_hits: 0,
            prefix_hit_tokens: 0,
            shared_kv_bytes: 0,
            telemetry_dropped: 0,
            telemetry: None,
            control_log: vec![],
            cost: None,
        }
    }

    #[test]
    fn empty_report_is_safe() {
        let r = empty_report();
        assert!(r.mean_normalized_latency().is_infinite());
        assert!(r.p95_ttft().is_infinite());
        assert_eq!(r.p95_mlp(), 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.completion_rate(), 1.0);
        assert_eq!(r.scale_out_proposals(), 0);
    }

    #[test]
    fn control_log_folds_only_when_non_empty() {
        use crate::control::{ControlAction, ControlRecord};
        let base = empty_report();
        let pinned = base.digest();
        // An empty log is the open-loop / quiet-controller case: digest
        // unchanged.
        assert!(base.control_log.is_empty());
        assert_eq!(base.digest(), pinned);
        let mut acted = empty_report();
        acted.control_log.push(ControlRecord {
            time: 12.0,
            action: ControlAction::ThrottleOn { attainment: 0.8 },
        });
        assert_ne!(acted.digest(), pinned, "actuations must be digested");
        assert_eq!(acted.throttle_engagements(), 1);
        assert_eq!(acted.control_actions_of_kind("pace-on"), 0);
        // Different action payload ⇒ different digest.
        let mut other = empty_report();
        other.control_log.push(ControlRecord {
            time: 12.0,
            action: ControlAction::ThrottleOn { attainment: 0.5 },
        });
        assert_ne!(other.digest(), acted.digest());
    }

    #[test]
    fn cost_folds_only_when_attached() {
        let base = empty_report();
        let pinned = base.digest();
        assert!(base.cost.is_none(), "uncosted by default");
        assert!(base.cost_per_in_slo_token().is_infinite());
        assert_eq!(base.total_dollars(), 0.0);
        let mut billed = empty_report();
        billed.cost = Some(CostReport {
            on_demand_dollars: 10.0,
            spot_dollars: 2.5,
            per_gpu_dollars: vec![(GpuType::A100, 9.0), (GpuType::P100, 3.5)],
            spot_acquisitions: 4,
            on_demand_acquisitions: 12,
            revocations: 4,
            billed_device_s: 720.0,
            in_slo_tokens: 50_000,
            cost_per_in_slo_token: 12.5 / 50_000.0,
        });
        assert_ne!(billed.digest(), pinned, "attached costs must pin");
        assert!((billed.total_dollars() - 12.5).abs() < 1e-12);
        // A different acquisition split ⇒ a different digest.
        let mut other = billed.clone();
        if let Some(c) = &mut other.cost {
            c.spot_acquisitions = 5;
            c.on_demand_acquisitions = 11;
        }
        assert_ne!(other.digest(), billed.digest());
    }

    #[test]
    fn aggregates() {
        let mut r = empty_report();
        r.completed = vec![
            req(0.0, 1.0, 5.0, 4),
            req(1.0, 2.0, 8.0, 7),
            req(2.0, 4.0, 6.0, 2),
        ];
        r.unfinished = 1;
        assert_eq!(r.ttfts(), vec![1.0, 1.0, 2.0]);
        assert!((r.throughput() - 0.3).abs() < 1e-12);
        assert_eq!(r.token_throughput(), 1.3);
        assert!((r.completion_rate() - 0.75).abs() < 1e-12);
        assert!(r.mean_normalized_latency() > 0.0);
        r.module_samples = vec![
            ModuleSample {
                time: 0.0,
                mlp: 0.010,
                attn: 0.002,
            },
            ModuleSample {
                time: 1.0,
                mlp: 0.020,
                attn: 0.004,
            },
        ];
        assert!(r.p95_mlp() > 0.019 && r.p95_mlp() <= 0.020);
        assert!(r.p95_attn() > 0.0);
    }

    #[test]
    fn class_stats_split_and_grade() {
        let mut r = empty_report();
        // Interactive: one meets the SLO (ttft 0.5 ≤ 1.0, tpot 0.1 ≤ 0.2),
        // one misses on TTFT.
        let mut fast = req(0.0, 0.5, 1.4, 10);
        fast.class = SloClass::Interactive;
        let mut late = req(0.0, 3.0, 4.0, 11);
        late.class = SloClass::Interactive;
        // Batch: comfortably within its loose targets.
        let mut batch = req(0.0, 10.0, 20.0, 40);
        batch.class = SloClass::Batch;
        batch.tenant = TenantId(1);
        r.completed = vec![fast, late, batch];

        assert!(r.completed[0].slo_met());
        assert!(!r.completed[1].slo_met());
        assert!(r.completed[2].slo_met());

        let stats = r.class_stats();
        assert_eq!(stats.len(), 2, "two classes present");
        let i = r.stats_of_class(SloClass::Interactive).unwrap();
        assert_eq!((i.completed, i.slo_met, i.goodput_tokens), (2, 1, 10));
        assert!((i.attainment() - 0.5).abs() < 1e-12);
        let b = r.stats_of_class(SloClass::Batch).unwrap();
        assert_eq!((b.completed, b.slo_met, b.goodput_tokens), (1, 1, 40));
        assert!(r.stats_of_class(SloClass::BestEffort).is_none());

        // Goodput counts only SLO-meeting tokens: (10 + 40) / 10 s.
        assert!((r.goodput() - 5.0).abs() < 1e-12);
        assert!((r.slo_attainment() - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.p99_ttft_of_class(SloClass::Interactive) > 2.9);
        assert!(r.p99_ttft_of_class(SloClass::BestEffort).is_infinite());
    }

    #[test]
    fn digest_covers_class_metrics() {
        let mut a = empty_report();
        a.completed = vec![req(0.0, 1.0, 5.0, 4)];
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        // Same times, different class ⇒ different digest.
        b.completed[0].class = SloClass::Interactive;
        assert_ne!(a.digest(), b.digest());
        // Same times, different tenant ⇒ different digest.
        let mut c = a.clone();
        c.completed[0].tenant = TenantId(7);
        assert_ne!(a.digest(), c.digest());
        // Prefill counters are covered too.
        let mut d = a.clone();
        d.prefill_tokens = 1;
        assert_ne!(a.digest(), d.digest());
    }
}
