//! Cluster-change events and device health — the engine half of the
//! elasticity subsystem.
//!
//! Real heterogeneous fleets are churn-heavy: spot preemptions, outright
//! failures, thermal throttling, and node joins all happen while requests
//! are in flight. The engine executes a deterministic schedule of
//! [`ClusterEvent`]s (produced by `hetis-elastic`'s seeded `ChurnProcess`)
//! and lets the plugged-in policy react through
//! [`crate::policy::Policy::on_cluster_change`]: re-plan the topology,
//! drain KV off devices with a preemption notice, or do nothing (the
//! static baselines).
//!
//! Invariants the engine enforces regardless of policy:
//!
//! * a dead device never receives new KV allocations or migrations;
//! * a dead device is pruned from every stage's attention-worker list;
//! * an instance whose primary TP group lost a device is marked
//!   [`crate::topology::InstanceRole::Down`] — its requests are re-routed;
//! * requests whose KV lived (even partially) on a dead device are
//!   recompute-preempted, with the lost context counted in
//!   [`crate::metrics::RunReport::lost_tokens`].

use crate::topology::Topology;
use hetis_cluster::DeviceId;

/// What happened to a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterEventKind {
    /// Immediate failure: the device and all KV on it are gone now.
    Fail,
    /// Spot-style preemption notice: the device keeps serving for
    /// `notice` seconds, then dies. A re-planning policy can drain KV off
    /// it in that window.
    PreemptNotice {
        /// Seconds between notice and revocation.
        notice: f64,
    },
    /// The device (re)joins the cluster, empty.
    Join,
    /// The device slows down by `factor` (≥ 1, multiplies its stage
    /// times) — thermal throttling, a noisy neighbor.
    Slowdown {
        /// Time-dilation factor (1.0 = nominal).
        factor: f64,
    },
    /// A prior slowdown ends; the device runs at nominal speed again.
    Restore,
}

/// One scheduled cluster change.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEvent {
    /// Simulated time at which the change takes effect.
    pub time: f64,
    /// The affected device.
    pub device: DeviceId,
    /// What happens.
    pub kind: ClusterEventKind,
}

impl ClusterEvent {
    /// Compact label for reports ("fail(dev3)", "preempt(dev5,30s)"…).
    pub fn label(&self) -> String {
        match self.kind {
            ClusterEventKind::Fail => format!("fail({})", self.device),
            ClusterEventKind::PreemptNotice { notice } => {
                format!("preempt({},{:.0}s)", self.device, notice)
            }
            ClusterEventKind::Join => format!("join({})", self.device),
            ClusterEventKind::Slowdown { factor } => {
                format!("slowdown({},{:.2}x)", self.device, factor)
            }
            ClusterEventKind::Restore => format!("restore({})", self.device),
        }
    }
}

/// Health of one device as the engine sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceHealth {
    /// Serving normally; `factor` ≥ 1 dilates its stage times (1.0 =
    /// nominal).
    Alive {
        /// Slowdown factor.
        factor: f64,
    },
    /// Received a preemption notice: still serving, dies at `deadline`.
    /// No *new* KV may be placed on it. Any slowdown in effect carries
    /// over into `factor`.
    Draining {
        /// Absolute simulated time of revocation.
        deadline: f64,
        /// Slowdown factor (1.0 = nominal).
        factor: f64,
    },
    /// Gone. All KV it held is lost.
    Dead,
}

impl DeviceHealth {
    /// Nominal healthy state.
    pub const NOMINAL: DeviceHealth = DeviceHealth::Alive { factor: 1.0 };

    /// True when the device can execute work this instant.
    pub fn is_serving(&self) -> bool {
        !matches!(self, DeviceHealth::Dead)
    }

    /// True when new KV allocations may target the device.
    pub fn accepts_kv(&self) -> bool {
        matches!(self, DeviceHealth::Alive { .. })
    }

    /// Stage-time dilation factor.
    pub fn factor(&self) -> f64 {
        match self {
            DeviceHealth::Alive { factor } | DeviceHealth::Draining { factor, .. } => *factor,
            DeviceHealth::Dead => 1.0,
        }
    }
}

/// Immutable per-device health view handed to policy hooks.
#[derive(Debug, Clone)]
pub struct HealthView {
    health: Vec<DeviceHealth>,
}

impl HealthView {
    /// Builds a view (engine-internal, but public for tests/controllers).
    pub fn new(health: Vec<DeviceHealth>) -> Self {
        HealthView { health }
    }

    /// Health of a device.
    pub fn of(&self, d: DeviceId) -> DeviceHealth {
        self.health[d.index()]
    }

    /// All devices currently able to accept new KV.
    pub fn accepting(&self) -> Vec<DeviceId> {
        self.iter_ids()
            .filter(|&d| self.of(d).accepts_kv())
            .collect()
    }

    /// All devices not dead (serving, possibly draining or slowed).
    pub fn serving(&self) -> Vec<DeviceId> {
        self.iter_ids()
            .filter(|&d| self.of(d).is_serving())
            .collect()
    }

    /// All draining devices.
    pub fn draining(&self) -> Vec<DeviceId> {
        self.iter_ids()
            .filter(|&d| matches!(self.of(d), DeviceHealth::Draining { .. }))
            .collect()
    }

    fn iter_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.health.len()).map(|i| DeviceId(i as u32))
    }
}

/// What a policy wants done after a cluster change.
#[derive(Debug, Clone, Default)]
pub struct ReplanResponse {
    /// Replacement topology. Surviving instances must keep their primary
    /// stages (devices + layers) unchanged — weights cannot teleport;
    /// attention-worker lists may change freely and lost instances stay
    /// `Down`. `None` keeps the (engine-pruned) current topology.
    pub new_topology: Option<Topology>,
    /// KV drain moves (request → new placement) to run now, typically off
    /// a draining device. Executed best-effort via the engine's
    /// re-dispatch path.
    pub migrations: Vec<crate::policy::RedispatchOp>,
    /// Simulated seconds the re-planning itself takes; the engine stalls
    /// the affected pipelines for this long (the paper's search is seconds
    /// — under churn that cost is charged, not hidden).
    pub replan_latency: f64,
}

/// Record of one executed cluster change (for `RunReport`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanRecord {
    /// When the event fired.
    pub time: f64,
    /// `ClusterEvent::label()` of the event.
    pub event: String,
    /// Simulated re-planning latency charged.
    pub replan_latency: f64,
    /// Requests recompute-preempted by this event.
    pub evicted: u32,
    /// Drain migrations successfully started.
    pub migrations_started: u32,
    /// Context tokens whose KV was lost (must be re-prefilled).
    pub lost_tokens: u64,
    /// True when the policy supplied a new topology.
    pub replanned: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_predicates() {
        assert!(DeviceHealth::NOMINAL.accepts_kv());
        assert!(DeviceHealth::NOMINAL.is_serving());
        let d = DeviceHealth::Draining {
            deadline: 5.0,
            factor: 1.3,
        };
        assert!(d.is_serving() && !d.accepts_kv());
        assert!(!DeviceHealth::Dead.is_serving());
        assert_eq!(DeviceHealth::Alive { factor: 1.7 }.factor(), 1.7);
        assert_eq!(d.factor(), 1.3);
    }

    #[test]
    fn view_partitions_devices() {
        let v = HealthView::new(vec![
            DeviceHealth::NOMINAL,
            DeviceHealth::Dead,
            DeviceHealth::Draining {
                deadline: 1.0,
                factor: 1.0,
            },
            DeviceHealth::Alive { factor: 2.0 },
        ]);
        assert_eq!(v.accepting(), vec![DeviceId(0), DeviceId(3)]);
        assert_eq!(v.serving(), vec![DeviceId(0), DeviceId(2), DeviceId(3)]);
        assert_eq!(v.draining(), vec![DeviceId(2)]);
    }

    #[test]
    fn event_labels() {
        let e = ClusterEvent {
            time: 1.0,
            device: DeviceId(3),
            kind: ClusterEventKind::PreemptNotice { notice: 30.0 },
        };
        assert_eq!(e.label(), "preempt(dev3,30s)");
        assert_eq!(
            ClusterEvent {
                kind: ClusterEventKind::Fail,
                ..e.clone()
            }
            .label(),
            "fail(dev3)"
        );
    }
}
