//! The discrete-event serving engine.
//!
//! One [`Engine`] simulates a full serving deployment: arrivals enter
//! instance waiting queues, cohorts ("virtual engines", one per pipeline
//! stage) form prefill/decode microbatches under continuous batching,
//! stages execute as FIFO resources with calibrated timing, and the
//! plugged-in [`Policy`] decides placement, hand-offs, re-dispatching and
//! victims.

use crate::config::EngineConfig;
use crate::memory::KvState;
use crate::metrics::{CompletedRequest, ModuleSample, RunReport, TraceSample};
use crate::policy::{Policy, PolicyCtx, VictimAction};
use crate::request::{Phase, RunningRequest};
use crate::stage::{decode_stage_breakdown, prefill_stage_breakdown, AttnLoad, StageBreakdown};
use crate::topology::{HeadPlacement, InstanceRole, Topology};
use hetis_cluster::{AttnWork, Cluster, DeviceId, MigrationStream};
use hetis_model::ModelSpec;
use hetis_parallel::{device_weight_bytes, InstanceConfig, ParallelConfig, PrefillBatch};
use hetis_sim::{Clock, EventQueue, FifoQueue, SimTime, SplitMix64};
use hetis_workload::{RequestId, Trace};
use std::collections::HashMap;

/// Engine events.
#[derive(Debug, Clone)]
enum Event {
    /// The `i`-th trace request arrives.
    Arrival(usize),
    /// A microbatch finished its last stage.
    UbatchDone { inst: usize, cohort: usize },
    /// A KV migration (scatter / hand-off / re-dispatch) landed.
    MigrationDone { req: RequestId },
    /// Periodic resource sampling.
    Sample,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UbatchKind {
    Prefill,
    Decode,
}

#[derive(Debug, Clone)]
struct Ubatch {
    kind: UbatchKind,
    reqs: Vec<RequestId>,
}

#[derive(Debug, Clone, Default)]
struct Cohort {
    /// Decoding-phase requests owned by this cohort.
    members: Vec<RequestId>,
    in_flight: Option<Ubatch>,
}

#[derive(Debug)]
struct InstanceState {
    waiting: FifoQueue<RequestId>,
    /// Hand-offs blocked on decode-side memory (Splitwise).
    pending_handoff: FifoQueue<RequestId>,
    cohorts: Vec<Cohort>,
    stage_free_at: Vec<SimTime>,
}

/// Builds a [`PolicyCtx`] from engine fields without borrowing the whole
/// engine (keeps `self.policy` callable).
macro_rules! ctx {
    ($self:ident) => {
        PolicyCtx {
            cluster: $self.cluster,
            model: $self.model,
            now: $self.clock.now().as_secs(),
            kv: &$self.kv,
            requests: &$self.requests,
            topology: &$self.topo,
        }
    };
}

/// The serving-engine simulator. Construct with [`run`] unless a test
/// needs step-level control.
pub struct Engine<'a, P: Policy> {
    cluster: &'a Cluster,
    model: &'a ModelSpec,
    cfg: EngineConfig,
    policy: P,
    topo: Topology,
    kv: KvState,
    requests: HashMap<RequestId, RunningRequest>,
    instances: Vec<InstanceState>,
    events: EventQueue<Event>,
    clock: Clock,
    jitter: SplitMix64,
    migration: MigrationStream,
    trace_requests: Vec<hetis_workload::Request>,
    last_arrival: f64,
    // report accumulators
    completed: Vec<CompletedRequest>,
    module_samples: Vec<ModuleSample>,
    trace_samples: Vec<TraceSample>,
    preemptions: u64,
    migrations: u64,
    migrated_bytes: f64,
}

/// Runs `policy` over `trace` on `cluster`/`model`; returns the report.
pub fn run<P: Policy>(
    mut policy: P,
    cluster: &Cluster,
    model: &ModelSpec,
    cfg: EngineConfig,
    trace: &Trace,
) -> RunReport {
    let topo = policy.topology(cluster, model, &cfg);
    let mut engine = Engine::new(policy, cluster, model, cfg, topo, trace);
    engine.run_to_completion();
    engine.into_report()
}

impl<'a, P: Policy> Engine<'a, P> {
    /// Builds an engine over a fixed topology and trace.
    pub fn new(
        policy: P,
        cluster: &'a Cluster,
        model: &'a ModelSpec,
        cfg: EngineConfig,
        topo: Topology,
        trace: &Trace,
    ) -> Self {
        // Weight placement from the primary stages.
        let pcfg = ParallelConfig {
            instances: topo
                .instances
                .iter()
                .map(|i| InstanceConfig {
                    stages: i.stages.iter().map(|s| s.primary.clone()).collect(),
                })
                .collect(),
        };
        pcfg.validate(cluster, model)
            .expect("policy produced an invalid topology");
        let weights = device_weight_bytes(&pcfg, model);
        let kv = KvState::new(cluster, model, cfg.block_size, &weights)
            .expect("weights must fit the topology");

        let instances = topo
            .instances
            .iter()
            .map(|i| InstanceState {
                waiting: FifoQueue::new(),
                pending_handoff: FifoQueue::new(),
                cohorts: (0..i.depth()).map(|_| Cohort::default()).collect(),
                stage_free_at: vec![SimTime::ZERO; i.depth()],
            })
            .collect();

        let mut events = EventQueue::new();
        for (i, _) in trace.requests().iter().enumerate() {
            events.schedule(SimTime::from_secs(trace.requests()[i].arrival), Event::Arrival(i));
        }
        let last_arrival = trace.horizon();
        if cfg.trace_sample_period > 0.0 {
            events.schedule(SimTime::from_secs(cfg.trace_sample_period), Event::Sample);
        }

        Engine {
            cluster,
            model,
            jitter: SplitMix64::new(cfg.seed),
            cfg,
            policy,
            topo,
            kv,
            requests: HashMap::new(),
            instances,
            events,
            clock: Clock::new(),
            migration: MigrationStream::new(),
            trace_requests: trace.requests().to_vec(),
            last_arrival,
            completed: Vec::new(),
            module_samples: Vec::new(),
            trace_samples: Vec::new(),
            preemptions: 0,
            migrations: 0,
            migrated_bytes: 0.0,
        }
    }

    /// Drives the event loop until quiescence or drain timeout.
    pub fn run_to_completion(&mut self) {
        let deadline = self.last_arrival + self.cfg.drain_timeout;
        while let Some((at, event)) = self.events.pop() {
            if at.as_secs() > deadline {
                break;
            }
            self.clock.advance_to(at);
            match event {
                Event::Arrival(i) => self.on_arrival(i),
                Event::UbatchDone { inst, cohort } => self.on_ubatch_done(inst, cohort),
                Event::MigrationDone { req } => self.on_migration_done(req),
                Event::Sample => self.on_sample(),
            }
        }
    }

    /// Consumes the engine into its report.
    pub fn into_report(self) -> RunReport {
        let mut used: Vec<DeviceId> = self
            .topo
            .instances
            .iter()
            .flat_map(|i| i.stages.iter().flat_map(|s| s.attention_devices()))
            .collect();
        used.sort();
        used.dedup();
        let total_kv_pool_bytes = self.kv.total_pool(&used);
        let usable_kv_bytes = crate::memory::usable_kv_bytes(self.model, &self.topo, &self.kv);
        let unfinished = self
            .requests
            .values()
            .filter(|r| r.phase != Phase::Done)
            .count();
        RunReport {
            policy: self.policy.name(),
            completed: self.completed,
            unfinished,
            module_samples: self.module_samples,
            trace: self.trace_samples,
            duration: self.clock.now().as_secs(),
            total_kv_pool_bytes,
            usable_kv_bytes,
            preemptions: self.preemptions,
            migrations: self.migrations,
            migrated_bytes: self.migrated_bytes,
        }
    }

    // ------------------------------------------------------------- events

    fn on_arrival(&mut self, idx: usize) {
        let req = self.trace_requests[idx];
        let inst = self.policy.route(&req, &ctx!(self));
        assert!(inst < self.instances.len(), "routed to unknown instance");
        self.requests.insert(req.id, RunningRequest::new(req, inst));
        self.instances[inst].waiting.enqueue(req.id);
        self.try_dispatch(inst);
    }

    fn on_ubatch_done(&mut self, inst: usize, cohort: usize) {
        let now = self.clock.now().as_secs();
        let ub = self.instances[inst].cohorts[cohort]
            .in_flight
            .take()
            .expect("completion without in-flight microbatch");
        match ub.kind {
            UbatchKind::Prefill => {
                for rid in ub.reqs {
                    let r = self.requests.get_mut(&rid).expect("live request");
                    r.in_flight = false;
                    r.push_token(now);
                    if r.is_complete() {
                        self.finish(rid);
                        continue;
                    }
                    let handoff = self.policy.after_prefill(inst, rid, &ctx!(self));
                    match handoff {
                        Some(h) => self.start_handoff(rid, h.target_instance),
                        None => self.start_decoding_after_scatter(rid, inst, cohort),
                    }
                }
            }
            UbatchKind::Decode => {
                for rid in ub.reqs {
                    let r = self.requests.get_mut(&rid).expect("live request");
                    r.in_flight = false;
                    r.push_token(now);
                    if r.is_complete() {
                        self.finish(rid);
                    }
                }
            }
        }
        self.try_dispatch(inst);
    }

    fn on_migration_done(&mut self, rid: RequestId) {
        let Some(r) = self.requests.get_mut(&rid) else {
            return;
        };
        if r.phase != Phase::Migrating {
            return;
        }
        r.phase = Phase::Decoding;
        let inst = r.instance;
        self.ensure_cohort_member(inst, rid);
        self.try_dispatch(inst);
    }

    fn on_sample(&mut self) {
        let now = self.clock.now().as_secs();
        let r = self.model.gqa_ratio();
        let devices = self
            .cluster
            .devices()
            .iter()
            .map(|d| {
                let kv = self.kv.device(d.id);
                (d.id, kv.utilization(), kv.resident_query_heads(r))
            })
            .collect();
        self.trace_samples.push(TraceSample { time: now, devices });
        // Keep sampling while anything remains to happen.
        let active = self.requests.values().any(|r| r.phase != Phase::Done);
        if active || !self.events.is_empty() {
            self.events.schedule(
                self.clock.now() + self.cfg.trace_sample_period,
                Event::Sample,
            );
        }
    }

    // ---------------------------------------------------------- dispatch

    fn try_dispatch(&mut self, inst: usize) {
        self.drain_pending_handoffs(inst);

        // Re-dispatch hook (Hetis §5.3) before forming decode batches.
        if self.topo.instances[inst].role != InstanceRole::PrefillOnly {
            let ops = self.policy.before_decode(inst, &ctx!(self));
            for op in ops {
                self.execute_redispatch(op.req, op.new_placement);
            }
        }

        let depth = self.topo.instances[inst].depth();
        for c in 0..depth {
            if self.instances[inst].cohorts[c].in_flight.is_some() {
                continue;
            }
            if !self.try_form_prefill(inst, c) {
                self.try_form_decode(inst, c);
            }
        }
    }

    fn running_count(&self, inst: usize) -> usize {
        self.requests
            .values()
            .filter(|r| {
                r.instance == inst
                    && matches!(r.phase, Phase::Prefilling | Phase::Decoding | Phase::Migrating)
            })
            .count()
    }

    fn try_form_prefill(&mut self, inst: usize, cohort: usize) -> bool {
        if self.topo.instances[inst].role == InstanceRole::DecodeOnly {
            return false;
        }
        if self.instances[inst].waiting.is_empty() {
            return false;
        }
        let running = self.running_count(inst);
        if running >= self.cfg.max_running {
            return false;
        }

        // Pull admission candidates under the token budget.
        let mut candidates: Vec<RequestId> = Vec::new();
        let mut tokens = 0u64;
        loop {
            let Some(&rid) = self.instances[inst].waiting.peek() else {
                break;
            };
            let eff = self.requests[&rid].effective_input as u64;
            if !candidates.is_empty()
                && (tokens + eff > self.cfg.max_batch_tokens
                    || running + candidates.len() >= self.cfg.max_running)
            {
                break;
            }
            self.instances[inst].waiting.dequeue();
            candidates.push(rid);
            tokens += eff;
        }
        if candidates.is_empty() {
            return false;
        }

        // Joint placement of the admission batch (the paper's J(t)).
        let pairs: Vec<(RequestId, u32)> = candidates
            .iter()
            .map(|&rid| (rid, self.requests[&rid].effective_input))
            .collect();
        let placements = self.policy.place_batch(inst, &pairs, &ctx!(self));
        assert_eq!(placements.len(), candidates.len());

        let mut admitted: Vec<RequestId> = Vec::new();
        let mut blocked_from: Option<usize> = None;
        for (k, (rid, placement)) in candidates.iter().zip(placements).enumerate() {
            let ok = placement
                .map(|p| self.try_alloc_prompt(*rid, p))
                .unwrap_or(false);
            if ok {
                admitted.push(*rid);
            } else {
                blocked_from = Some(k);
                break;
            }
        }
        // FIFO: re-queue the blocked request and everything after it.
        if let Some(k) = blocked_from {
            for &rid in candidates[k..].iter().rev() {
                self.instances[inst].waiting.requeue_front(rid);
            }
        }
        if admitted.is_empty() {
            return false;
        }

        let now = self.clock.now().as_secs();
        let mut batch = PrefillBatch::default();
        for &rid in &admitted {
            let r = self.requests.get_mut(&rid).expect("live");
            r.phase = Phase::Prefilling;
            r.cohort = cohort;
            r.in_flight = true;
            r.admitted_at = Some(now);
            let l = r.effective_input as u64;
            batch.seqs += 1;
            batch.tokens += l;
            batch.sq_sum += (l * l) as f64;
        }

        // Walk the pipeline.
        let done = self.schedule_pipeline(inst, |engine, s, lm_head| {
            prefill_stage_breakdown(
                engine.cluster,
                engine.model,
                &engine.topo.instances[inst].stages[s],
                &batch,
                lm_head,
            )
        }, batch.tokens);

        self.instances[inst].cohorts[cohort].in_flight = Some(Ubatch {
            kind: UbatchKind::Prefill,
            reqs: admitted,
        });
        self.events.schedule(done, Event::UbatchDone { inst, cohort });
        true
    }

    fn try_form_decode(&mut self, inst: usize, cohort: usize) -> bool {
        if self.topo.instances[inst].role == InstanceRole::PrefillOnly {
            return false;
        }
        let ready: Vec<RequestId> = self.instances[inst].cohorts[cohort]
            .members
            .iter()
            .copied()
            .filter(|rid| self.requests[rid].phase == Phase::Decoding)
            .collect();
        if ready.is_empty() {
            return false;
        }

        // Allocate the next token's KV (policy handles exhaustion).
        let mut batch: Vec<RequestId> = Vec::new();
        for rid in ready {
            // The request may have been evicted/migrated by a victim
            // decision taken for an earlier member.
            if self.requests[&rid].phase != Phase::Decoding {
                continue;
            }
            if self.try_append_token(inst, rid) {
                batch.push(rid);
            }
        }
        // A victim decision taken for a *later* member can evict or
        // migrate a request that already joined the batch — drop it (its
        // KV, including the appended token, was released by the eviction).
        batch.retain(|rid| self.requests[rid].phase == Phase::Decoding);
        if batch.is_empty() {
            return false;
        }

        // Attention loads per stage from head placements.
        let n_stages = self.topo.instances[inst].depth();
        let mut stage_loads: Vec<Vec<AttnLoad>> = Vec::with_capacity(n_stages);
        let r = self.model.gqa_ratio() as u64;
        let unit = 2 * self.model.head_dim * self.model.dtype.bytes();
        for s in 0..n_stages {
            let mut per_dev: HashMap<DeviceId, AttnWork> = HashMap::new();
            for rid in &batch {
                let req = &self.requests[rid];
                let ctx_len = req.context_len() as u64 + 1;
                let placement = req.placement.as_ref().expect("decoding request placed");
                for &(dev, heads) in &placement.per_stage[s] {
                    let w = per_dev.entry(dev).or_default();
                    w.query_heads += heads as f64;
                    w.kv_bytes += (heads as u64 / r * ctx_len * unit) as f64;
                }
            }
            let primary = &self.topo.instances[inst].stages[s].primary.devices;
            let mut loads: Vec<AttnLoad> = per_dev
                .into_iter()
                .map(|(device, work)| AttnLoad {
                    device,
                    work,
                    remote: !primary.contains(&device),
                })
                .collect();
            loads.sort_by_key(|l| l.device);
            stage_loads.push(loads);
        }

        let for_flight = batch.clone();
        for rid in &batch {
            self.requests.get_mut(rid).expect("live").in_flight = true;
        }

        let dense_tokens = batch.len() as u64;
        let mut max_mlp = 0.0_f64;
        let mut max_attn = 0.0_f64;
        let done = self.schedule_pipeline(inst, |engine, s, lm_head| {
            let b = decode_stage_breakdown(
                engine.cluster,
                engine.model,
                &engine.topo.instances[inst].stages[s],
                dense_tokens,
                &stage_loads[s],
                lm_head,
            );
            max_mlp = max_mlp.max(b.mlp);
            max_attn = max_attn.max(b.attn);
            b
        }, dense_tokens);

        self.module_samples.push(ModuleSample {
            time: self.clock.now().as_secs(),
            mlp: max_mlp * n_stages as f64,
            attn: max_attn * n_stages as f64,
        });

        self.instances[inst].cohorts[cohort].in_flight = Some(Ubatch {
            kind: UbatchKind::Decode,
            reqs: for_flight,
        });
        self.events.schedule(done, Event::UbatchDone { inst, cohort });
        true
    }

    /// Walks a microbatch through the instance's stages as FIFO resources;
    /// returns the completion time. `breakdown(engine, stage, lm_head)`
    /// computes each stage's time.
    fn schedule_pipeline<F>(&mut self, inst: usize, mut breakdown: F, tokens: u64) -> SimTime
    where
        F: FnMut(&Self, usize, bool) -> StageBreakdown,
    {
        let n = self.topo.instances[inst].depth();
        let mut arrive = self.clock.now();
        for s in 0..n {
            let lm_head = s + 1 == n;
            let b = breakdown(self, s, lm_head);
            let t = if self.cfg.kernel_jitter > 0.0 {
                b.total * self.jitter.jitter(self.cfg.kernel_jitter)
            } else {
                b.total
            };
            let start = arrive.max(self.instances[inst].stage_free_at[s]);
            let done = start + t;
            self.instances[inst].stage_free_at[s] = done;
            arrive = done;
            if s + 1 < n {
                let from = &self.topo.instances[inst].stages[s].primary.devices;
                let to = &self.topo.instances[inst].stages[s + 1].primary.devices;
                let mut worst = self.cluster.link(from[0], to[0]);
                for &a in from {
                    for &b2 in to {
                        let l = self.cluster.link(a, b2);
                        if l.beta > worst.beta {
                            worst = l;
                        }
                    }
                }
                let bytes = (tokens * self.model.hidden_state_bytes_per_token()) as f64;
                arrive = arrive + worst.time(bytes);
            }
        }
        arrive
    }

    // ------------------------------------------------------ KV operations

    /// Allocates the prompt KV of `rid` per `placement`; on failure undoes
    /// everything and returns false.
    fn try_alloc_prompt(&mut self, rid: RequestId, placement: HeadPlacement) -> bool {
        let r = &self.requests[&rid];
        let tokens = r.effective_input;
        let gqa = self.model.gqa_ratio();
        if placement
            .validate(self.model.num_heads, gqa)
            .is_err()
        {
            return false;
        }
        let mut done: Vec<DeviceId> = Vec::new();
        for (s, stage_pl) in placement.per_stage.iter().enumerate() {
            let layers = self.topo.instances[r.instance].stages[s].primary.layers;
            for &(dev, heads) in stage_pl {
                let groups = heads / gqa;
                let res = self
                    .kv
                    .device_mut(dev)
                    .allocate(rid, s as u16, groups, tokens, layers);
                if res.is_err() {
                    for &d in &done {
                        self.kv.device_mut(d).free_request(rid);
                    }
                    // Also free any later-stage entries on the same device
                    // (free_request already removes all stages per device).
                    return false;
                }
                if !done.contains(&dev) {
                    done.push(dev);
                }
            }
        }
        self.requests.get_mut(&rid).expect("live").placement = Some(placement);
        true
    }

    /// Appends one decode token's KV across the request's devices,
    /// consulting the policy on exhaustion. Returns false when the request
    /// cannot proceed this iteration.
    fn try_append_token(&mut self, inst: usize, rid: RequestId) -> bool {
        // Bounded victim loop: each pass either frees memory or stalls.
        for _ in 0..64 {
            let devices = self.requests[&rid]
                .placement
                .as_ref()
                .expect("decoding request placed")
                .devices();
            let blocked = devices.iter().copied().find(|&d| {
                let kv = self.kv.device(d);
                kv.append_cost(rid) > kv.free_bytes()
            });
            let Some(dev) = blocked else {
                for &d in &devices {
                    self.kv
                        .device_mut(d)
                        .append_token(rid)
                        .expect("checked headroom");
                }
                return true;
            };
            let action = self.policy.select_victim(inst, dev, rid, &ctx!(self));
            match action {
                VictimAction::Evict(victim) => {
                    self.evict(victim);
                    if victim == rid {
                        return false;
                    }
                }
                VictimAction::Redispatch(victim, placement) => {
                    if !self.execute_redispatch(victim, placement) {
                        // The planned grows no longer fit (block rounding,
                        // racing allocations): fall back to eviction so
                        // the loop always makes progress.
                        self.evict(victim);
                        if victim == rid {
                            return false;
                        }
                    } else if victim == rid {
                        // rid is migrating now; it decodes after landing.
                        return false;
                    }
                }
                VictimAction::Stall => return false,
            }
        }
        false
    }

    /// Recompute-preempts a request: KV freed everywhere, back to waiting.
    fn evict(&mut self, rid: RequestId) {
        let r = self.requests.get_mut(&rid).expect("live");
        assert!(!r.in_flight, "cannot evict an in-flight request");
        let inst = r.instance;
        r.preempt_recompute();
        for d in 0..self.kv.len() {
            self.kv.device_mut(DeviceId(d as u32)).free_request(rid);
        }
        self.remove_cohort_member(inst, rid);
        self.instances[inst].waiting.requeue_front(rid);
        self.preemptions += 1;
    }

    /// Applies a re-dispatch: alloc grows, free shrinks, schedule the
    /// transfer, pause the request until it lands. Returns false if the
    /// grows don't fit or the request is not re-dispatchable.
    fn execute_redispatch(&mut self, rid: RequestId, new_placement: HeadPlacement) -> bool {
        let Some(r) = self.requests.get(&rid) else {
            return false;
        };
        if r.phase != Phase::Decoding || r.in_flight {
            return false;
        }
        let gqa = self.model.gqa_ratio();
        if new_placement.validate(self.model.num_heads, gqa).is_err() {
            return false;
        }
        let old = r.placement.clone().expect("decoding request placed");
        if old == new_placement {
            return false;
        }
        let inst = r.instance;

        // Token count from any resident entry (uniform across devices).
        let tokens = old.per_stage[0]
            .first()
            .and_then(|&(d, _)| self.kv.device(d).entry(rid, 0))
            .map(|e| e.tokens)
            .expect("resident entry");

        // Per-stage grow/shrink sets.
        let mut grows: Vec<(DeviceId, u16, u32, u32)> = Vec::new(); // dev, stage, groups, layers
        let mut shrinks: Vec<(DeviceId, u16, u32)> = Vec::new();
        for s in 0..new_placement.per_stage.len() {
            let layers = self.topo.instances[inst].stages[s].primary.layers;
            let mut devs: Vec<DeviceId> = old.per_stage[s]
                .iter()
                .map(|&(d, _)| d)
                .chain(new_placement.per_stage[s].iter().map(|&(d, _)| d))
                .collect();
            devs.sort();
            devs.dedup();
            for d in devs {
                let before = old.heads_on(s, d) / gqa;
                let after = new_placement.heads_on(s, d) / gqa;
                if after > before {
                    grows.push((d, s as u16, after - before, layers));
                } else if before > after {
                    shrinks.push((d, s as u16, before - after));
                }
            }
        }
        if grows.is_empty() && shrinks.is_empty() {
            return false;
        }

        // All-or-nothing: allocate grows first.
        let mut applied: Vec<(DeviceId, u16, u32)> = Vec::new();
        for &(d, s, g, layers) in &grows {
            if self
                .kv
                .device_mut(d)
                .grow_groups(rid, s, g, tokens, layers)
                .is_err()
            {
                for &(d2, s2, g2) in &applied {
                    self.kv.device_mut(d2).shrink_groups(rid, s2, g2);
                }
                return false;
            }
            applied.push((d, s, g));
        }
        let mut moved_bytes = 0.0;
        let now = self.clock.now().as_secs();
        let mut finish = now;
        // Pair shrinks to grows for transfer scheduling (greedy order).
        let mut grow_iter = grows.iter();
        for &(src, s, g) in &shrinks {
            let layers = self.topo.instances[inst].stages[s as usize].primary.layers;
            let bytes = self.kv.device(src).bytes_needed(g, tokens, layers) as f64;
            self.kv.device_mut(src).shrink_groups(rid, s, g);
            let dst = grow_iter
                .next()
                .map(|&(d, ..)| d)
                .unwrap_or(src);
            let link = self.cluster.link(src, dst);
            let done = self
                .migration
                .schedule(src.0, dst.0, link, bytes, now);
            finish = finish.max(done);
            moved_bytes += bytes;
        }

        let r = self.requests.get_mut(&rid).expect("live");
        r.placement = Some(new_placement);
        r.phase = Phase::Migrating;
        r.redispatches += 1;
        self.migrations += 1;
        self.migrated_bytes += moved_bytes;
        self.events
            .schedule(SimTime::from_secs(finish.max(now)), Event::MigrationDone { req: rid });
        true
    }

    // ------------------------------------------------- hand-off / scatter

    /// Splitwise-style hand-off: move the whole KV to `target`.
    fn start_handoff(&mut self, rid: RequestId, target: usize) {
        // Try immediately; park in the target's hand-off queue otherwise.
        if !self.try_start_handoff_transfer(rid, target) {
            let r = self.requests.get_mut(&rid).expect("live");
            r.phase = Phase::Migrating; // blocked, holding source KV
            self.instances[target].pending_handoff.enqueue(rid);
        }
    }

    fn drain_pending_handoffs(&mut self, target: usize) {
        loop {
            let Some(&rid) = self.instances[target].pending_handoff.peek() else {
                return;
            };
            if self.try_start_handoff_transfer(rid, target) {
                self.instances[target].pending_handoff.dequeue();
            } else {
                return;
            }
        }
    }

    /// Attempts allocation on the target and schedules the bulk transfer.
    fn try_start_handoff_transfer(&mut self, rid: RequestId, target: usize) -> bool {
        let ctx_tokens = {
            let r = &self.requests[&rid];
            r.effective_input + (r.generated.saturating_sub(0))
        };
        let pairs = [(rid, ctx_tokens)];
        let placement = self
            .policy
            .place_batch(target, &pairs, &ctx!(self))
            .pop()
            .flatten();
        let Some(placement) = placement else {
            return false;
        };

        // Source residency before realloc.
        let old_placement = self.requests[&rid].placement.clone().expect("placed");
        let src_anchor = old_placement.per_stage[0][0].0;
        let mut src_bytes = 0.0f64;
        for d in 0..self.kv.len() {
            src_bytes += self.kv.device(DeviceId(d as u32)).request_bytes(rid) as f64;
        }

        // Allocate on target with the *current* context.
        {
            let r = self.requests.get_mut(&rid).expect("live");
            r.instance = target;
            r.effective_input = ctx_tokens;
        }
        if !self.try_alloc_prompt(rid, placement) {
            // Roll back ownership.
            let r = self.requests.get_mut(&rid).expect("live");
            r.instance = old_instance_of(&old_placement, &self.topo).unwrap_or(r.instance);
            r.placement = Some(old_placement);
            return false;
        }
        // try_alloc_prompt overwrote the placement — free the old source
        // entries now (they belong to other devices).
        let new_placement = self.requests[&rid].placement.clone().expect("placed");
        let new_devices = new_placement.devices();
        for d in 0..self.kv.len() {
            let dev = DeviceId(d as u32);
            if !new_devices.contains(&dev) {
                self.kv.device_mut(dev).free_request(rid);
            }
        }

        let now = self.clock.now().as_secs();
        let dst_anchor = new_devices[0];
        let link = self.cluster.link(src_anchor, dst_anchor);
        let done = self
            .migration
            .schedule(src_anchor.0, dst_anchor.0, link, src_bytes, now);
        self.migrations += 1;
        self.migrated_bytes += src_bytes;
        let r = self.requests.get_mut(&rid).expect("live");
        r.phase = Phase::Migrating;
        self.events
            .schedule(SimTime::from_secs(done), Event::MigrationDone { req: rid });
        true
    }

    /// After prefill on a Both-role instance: scatter remote head groups'
    /// KV to attention workers if the placement uses any, then decode.
    fn start_decoding_after_scatter(&mut self, rid: RequestId, inst: usize, cohort: usize) {
        let placement = self.requests[&rid].placement.clone().expect("placed");
        let tokens = self.requests[&rid].effective_input;
        let gqa = self.model.gqa_ratio();
        let now = self.clock.now().as_secs();
        let mut finish = now;
        let mut scattered = 0.0f64;
        for (s, stage_pl) in placement.per_stage.iter().enumerate() {
            let stage = &self.topo.instances[inst].stages[s];
            let anchor = stage.primary.devices[0];
            let layers = stage.primary.layers;
            for &(dev, heads) in stage_pl {
                if stage.primary.devices.contains(&dev) {
                    continue;
                }
                let groups = heads / gqa;
                let bytes = self.kv.device(dev).bytes_needed(groups, tokens, layers) as f64;
                let link = self.cluster.link(anchor, dev);
                let done = self.migration.schedule(anchor.0, dev.0, link, bytes, now);
                finish = finish.max(done);
                scattered += bytes;
            }
        }
        let r = self.requests.get_mut(&rid).expect("live");
        r.cohort = cohort;
        if scattered > 0.0 {
            r.phase = Phase::Migrating;
            self.migrations += 1;
            self.migrated_bytes += scattered;
            self.events
                .schedule(SimTime::from_secs(finish), Event::MigrationDone { req: rid });
        } else {
            r.phase = Phase::Decoding;
            self.ensure_cohort_member(inst, rid);
        }
    }

    // --------------------------------------------------------- lifecycle

    fn finish(&mut self, rid: RequestId) {
        for d in 0..self.kv.len() {
            self.kv.device_mut(DeviceId(d as u32)).free_request(rid);
        }
        let r = self.requests.get_mut(&rid).expect("live");
        r.phase = Phase::Done;
        r.in_flight = false;
        let inst = r.instance;
        let rec = CompletedRequest {
            id: rid,
            arrival: r.req.arrival,
            first_token: *r.token_times.first().expect("finished with tokens"),
            completion: *r.token_times.last().expect("finished with tokens"),
            input_len: r.req.input_len,
            output_len: r.req.output_len,
            preemptions: r.preemptions,
            redispatches: r.redispatches,
        };
        self.completed.push(rec);
        self.remove_cohort_member(inst, rid);
    }

    fn ensure_cohort_member(&mut self, inst: usize, rid: RequestId) {
        let cohort = self.requests[&rid].cohort.min(
            self.instances[inst].cohorts.len().saturating_sub(1),
        );
        // If unassigned to a live cohort (hand-off), pick the emptiest.
        let target = if self.instances[inst].cohorts[cohort].members.contains(&rid) {
            return;
        } else if self.requests[&rid].instance == inst
            && self.instances[inst]
                .cohorts
                .iter()
                .any(|c| c.members.contains(&rid))
        {
            return;
        } else {
            let (best, _) = self.instances[inst]
                .cohorts
                .iter()
                .enumerate()
                .min_by_key(|(i, c)| (c.members.len(), *i))
                .expect("instance has cohorts");
            best
        };
        self.requests.get_mut(&rid).expect("live").cohort = target;
        self.instances[inst].cohorts[target].members.push(rid);
    }

    fn remove_cohort_member(&mut self, inst: usize, rid: RequestId) {
        for c in self.instances[inst].cohorts.iter_mut() {
            c.members.retain(|&m| m != rid);
        }
    }

    /// Test/diagnostic access to the KV state.
    pub fn kv_state(&self) -> &KvState {
        &self.kv
    }

    /// Diagnostic: per-instance (phase → count) summary of live requests.
    pub fn phase_summary(&self) -> Vec<HashMap<&'static str, usize>> {
        let mut out: Vec<HashMap<&'static str, usize>> =
            vec![HashMap::new(); self.instances.len()];
        for r in self.requests.values() {
            let name = match r.phase {
                Phase::Waiting => "waiting",
                Phase::Prefilling => "prefilling",
                Phase::Decoding => "decoding",
                Phase::Migrating => "migrating",
                Phase::Done => "done",
            };
            *out[r.instance].entry(name).or_insert(0) += 1;
        }
        out
    }
}

/// Finds which instance a placement belongs to (best effort, for hand-off
/// rollback).
fn old_instance_of(placement: &HeadPlacement, topo: &Topology) -> Option<usize> {
    let first_dev = placement.per_stage.first()?.first()?.0;
    topo.instances.iter().position(|i| {
        i.stages
            .iter()
            .any(|s| s.attention_devices().contains(&first_dev))
    })
}
